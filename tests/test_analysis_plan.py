"""Static plan validation: accept real round-trips, reject corruption.

``validate_payload`` / ``validate_plan`` abstractly interpret a saved
Ψ payload — they must accept everything the pipeline itself produces
(including a full SAFE fit → save → load cycle) and reject corrupted
artifacts with actionable, located errors, all without evaluating any
data (proved here by making every operator's ``apply`` explode).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import Domain, validate_payload, validate_plan
from repro.core import SAFE, SAFEConfig
from repro.core.transform import FeatureTransformer
from repro.operators import (
    Applied,
    Var,
    available_operators,
    fit_applied,
    get_operator,
)

pytestmark = pytest.mark.analysis


@pytest.fixture
def plan_payload(rng) -> dict:
    X = rng.normal(size=(80, 4))
    expressions = (
        Applied("add", (Var(0), Var(1))),
        fit_applied("zscore", (Var(2),), X),
        Applied("sigmoid", (Applied("mul", (Var(0), Var(3))),)),
        Var(1),
    )
    ft = FeatureTransformer(
        expressions=expressions, original_names=("a", "b", "c", "d")
    )
    return ft.to_dict()


def _codes(report) -> "list[str]":
    return [i.code for i in report.issues]


class TestAcceptance:
    def test_hand_built_round_trip_is_accepted(self, plan_payload):
        report = validate_payload(plan_payload)
        assert report.ok, report.render()
        assert report.n_expressions == 4
        assert _codes(report) == []

    def test_full_pipeline_round_trip_is_accepted(self, tmp_path, linear_data):
        cfg = SAFEConfig(gamma=8, mining_n_estimators=5, ranking_n_estimators=5)
        transformer = SAFE(cfg).fit(linear_data)
        path = tmp_path / "psi.json"
        transformer.save(path)
        report = validate_plan(path)
        assert report.ok, report.render()
        assert report.n_expressions == transformer.n_output_features

    def test_validation_never_evaluates_data(self, plan_payload, monkeypatch):
        for name in ("add", "mul", "sigmoid", "zscore"):
            monkeypatch.setattr(
                type(get_operator(name)),
                "apply",
                lambda self, state, *cols: pytest.fail(
                    "validate_payload must not apply operators"
                ),
            )
        assert validate_payload(plan_payload).ok

    def test_whole_catalogue_round_trips(self, rng):
        """Every registered operator validates from its own fit output."""
        X = rng.normal(size=(60, 4))
        expressions = []
        for name in available_operators():
            op = get_operator(name)
            children = tuple(Var(i) for i in range(op.arity))
            if op.is_stateful:
                expressions.append(fit_applied(name, children, X))
            else:
                expressions.append(Applied(name, children))
        ft = FeatureTransformer(
            expressions=tuple(expressions),
            original_names=("a", "b", "c", "d"),
        )
        report = validate_payload(ft.to_dict())
        errors = [i for i in report.issues if i.severity == "error"]
        assert not errors, report.render()


class TestRejection:
    def test_unknown_operator(self, plan_payload):
        plan_payload["expressions"][0]["op"] = "frobnicate"
        report = validate_payload(plan_payload)
        assert not report.ok
        assert "unknown-operator" in _codes(report)
        assert any("expressions[0]" == i.path for i in report.issues)

    def test_wrong_arity(self, plan_payload):
        plan_payload["expressions"][0]["children"].append(
            {"type": "var", "index": 0}
        )
        report = validate_payload(plan_payload)
        assert not report.ok
        assert "arity-mismatch" in _codes(report)

    def test_missing_fitted_state(self, plan_payload):
        plan_payload["expressions"][1]["state"] = None
        report = validate_payload(plan_payload)
        assert not report.ok
        assert "missing-state" in _codes(report)

    def test_incomplete_fitted_state(self, plan_payload):
        plan_payload["expressions"][1]["state"] = {"mean": 0.0}
        report = validate_payload(plan_payload)
        assert not report.ok
        issue = next(i for i in report.issues if i.code == "state-schema")
        assert "std" in issue.message

    def test_var_out_of_schema_range(self, plan_payload):
        plan_payload["expressions"][3] = {"type": "var", "index": 11}
        report = validate_payload(plan_payload)
        assert not report.ok
        assert "var-out-of-range" in _codes(report)

    def test_nested_corruption_is_located(self, plan_payload):
        plan_payload["expressions"][2]["children"][0]["op"] = "nope"
        report = validate_payload(plan_payload)
        assert not report.ok
        issue = next(i for i in report.issues if i.code == "unknown-operator")
        assert issue.path == "expressions[2].children[0]"

    def test_empty_plan(self, plan_payload):
        plan_payload["expressions"] = []
        report = validate_payload(plan_payload)
        assert not report.ok
        assert "empty-plan" in _codes(report)

    def test_unknown_node_type_and_bad_payloads(self, plan_payload):
        plan_payload["expressions"][0] = {"type": "mystery"}
        assert "unknown-node-type" in _codes(validate_payload(plan_payload))
        assert "bad-payload" in _codes(validate_payload([1, 2, 3]))
        assert "bad-schema" in _codes(
            validate_payload({"original_names": "oops", "expressions": "oops"})
        )

    def test_unreadable_and_malformed_files(self, tmp_path):
        report = validate_plan(tmp_path / "missing.json")
        assert not report.ok and "unreadable" in _codes(report)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        report = validate_plan(bad)
        assert not report.ok and "bad-json" in _codes(report)


class TestWarnings:
    def test_degenerate_subtree_warns_but_passes(self, plan_payload):
        plan_payload["expressions"].append(
            {
                "type": "apply",
                "op": "sub",
                "state": None,
                "children": [
                    {"type": "var", "index": 0},
                    {"type": "var", "index": 0},
                ],
            }
        )
        report = validate_payload(plan_payload)
        assert report.ok
        assert "degenerate-subtree" in _codes(report)

    def test_duplicate_feature_warns(self, plan_payload):
        plan_payload["expressions"].append(
            json.loads(json.dumps(plan_payload["expressions"][0]))
        )
        report = validate_payload(plan_payload)
        assert report.ok
        assert "duplicate-feature" in _codes(report)

    def test_state_on_stateless_operator_warns(self, plan_payload):
        plan_payload["expressions"][0]["state"] = {"stray": 1}
        report = validate_payload(plan_payload)
        assert report.ok
        assert "unexpected-state" in _codes(report)


class TestDomainPropagation:
    @staticmethod
    def _domain_of(expr, names=("a", "b", "c")) -> Domain:
        ft = FeatureTransformer(expressions=(expr,), original_names=names)
        report = validate_payload(ft.to_dict())
        assert report.ok, report.render()
        return report.feature_domains[0]

    def test_var_domain_is_unknown(self):
        d = self._domain_of(Var(0))
        assert (d.lo, d.hi, d.may_nan, d.may_inf) == (-np.inf, np.inf, True, True)

    def test_finite_bounds_certify_no_inf(self):
        d = self._domain_of(Applied("sigmoid", (Var(0),)))
        assert (d.lo, d.hi) == (0.0, 1.0)
        assert not d.may_inf
        assert d.may_nan  # sigmoid(nan) is nan: taint propagates

    def test_discretizer_absorbs_nan(self, rng):
        X = rng.normal(size=(50, 3))
        d = self._domain_of(fit_applied("disc_eqwidth", (Var(0),), X))
        assert not d.may_nan and not d.may_inf
        assert d.lo == 0.0

    def test_conditional_takes_branch_hull(self):
        expr = Applied(
            "cond",
            (Var(0), Applied("sigmoid", (Var(1),)), Applied("tanh", (Var(2),))),
        )
        d = self._domain_of(expr)
        assert (d.lo, d.hi) == (-1.0, 1.0)
        assert not d.may_inf

    def test_nary_reduce_takes_input_hull(self):
        expr = Applied(
            "mean3",
            (
                Applied("sigmoid", (Var(0),)),
                Applied("tanh", (Var(1),)),
                Applied("sigmoid", (Var(2),)),
            ),
        )
        d = self._domain_of(expr)
        assert (d.lo, d.hi) == (-1.0, 1.0)
        assert not d.may_inf

    def test_report_json_round_trips(self, rng):
        X = rng.normal(size=(40, 3))
        ft = FeatureTransformer(
            expressions=(fit_applied("zscore", (Var(0),), X),),
            original_names=("a", "b", "c"),
        )
        report = validate_payload(ft.to_dict())
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["n_expressions"] == 1
        assert payload["feature_domains"][0]["may_nan"] is True
