"""Merge-property suite for every registered ``@chunk_mergeable`` kernel.

The out-of-core fit rests on one algebraic claim per kernel: for any
chunking of the rows,

    merge(partial(chunk_1), ..., partial(chunk_m)) == partial(all rows)

bit-identically when the contract declares ``exact=True`` (integer
counts, exact min/max), and to <=1e-9 relative when float sums
re-associate (``exact=False``). Every kernel in ``MERGEABLE_REGISTRY``
must have a case here — the completeness test fails when a new kernel
is registered without one — and each case also finalizes the merged
statistic and checks it against the kernel's scalar oracle
(``information_value`` / ``information_gain_ratio`` / ``pearson_matrix``
/ ``feature_histogram`` / ``equal_frequency_edges``), so the streamed
path is anchored to the audited in-memory semantics, not just to
itself.

Chunkings exercised per case: one chunk of all ``n`` rows, ``n`` chunks
of one row (maximal re-association), and hypothesis-drawn ragged
chunkings; matrices carry NaN/inf cells and a constant column.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.registry import MERGEABLE_REGISTRY
from repro.boosting.histogram import (
    feature_histogram,
    level_histogram_partial,
    merge_histograms,
)
from repro.core.generation import Combination
from repro.core.redundancy import (
    centered_gram_partial,
    column_moments_partial,
    correlations_from_gram,
    merge_column_moments,
    merge_grams,
)
from repro.core.scoring import (
    combination_count_partial,
    gain_ratio_from_combination_counts,
    merge_combination_counts,
)
from repro.metrics.batched import (
    gain_ratio_from_counts,
    iv_bin_counts,
    iv_from_counts,
    labeled_cell_counts,
    merge_counts,
)
from repro.metrics.information import (
    cells_from_split_values,
    entropy_from_counts,
    information_gain_ratio,
    information_value,
    pearson_matrix,
)
from repro.tabular.binning import (
    QuantileSketch,
    equal_frequency_edges,
    merge_quantile_sketches,
    quantile_sketch_partial,
)
from repro.tabular.preprocess import clean_matrix

N_ROWS = 60
N_COLS = 4


def _awkward_matrix(rng, n=N_ROWS, k=N_COLS) -> np.ndarray:
    """Normal data with a constant column plus NaN/inf contamination."""
    X = rng.normal(size=(n, k))
    X[:, 0] = 1.5
    X[rng.random(size=(n, k)) < 0.05] = np.nan
    X[rng.random(size=(n, k)) < 0.02] = np.inf
    return X


def _labels(rng, n=N_ROWS) -> np.ndarray:
    y = (rng.random(n) < 0.5).astype(np.float64)
    y[0], y[1] = 0.0, 1.0  # both classes guaranteed
    return y


def _slices(chunk_sizes):
    lo = 0
    for size in chunk_sizes:
        yield slice(lo, lo + size)
        lo += size


def _merged(partial_fn, merge, chunk_sizes):
    parts = [partial_fn(sl) for sl in _slices(chunk_sizes)]
    return functools.reduce(merge, parts)


# ---------------------------------------------------------------------------
# One case per registered kernel. Each callable gets (rng, chunk_sizes)
# covering sum(chunk_sizes) == N_ROWS and asserts the merge property plus
# finalize-vs-oracle parity.
# ---------------------------------------------------------------------------


def _case_iv_bin_counts(rng, chunk_sizes):
    X = rng.normal(size=(N_ROWS, N_COLS))  # oracle parity needs finite cols
    y = _labels(rng)
    pos = y == 1
    n_bins = 5
    edges = [equal_frequency_edges(X[:, j], n_bins) for j in range(N_COLS)]
    stride = max(e.size for e in edges) + 2
    scorable = np.ones(N_COLS, dtype=bool)

    def partial(sl):
        return iv_bin_counts(
            np.ascontiguousarray(X[sl].T), pos[sl], edges, scorable, stride
        )

    whole = partial(slice(None))
    merged = _merged(partial, merge_counts, chunk_sizes)
    assert np.array_equal(merged, whole)  # exact contract: integer counts

    n_pos = int(pos.sum())
    ivs = iv_from_counts(merged[0], merged[1], n_pos, N_ROWS - n_pos, scorable)
    oracle = [information_value(X[:, j], y, n_bins=n_bins) for j in range(N_COLS)]
    np.testing.assert_allclose(ivs, oracle, rtol=1e-9, atol=1e-12)


def _case_labeled_cell_counts(rng, chunk_sizes):
    y = _labels(rng)
    cells = rng.integers(0, 6, size=N_ROWS)
    labeled = 2 * cells + (y == 1).astype(np.int64)
    n_codes = 2 * 6

    def partial(sl):
        return labeled_cell_counts(labeled[sl], n_codes)

    whole = partial(slice(None))
    merged = _merged(partial, merge_counts, chunk_sizes)
    assert np.array_equal(merged, whole)

    base = entropy_from_counts(np.array([(y != 1).sum(), (y == 1).sum()]))
    streamed = gain_ratio_from_counts(merged, N_ROWS, base)
    oracle = information_gain_ratio(y, cells)
    np.testing.assert_allclose(streamed, oracle, rtol=1e-9, atol=1e-12)


def _case_combination_counts(rng, chunk_sizes):
    X = _awkward_matrix(rng)
    y = _labels(rng)
    combos = [
        Combination(features=(), split_values=()),  # -> None partial
        Combination(features=(1,), split_values=((0.0, 0.7),)),
        Combination(features=(1, 2), split_values=((0.0,), (-0.5, 0.5))),
        Combination(features=(2, 3), split_values=((0.1,), (0.2, 0.9))),
    ]
    dense_limit = 9  # dense for the 1-feature combo, sparse for the pairs

    def partial(sl):
        return combination_count_partial(X[sl], y[sl], combos, dense_limit)

    whole = partial(slice(None))
    merged = _merged(partial, merge_combination_counts, chunk_sizes)
    assert merged[0] is None and whole[0] is None
    for m, w in zip(merged[1:], whole[1:]):
        assert m[0] == w[0]
        for a, b in zip(m[1:], w[1:]):
            assert np.array_equal(a, b)

    base = entropy_from_counts(np.array([(y != 1).sum(), (y == 1).sum()]))
    streamed = gain_ratio_from_combination_counts(merged, N_ROWS, base)
    for score, combo in zip(streamed[1:], combos[1:]):
        cells = cells_from_split_values(
            X, combo.features, [np.asarray(v) for v in combo.split_values]
        )
        oracle = information_gain_ratio(y, cells)
        np.testing.assert_allclose(score, oracle, rtol=1e-9, atol=1e-12)


def _case_level_histogram(rng, chunk_sizes):
    stride = 8
    codes = rng.integers(0, stride - 1, size=(N_ROWS, N_COLS))
    grad = rng.normal(size=N_ROWS)
    hess = np.abs(rng.normal(size=N_ROWS)) + 0.1

    def partial(sl):
        return level_histogram_partial(
            codes[sl], None, grad[sl], hess[sl], 1, stride
        )

    whole = partial(slice(None))
    merged = _merged(partial, merge_histograms, chunk_sizes)
    np.testing.assert_allclose(merged[:2], whole[:2], rtol=1e-9, atol=1e-12)
    assert np.array_equal(merged[2], whole[2])  # count channel is exact

    for j in range(N_COLS):
        g, h, c = feature_histogram(codes[:, j], grad, hess, stride)
        np.testing.assert_allclose(merged[0, 0, j], g, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(merged[1, 0, j], h, rtol=1e-9, atol=1e-12)
        assert np.array_equal(merged[2, 0, j], c)


def _case_column_moments(rng, chunk_sizes):
    F = _awkward_matrix(rng)

    def partial(sl):
        return column_moments_partial(F[sl])

    whole = partial(slice(None))
    merged = _merged(partial, merge_column_moments, chunk_sizes)
    assert np.array_equal(merged[0], whole[0])
    np.testing.assert_allclose(
        merged[1:], whole[1:], rtol=1e-9, atol=1e-12, equal_nan=True
    )

    # Zero-row chunks contribute the documented reduction identities.
    empty = column_moments_partial(F[:0])
    np.testing.assert_array_equal(
        merge_column_moments(empty, whole), whole
    )


def _case_centered_gram(rng, chunk_sizes):
    F = clean_matrix(_awkward_matrix(rng))
    moments = _merged(
        lambda sl: column_moments_partial(F[sl]), merge_column_moments, chunk_sizes
    )
    mean = moments[1] / moments[0]
    scale = np.maximum(moments[2], -moments[3])

    def partial(sl):
        return centered_gram_partial(F[sl], mean)

    whole = partial(slice(None))
    merged = _merged(partial, merge_grams, chunk_sizes)
    np.testing.assert_allclose(merged, whole, rtol=1e-9, atol=1e-12)

    corr = correlations_from_gram(merged, scale, N_ROWS)
    np.testing.assert_allclose(corr, pearson_matrix(F), rtol=1e-9, atol=1e-9)


def _case_quantile_sketch(rng, chunk_sizes):
    x = _awkward_matrix(rng)[:, 1]  # NaN/inf contaminated column
    n_bins = 5

    def partial(sl):
        return quantile_sketch_partial(x[sl], capacity=None)

    whole = partial(slice(None))
    merged = _merged(partial, merge_quantile_sketches, chunk_sizes)
    # Exact contract: unbounded sketches answer bit-identically to the
    # in-memory sort, chunking-independently.
    assert np.array_equal(merged.edges(n_bins), whole.edges(n_bins))
    assert np.array_equal(merged.edges(n_bins), equal_frequency_edges(x, n_bins))
    assert merged.n_finite == int(np.isfinite(x).sum())
    finite = x[np.isfinite(x)]
    if finite.size:
        assert merged.min == finite.min() and merged.max == finite.max()


CASES = {
    "iv_bin_counts": _case_iv_bin_counts,
    "labeled_cell_counts": _case_labeled_cell_counts,
    "combination_count_partial": _case_combination_counts,
    "level_histogram_partial": _case_level_histogram,
    "column_moments_partial": _case_column_moments,
    "centered_gram_partial": _case_centered_gram,
    "quantile_sketch_partial": _case_quantile_sketch,
}


def test_every_registered_mergeable_kernel_has_a_case():
    registered = {c.func_name for c in MERGEABLE_REGISTRY.values()}
    assert registered == set(CASES), (
        "MERGEABLE_REGISTRY and the merge-property suite drifted apart: "
        f"registry-only={registered - set(CASES)}, "
        f"suite-only={set(CASES) - registered}"
    )


@pytest.mark.parametrize("kernel", sorted(CASES))
@pytest.mark.parametrize(
    "chunking", ["single", "rows", "ragged"], ids=["1xn", "nx1", "ragged"]
)
def test_merge_matches_single_pass(kernel, chunking):
    rng = np.random.default_rng(42)
    sizes = {
        "single": [N_ROWS],
        "rows": [1] * N_ROWS,
        "ragged": [7, 1, 19, 12, 21],
    }[chunking]
    assert sum(sizes) == N_ROWS
    CASES[kernel](rng, sizes)


@pytest.mark.parametrize("kernel", sorted(CASES))
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_merge_matches_single_pass_hypothesis(kernel, data):
    seed = data.draw(st.integers(0, 2**32 - 1), label="seed")
    sizes = []
    remaining = N_ROWS
    while remaining:
        size = data.draw(st.integers(1, remaining), label="chunk")
        sizes.append(size)
        remaining -= size
    CASES[kernel](np.random.default_rng(seed), sizes)


def test_bounded_sketch_rank_error_is_bounded():
    """Finite capacity: rank error is small and shrinks as capacity grows."""
    rng = np.random.default_rng(0)
    n, n_bins = 20_000, 10
    x = rng.normal(size=n)
    xs = np.sort(x)
    targets = np.floor(np.linspace(0.0, 1.0, n_bins + 1)[1:-1] * (n - 1))

    def max_rank_error(capacity):
        sk = QuantileSketch(capacity=capacity)
        for lo in range(0, n, 613):
            sk.update(x[lo : lo + 613])
        edges = sk.edges(n_bins)
        assert edges.size == n_bins - 1
        ranks = np.searchsorted(xs, edges, side="right") - 1
        return np.abs(ranks - targets).max()

    err_small, err_large = max_rank_error(256), max_rank_error(1024)
    # Loose absolute ceiling (compaction error compounds ~log(n/capacity)
    # times, so the constant is generous) plus the monotonicity that
    # actually matters: more capacity buys proportionally less error.
    assert err_small <= 0.06 * n, f"rank error {err_small} out of bound"
    assert err_large <= 0.01 * n, f"rank error {err_large} out of bound"
    assert err_large < err_small / 2

    # Merging bounded shard sketches stays within the large-capacity ceiling.
    capacity = 1024
    shard_a, shard_b = QuantileSketch(capacity), QuantileSketch(capacity)
    shard_a.update(x[: n // 2])
    shard_b.update(x[n // 2 :])
    merged_edges = merge_quantile_sketches(shard_a, shard_b).edges(n_bins)
    ranks = np.searchsorted(xs, merged_edges, side="right") - 1
    assert np.abs(ranks - targets).max() <= 0.02 * n
