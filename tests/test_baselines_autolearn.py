"""Tests for the AutoLearn baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AutoLearn
from repro.exceptions import ConfigurationError
from repro.metrics import roc_auc_score
from repro.models import LogisticRegression
from repro.tabular import Dataset


@pytest.fixture
def nonlinear_task(rng):
    """Label lives in the residual of a nonlinear pair relation."""
    n = 2500
    X = rng.normal(size=(n, 6))
    X[:, 3] = np.sin(2 * X[:, 0]) + 0.3 * rng.normal(size=n)
    y = ((X[:, 3] - np.sin(2 * X[:, 0])) + 0.3 * X[:, 1] > 0).astype(float)
    return Dataset.from_arrays(X, y)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dcor_threshold": -0.1},
            {"dcor_threshold": 1.1},
            {"n_stability_rounds": 0},
            {"stability_fraction": 0.0},
            {"stability_fraction": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoLearn(**kwargs)


class TestFit:
    def test_mines_related_pair_and_improves(self, nonlinear_task):
        train = nonlinear_task.take_rows(np.arange(1700))
        test = nonlinear_task.take_rows(np.arange(1700, 2500))
        auto = AutoLearn(ig_threshold=0.0, dcor_threshold=0.25, random_state=0)
        psi = auto.fit(train)
        assert auto.n_related_pairs_ >= 1
        assert auto.n_generated_ >= 4
        tr, te = psi.transform(train), psi.transform(test)
        base = LogisticRegression().fit(train.X, train.y)
        enriched = LogisticRegression().fit(tr.X, tr.require_labels())
        auc_orig = roc_auc_score(test.y, base.predict_proba(test.X)[:, 1])
        auc_auto = roc_auc_score(te.y, enriched.predict_proba(te.X)[:, 1])
        assert auc_auto > auc_orig + 0.05

    def test_generated_features_are_ridge_expressions(self, nonlinear_task):
        auto = AutoLearn(ig_threshold=0.0, dcor_threshold=0.25, random_state=0)
        psi = auto.fit(nonlinear_task)
        assert any("ridge" in key for key in psi.feature_keys)

    def test_output_budget_respected(self, nonlinear_task):
        psi = AutoLearn(ig_threshold=0.0, max_output_features=4,
                        random_state=0).fit(nonlinear_task)
        assert psi.n_output_features <= 4

    def test_no_related_pairs_falls_back_to_originals(self, rng):
        X = rng.normal(size=(500, 4))  # independent columns
        y = (X[:, 0] > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        psi = AutoLearn(dcor_threshold=0.9, random_state=0).fit(data)
        assert psi.n_output_features >= 1

    def test_deterministic(self, nonlinear_task):
        a = AutoLearn(ig_threshold=0.0, random_state=4).fit(nonlinear_task)
        b = AutoLearn(ig_threshold=0.0, random_state=4).fit(nonlinear_task)
        assert a.feature_keys == b.feature_keys

    def test_plan_serializable(self, nonlinear_task, tmp_path):
        from repro.core import FeatureTransformer

        psi = AutoLearn(ig_threshold=0.0, random_state=0).fit(nonlinear_task)
        path = tmp_path / "auto.json"
        psi.save(path)
        back = FeatureTransformer.load(path)
        assert np.allclose(
            back.transform_matrix(nonlinear_task.X[:5]),
            psi.transform_matrix(nonlinear_task.X[:5]),
            equal_nan=True,
        )

    def test_available_via_runner(self, nonlinear_task):
        from repro.experiments import make_method

        method = make_method("AUTO", seed=0)
        assert method.name == "AUTO"
        psi = method.fit(nonlinear_task)
        assert psi.metadata["method"] == "AUTO"
