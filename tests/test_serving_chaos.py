"""Serving chaos suite: the serve loop never crashes, every degradation
is flagged, and the fault-free path is bit-identical to plain transform.

This is the acceptance gate for the hardened serving runtime. Each
scenario arms a serving failpoint (slow operator past deadline, hard
operator faults until breakers trip, a hot-swap candidate that fails its
self-test, queue overflow) and asserts the session answers *every*
request with a flagged response while the :class:`ServingReport` records
the degradation — then, with nothing armed, that a session's output is
bit-for-bit the output of ``FeatureTransformer.transform``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureTransformer
from repro.exceptions import PlanSwapError
from repro.operators import Applied, Var, fit_applied
from repro.runtime.checkpoint import schema_fingerprint
from repro.runtime.failpoints import FAILPOINTS, active
from repro.serving import CoercionPolicy, ServingSession
from repro.serving.session import DEGRADED, OK, SHED
from repro.tabular import Dataset


class ManualClock:
    def __init__(self, step: float = 0.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        return value


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


NAMES = ("amount", "count", "age", "debt")


@pytest.fixture
def fitted_plan(rng) -> FeatureTransformer:
    """A plan with stateless *and* fitted-state expressions, like a real Ψ."""
    X = rng.normal(size=(100, 4))
    return FeatureTransformer(
        expressions=(
            Var(0),
            Applied("add", (Var(0), Var(1))),
            fit_applied("zscore", (Var(2),), X),
            Applied("div", (Var(3), Var(1))),
            fit_applied("minmax", (Var(3),), X),
        ),
        original_names=NAMES,
        metadata={"schema_hash": schema_fingerprint(NAMES), "config_hash": "cfg"},
    )


class TestFaultFreeBitIdentity:
    """Acceptance: no faults armed → ServingSession ≡ transform."""

    def test_batch_and_single_row_parity(self, fitted_plan, rng):
        X = rng.normal(size=(64, 4))
        session = ServingSession(fitted_plan)
        batch = session.serve_one(X)
        assert batch.status == OK
        np.testing.assert_array_equal(
            batch.values, fitted_plan.transform_matrix(X)
        )
        row = session.serve_one(X[0])
        np.testing.assert_array_equal(
            row.values, fitted_plan.transform_matrix(X[0])
        )

    def test_dataset_parity_with_pathological_values(self, fitted_plan):
        X = np.array(
            [
                [np.nan, 0.0, 1e300, -1e300],
                [np.inf, -np.inf, 0.0, 0.0],
                [1.0, 2.0, 3.0, 4.0],
            ]
        )
        session = ServingSession(fitted_plan)
        response = session.serve_one(Dataset(X=X, names=NAMES))
        assert response.ok
        np.testing.assert_array_equal(
            response.values, fitted_plan.transform_matrix(X)
        )

    def test_many_requests_stay_clean(self, fitted_plan, rng):
        session = ServingSession(fitted_plan, deadline_ms=10_000, max_queue=64)
        rows = [rng.normal(size=4) for _ in range(20)]
        responses = session.serve(rows)
        assert all(r.status == OK for r in responses)
        for row, response in zip(rows, responses):
            np.testing.assert_array_equal(
                response.values, fitted_plan.transform_matrix(row)
            )
        assert session.report.degraded_responses == 0


class TestSlowOperatorPastDeadline:
    def test_slow_operator_degrades_tail_never_crashes(self, fitted_plan, rng):
        # Real monotonic clock, tiny budget: the armed slow operator
        # burns it at step 3; steps 1-2 already served stay intact.
        session = ServingSession(fitted_plan, deadline_ms=50.0)
        X = rng.normal(size=4)
        with active("serve.slow_operator", mode="nth", nth=3):
            response = session.serve_one(X)
        assert response.status == DEGRADED
        assert response.deadline_hit
        clean = fitted_plan.transform_matrix(X)
        np.testing.assert_array_equal(response.values[:3], clean[:3])
        assert np.all(np.isnan(response.values[3:]))
        assert session.report.deadline_hits == 1

        # next request (nothing armed) is served clean and identical
        follow_up = session.serve_one(X)
        assert follow_up.status == OK
        np.testing.assert_array_equal(follow_up.values, clean)

    def test_slow_operator_without_deadline_is_harmless(self, fitted_plan, rng):
        session = ServingSession(fitted_plan)  # unbounded budget by choice
        with active("serve.slow_operator", mode="nth", nth=1):
            response = session.serve_one(rng.normal(size=4))
        assert response.status == OK


class TestTrippedExpression:
    def test_breaker_serves_nan_while_rest_of_psi_stays_live(
        self, fitted_plan, rng
    ):
        clock = ManualClock()
        session = ServingSession(
            fitted_plan, breaker_threshold=2, breaker_cooldown=30.0, clock=clock
        )
        X = rng.normal(size=4)
        clean = fitted_plan.transform_matrix(X)
        bad_key = fitted_plan.expressions[2].key

        # two consecutive faults at expression 3 trip its breaker
        for _ in range(2):
            with active("serve.operator", mode="nth", nth=3):
                response = session.serve_one(X)
            assert response.status == DEGRADED
            assert response.nulled == (bad_key,)
        assert session.report.breaker_trips == 1
        assert session.report.tripped_expressions == [bad_key]

        # while open: short-circuited to NaN, everything else identical
        response = session.serve_one(X)
        assert response.status == DEGRADED
        assert np.isnan(response.values[2])
        np.testing.assert_array_equal(
            response.values[[0, 1, 3, 4]], clean[[0, 1, 3, 4]]
        )
        assert session.report.breaker_short_circuits == 1

        # cooldown elapsed: probe succeeds, full Ψ is back, bit-identical
        clock.t = 100.0
        recovered = session.serve_one(X)
        assert recovered.status == OK
        np.testing.assert_array_equal(recovered.values, clean)


class TestCorruptHotSwap:
    def test_bad_swap_rolls_back_and_serving_continues(
        self, fitted_plan, rng, tmp_path
    ):
        session = ServingSession(fitted_plan)
        X = rng.normal(size=(8, 4))
        clean = fitted_plan.transform_matrix(X)

        # corrupt file, truncated JSON, wrong schema, failed self-test —
        # all refused, all recorded, session serves the old plan throughout
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text('{"original_names": ["a"]')
        with pytest.raises(PlanSwapError):
            session.swap_plan(corrupt)

        wrong_schema = FeatureTransformer(
            expressions=(Var(0),), original_names=("x", "y")
        )
        with pytest.raises(PlanSwapError):
            session.swap_plan(wrong_schema)

        with active("serve.bad_swap_plan"):
            with pytest.raises(PlanSwapError):
                session.swap_plan(fitted_plan)

        assert session.report.swaps_rolled_back == 3
        assert len(session.report.swap_failures) == 3
        response = session.serve_one(X)
        assert response.status == OK
        np.testing.assert_array_equal(response.values, clean)

    def test_forward_version_plan_is_refused_at_swap(
        self, fitted_plan, tmp_path
    ):
        import json

        payload = fitted_plan.to_dict()
        payload["format_version"] = 99
        future = tmp_path / "future.json"
        future.write_text(json.dumps(payload))
        session = ServingSession(fitted_plan)
        with pytest.raises(PlanSwapError, match="format_version"):
            session.swap_plan(future)
        assert session.report.swaps_rolled_back == 1


class TestQueueOverflowChaos:
    def test_burst_sheds_oldest_and_answers_everyone(self, fitted_plan, rng):
        session = ServingSession(fitted_plan, max_queue=4)
        rows = [rng.normal(size=4) for _ in range(12)]
        responses = session.serve(rows)
        assert len(responses) == 12
        assert [r.status for r in responses[:8]] == [SHED] * 8
        assert all(r.status == OK for r in responses[8:])
        assert session.report.shed == 8
        # shed responses are flagged, not silent
        assert all("overload" in r.error for r in responses[:8])


class TestEverythingAtOnce:
    def test_full_chaos_never_crashes_and_all_flags_recorded(
        self, fitted_plan, rng
    ):
        """All failure modes in one session; every request gets an answer."""
        session = ServingSession(
            fitted_plan,
            deadline_ms=50.0,
            max_queue=8,
            breaker_threshold=1,
            policy=CoercionPolicy.from_spec("all"),
        )
        rows: "list[object]" = [rng.normal(size=4) for _ in range(6)]
        rows.insert(2, {"amount": 1.0})            # coerced (missing → NaN)
        rows.insert(4, np.ones(9))                 # rejected (width drift)
        with active("serve.operator", mode="prob", probability=0.3, seed=7):
            responses = session.serve(rows)
        assert len(responses) == len(rows)
        assert all(r.status in (OK, DEGRADED, SHED, "rejected") for r in responses)
        # flags account for every degradation
        summary = session.report.summary()
        degraded = [r for r in responses if r.status == DEGRADED]
        for response in degraded:
            assert response.nulled or response.deadline_hit
        assert summary["rejected"] == 1
        assert summary["nulled_columns"] >= len(
            [r for r in degraded if r.nulled]
        ) or summary["breaker_short_circuits"] > 0


# ----------------------------------------------------------------------
# Satellite: property-based chaos on the errors="null" degradation path
# ----------------------------------------------------------------------
class TestNullModeProperty:
    """``transform(errors="null")`` never raises for a fault at any single
    operator site, and the non-faulted columns are bit-identical."""

    @settings(max_examples=40, deadline=None)
    @given(
        faulted=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    def test_single_site_fault_nulls_exactly_one_column(self, faulted, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        X = rng.normal(size=(data.draw(st.integers(1, 12)), 4))
        plan = FeatureTransformer(
            expressions=(
                Var(0),
                Applied("add", (Var(0), Var(1))),
                fit_applied("zscore", (Var(2),), X),
                Applied("div", (Var(3), Var(1))),
                Applied("mul", (Var(2), Var(3))),
            ),
            original_names=NAMES,
        )
        clean = plan.transform_matrix(X, errors="null")
        FAILPOINTS.reset()
        try:
            # errors="null" hits transform.evaluate once per expression,
            # so nth=k faults exactly the k-th column's evaluation.
            with active("transform.evaluate", mode="nth", nth=faulted):
                out = plan.transform_matrix(X, errors="null")  # must not raise
        finally:
            FAILPOINTS.reset()
        j = faulted - 1
        assert np.all(np.isnan(out[:, j]))
        keep = [c for c in range(clean.shape[1]) if c != j]
        np.testing.assert_array_equal(out[:, keep], clean[:, keep])
