"""Tests for the synthetic dataset surrogates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARK_NAMES,
    BUSINESS_NAMES,
    SyntheticTaskSpec,
    benchmark_info,
    build_task,
    business_info,
    load_benchmark,
    load_business,
    make_classification_task,
)
from repro.exceptions import ConfigurationError


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 1, "n_informative": 2},
            {"n_features": 4, "n_informative": 5},
            {"n_features": 4, "n_informative": 3, "n_redundant": 2},
            {"n_features": 4, "n_informative": 2, "positive_rate": 0.0},
            {"n_features": 4, "n_informative": 2, "n_interactions": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SyntheticTaskSpec(**kwargs)


class TestBuildTask:
    spec = SyntheticTaskSpec(n_features=10, n_informative=5, n_interactions=3,
                             n_redundant=2, seed=7)

    def test_structure_frozen(self):
        a = build_task(self.spec)
        b = build_task(self.spec)
        assert [(i.kind, i.i, i.j) for i in a.interactions] == [
            (i.kind, i.i, i.j) for i in b.interactions
        ]
        assert np.array_equal(a.linear_weights, b.linear_weights)

    def test_interactions_among_informative(self):
        task = build_task(self.spec)
        for inter in task.interactions:
            assert inter.i < self.spec.n_informative
            assert inter.j < self.spec.n_informative

    def test_sample_shapes_and_labels(self):
        task = build_task(self.spec)
        data = task.sample(500, seed=1)
        assert data.shape == (500, 10)
        assert set(np.unique(data.y)) <= {0.0, 1.0}

    def test_same_seed_same_sample(self):
        task = build_task(self.spec)
        a = task.sample(100, seed=3)
        b = task.sample(100, seed=3)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_different_seed_different_sample(self):
        task = build_task(self.spec)
        a = task.sample(100, seed=3)
        b = task.sample(100, seed=4)
        assert not np.array_equal(a.X, b.X)

    def test_redundant_columns_correlated(self):
        task = build_task(self.spec)
        data = task.sample(2000, seed=1)
        for offset, src in enumerate(task.redundant_sources):
            dst = self.spec.n_informative + offset
            corr = np.corrcoef(data.X[:, src], data.X[:, dst])[0, 1]
            assert abs(corr) > 0.95

    def test_positive_rate_calibrated(self):
        spec = SyntheticTaskSpec(n_features=6, n_informative=4, positive_rate=0.1,
                                 heavy_tail=0.4, seed=11)
        data = build_task(spec).sample(20000, seed=5)
        assert data.y.mean() == pytest.approx(0.1, abs=0.03)

    def test_labels_are_learnable_from_interactions(self):
        from repro.metrics import roc_auc_score
        from repro.models import XGBClassifier

        task = build_task(self.spec)
        train = task.sample(3000, seed=1)
        test = task.sample(1000, seed=2)
        clf = XGBClassifier(n_estimators=30).fit(train.X, train.y)
        auc = roc_auc_score(test.y, clf.predict_proba(test.X)[:, 1])
        assert auc > 0.7

    def test_make_classification_task_shortcut(self):
        data = make_classification_task(100, self.spec, seed=0)
        assert data.n_rows == 100


class TestBenchmarks:
    def test_twelve_datasets(self):
        assert len(BENCHMARK_NAMES) == 12

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_info_matches_table4_dims(self, name):
        # Spot-check the Table IV dimensions are encoded faithfully.
        expected_dims = {
            "valley": 100, "banknote": 4, "gina": 970, "spambase": 57,
            "phoneme": 5, "wind": 14, "ailerons": 40, "eeg-eye": 14,
            "magic": 10, "nomao": 118, "bank": 51, "vehicle": 100,
        }
        assert benchmark_info(name).n_dim == expected_dims[name]
        assert benchmark_info(name).spec.n_features == expected_dims[name]

    def test_small_datasets_have_no_validation(self):
        __, valid, __ = load_benchmark("banknote", scale=0.2)
        assert valid is None

    def test_large_datasets_have_validation(self):
        __, valid, __ = load_benchmark("magic", scale=0.05)
        assert valid is not None

    def test_scale_scales_rows_not_dims(self):
        tr_small, __, __ = load_benchmark("wind", scale=0.05)
        tr_big, __, __ = load_benchmark("wind", scale=0.2)
        assert tr_big.n_rows > tr_small.n_rows
        assert tr_big.n_cols == tr_small.n_cols == 14

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            benchmark_info("mnist")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            load_benchmark("wind", scale=0.0)

    def test_reproducible(self):
        a, __, __ = load_benchmark("wind", scale=0.05)
        b, __, __ = load_benchmark("wind", scale=0.05)
        assert np.array_equal(a.X, b.X)

    def test_train_test_disjoint_draws(self):
        tr, __, te = load_benchmark("wind", scale=0.05)
        assert not np.array_equal(tr.X[: te.n_rows], te.X)


class TestBusiness:
    def test_three_datasets(self):
        assert BUSINESS_NAMES == ("data1", "data2", "data3")

    @pytest.mark.parametrize("name,dim", [("data1", 81), ("data2", 44), ("data3", 73)])
    def test_table7_dims(self, name, dim):
        assert business_info(name).n_dim == dim

    def test_imbalanced(self):
        tr, __, __ = load_business("data1", scale=0.003)
        assert tr.y.mean() < 0.05

    def test_validation_always_present(self):
        __, valid, __ = load_business("data2", scale=0.002)
        assert valid is not None

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            business_info("data9")
