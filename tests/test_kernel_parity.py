"""Kernel ↔ oracle parity tests required by the kernel-parity lint rule.

Every ``@batched_kernel(oracle=...)`` function must appear in some test
module together with its oracle (``python -m repro lint`` enforces this
statically). This module holds the parity checks for the kernels whose
oracle comparisons are not already exercised elsewhere:

* ``standardize_columns``   vs ``pearson_matrix``
* ``max_abs_correlation``   vs ``pearson_matrix``
* ``gain_ratio_from_labeled_cells`` vs ``information_gain_ratio``
* ``batch_populate_cache``  vs ``evaluate_expressions``
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.redundancy import max_abs_correlation, standardize_columns
from repro.metrics.batched import gain_ratio_from_labeled_cells
from repro.metrics.information import (
    entropy,
    information_gain_ratio,
    pearson_matrix,
)
from repro.operators import Applied, Var, evaluate_expressions
from repro.operators.engine import EvalCache, batch_populate_cache


def _corner_matrix(rng: np.random.Generator) -> np.ndarray:
    """Random columns plus the corners the kernels guard against."""
    X = rng.normal(size=(200, 7))
    X[:, 2] = 3.25                      # exactly constant
    X[:, 4] = 0.1                       # numerically constant (std ~1e-17)
    X[:, 5] = 2.0 * X[:, 0] - 1.0       # perfectly correlated with x0
    return X


class TestStandardizeColumnsParity:
    def test_gram_of_standardized_block_matches_pearson_matrix(self, rng):
        X = _corner_matrix(rng)
        Z, constant = standardize_columns(X.copy())
        C = Z.T @ Z
        C[constant, :] = 0.0
        C[:, constant] = 0.0
        np.fill_diagonal(C, 1.0)
        C = np.clip(C, -1.0, 1.0)
        np.testing.assert_allclose(C, pearson_matrix(X), atol=1e-10)

    def test_constant_mask_matches_pearson_noise_floor(self, rng):
        X = _corner_matrix(rng)
        _, constant = standardize_columns(X.copy())
        assert constant.tolist() == [False, False, True, False, True, False, False]

    def test_nan_column_propagates_like_pearson(self, rng):
        X = _corner_matrix(rng)
        X[0, 1] = np.nan
        Z, constant = standardize_columns(X.copy())
        C = Z.T @ Z
        C[constant, :] = 0.0
        C[:, constant] = 0.0
        np.fill_diagonal(C, 1.0)
        np.testing.assert_allclose(
            np.clip(C, -1.0, 1.0), pearson_matrix(X), atol=1e-10, equal_nan=True
        )


class TestMaxAbsCorrelationParity:
    def test_matches_pearson_matrix_block_maximum(self, rng):
        X = _corner_matrix(rng)
        full = pearson_matrix(X)
        n_cand = 3
        Zc, cand_constant = standardize_columns(X[:, :n_cand].copy())
        Zp, kept_constant = standardize_columns(X[:, n_cand:].copy())
        # chunk=2 forces the chunked-GEMM reduction through multiple passes.
        got = max_abs_correlation(Zc, Zp, cand_constant, kept_constant, chunk=2)
        expected = np.abs(full[:n_cand, n_cand:]).max(axis=1)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_constant_candidate_scores_zero_like_pearson_row(self, rng):
        X = _corner_matrix(rng)
        full = pearson_matrix(X)
        Zc, cand_constant = standardize_columns(X[:, [2, 4]].copy())
        Zp, kept_constant = standardize_columns(X[:, [0, 1]].copy())
        got = max_abs_correlation(Zc, Zp, cand_constant, kept_constant)
        expected = np.abs(full[np.ix_([2, 4], [0, 1])]).max(axis=1)
        np.testing.assert_allclose(got, expected, atol=1e-12)
        assert got.tolist() == [0.0, 0.0]


class TestGainRatioFromLabeledCellsParity:
    def test_matches_information_gain_ratio(self, rng):
        y = rng.integers(0, 2, size=400)
        cells = rng.integers(0, 9, size=400)
        labeled = cells.astype(np.int64) * 2 + (y == 1)
        got = gain_ratio_from_labeled_cells(labeled, 18, y.size, entropy(y))
        assert got == pytest.approx(information_gain_ratio(y, cells), abs=1e-12)

    def test_sparse_cell_ids_match_after_remap(self, rng):
        # Huge, sparse cell ids (the np.unique fallback path of callers).
        y = rng.integers(0, 2, size=300)
        raw = rng.choice(np.array([7, 1000, 52341, 9]), size=300)
        _, inverse = np.unique(raw, return_inverse=True)
        labeled = inverse.astype(np.int64) * 2 + (y == 1)
        got = gain_ratio_from_labeled_cells(labeled, 8, y.size, entropy(y))
        assert got == pytest.approx(information_gain_ratio(y, raw), abs=1e-12)

    def test_single_cell_partition_is_zero_both_ways(self, rng):
        y = rng.integers(0, 2, size=100)
        cells = np.zeros(100, dtype=np.int64)
        labeled = cells * 2 + (y == 1)
        assert gain_ratio_from_labeled_cells(labeled, 2, 100, entropy(y)) == 0.0
        assert information_gain_ratio(y, cells) == 0.0


class TestBatchPopulateCacheParity:
    def test_batched_columns_bit_identical_to_evaluate_expressions(self, rng):
        X = rng.normal(size=(64, 5))
        X[3, 4] = 0.0  # exercise DivOp's protected-zero branch in batch
        shared = Applied("add", (Var(0), Var(1)))
        expressions = [
            shared,
            Applied("mul", (Var(2), Var(3))),
            Applied("sigmoid", (shared,)),
            Applied("div", (Var(1), Var(4))),
            Applied("cond", (Var(0), Var(1), Var(2))),
        ]
        cache = EvalCache(X)
        batch_populate_cache(cache, expressions)
        reference = evaluate_expressions(expressions, X)
        for j, expr in enumerate(expressions):
            np.testing.assert_array_equal(cache.column(expr), reference[:, j])

    def test_stateful_and_cached_nodes_are_left_alone(self, rng):
        X = rng.normal(size=(32, 3))
        expr = Applied("add", (Var(0), Var(1)))
        cache = EvalCache(X)
        sentinel = np.full(32, 42.0)
        cache.put(expr, sentinel)
        batch_populate_cache(cache, [expr])
        np.testing.assert_array_equal(cache.column(expr), sentinel)
