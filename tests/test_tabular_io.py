"""Tests for repro.tabular.io CSV round-tripping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.tabular import Dataset, load_csv, save_csv


class TestRoundTrip:
    def test_labeled_roundtrip(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(20, 3))
        ds = Dataset(X=X, names=("a", "b", "c"), y=(X[:, 0] > 0).astype(float))
        path = tmp_path / "data.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.names == ("a", "b", "c")
        assert np.allclose(back.X, ds.X)
        assert np.allclose(back.y, ds.y)

    def test_unlabeled_roundtrip(self, tmp_path):
        ds = Dataset.from_arrays(np.eye(3))
        path = tmp_path / "plain.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.y is None
        assert np.allclose(back.X, np.eye(3))

    def test_nan_roundtrip(self, tmp_path):
        X = np.array([[1.0, np.nan], [2.0, 3.0]])
        ds = Dataset.from_arrays(X)
        path = tmp_path / "nan.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert np.isnan(back.X[0, 1])

    def test_label_column_opt_out(self, tmp_path):
        ds = Dataset.from_arrays(np.ones((2, 1)), y=[0, 1])
        path = tmp_path / "both.csv"
        save_csv(ds, path)
        back = load_csv(path, label_column=None)
        assert back.y is None
        assert back.n_cols == 2  # label column read as a plain feature


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_non_numeric_cell(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,hello\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(DataError):
            load_csv(path)
