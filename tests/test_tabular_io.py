"""Tests for repro.tabular.io CSV round-tripping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.tabular import Dataset, load_csv, save_csv


class TestRoundTrip:
    def test_labeled_roundtrip(self, tmp_path):
        X = np.random.default_rng(0).normal(size=(20, 3))
        ds = Dataset(X=X, names=("a", "b", "c"), y=(X[:, 0] > 0).astype(float))
        path = tmp_path / "data.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.names == ("a", "b", "c")
        assert np.allclose(back.X, ds.X)
        assert np.allclose(back.y, ds.y)

    def test_unlabeled_roundtrip(self, tmp_path):
        ds = Dataset.from_arrays(np.eye(3))
        path = tmp_path / "plain.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.y is None
        assert np.allclose(back.X, np.eye(3))

    def test_nan_roundtrip(self, tmp_path):
        X = np.array([[1.0, np.nan], [2.0, 3.0]])
        ds = Dataset.from_arrays(X)
        path = tmp_path / "nan.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert np.isnan(back.X[0, 1])

    def test_label_column_opt_out(self, tmp_path):
        ds = Dataset.from_arrays(np.ones((2, 1)), y=[0, 1])
        path = tmp_path / "both.csv"
        save_csv(ds, path)
        back = load_csv(path, label_column=None)
        assert back.y is None
        assert back.n_cols == 2  # label column read as a plain feature


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_non_numeric_cell(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,hello\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(DataError):
            load_csv(path)


def _manifest_workload(tmp_path, n=500, cols=4, chunk_rows=100):
    from repro.tabular.io import ChunkedDataset, save_npy, write_manifest

    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, cols))
    y = (X[:, 0] > 0).astype(float)
    ds = Dataset(X=X, y=y, names=tuple(f"f{i}" for i in range(cols)))
    x_path = tmp_path / "X.npy"
    y_path = tmp_path / "y.npy"
    save_npy(ds, x_path, y_path)
    plain = ChunkedDataset.from_npy(
        x_path, y_path=y_path, chunk_rows=chunk_rows, manifest=False
    )
    write_manifest(plain, chunk_rows=chunk_rows)
    return X, y, x_path, y_path


def _corrupt_rows(x_path, lo, hi):
    arr = np.load(x_path, mmap_mode="r+")
    arr[lo:hi] += 1.0
    arr.flush()


class TestChunkManifests:
    def test_sidecar_manifest_written_and_loadable(self, tmp_path):
        from repro.tabular.io import (
            MANIFEST_FORMAT,
            load_manifest,
            manifest_path_for,
        )

        _, _, x_path, _ = _manifest_workload(tmp_path)
        payload = load_manifest(manifest_path_for(x_path))
        assert payload["format"] == MANIFEST_FORMAT
        assert payload["n_rows"] == 500
        assert len(payload["chunks"]) == 5

    def test_clean_data_verifies_and_iterates_identically(self, tmp_path):
        from repro.tabular.io import ChunkedDataset

        X, y, x_path, y_path = _manifest_workload(tmp_path)
        data = ChunkedDataset.from_npy(
            x_path, y_path=y_path, chunk_rows=100, manifest=True
        )
        assert data.verify_integrity() == ()
        got = data.materialize()
        assert np.array_equal(got.X, X) and np.array_equal(got.y, y)

    def test_corrupt_chunk_raises_typed_error_with_row_range(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset

        _, _, x_path, y_path = _manifest_workload(tmp_path)
        _corrupt_rows(x_path, 200, 300)
        data = ChunkedDataset.from_npy(
            x_path, y_path=y_path, chunk_rows=100, manifest=True
        )
        with pytest.raises(ChunkIntegrityError) as excinfo:
            for _ in data.iter_chunks():
                pass
        assert "[200, 300)" in str(excinfo.value)

    def test_corrupt_chunk_never_silently_consumed(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset

        X, _, x_path, y_path = _manifest_workload(tmp_path)
        _corrupt_rows(x_path, 0, 100)
        data = ChunkedDataset.from_npy(
            x_path, y_path=y_path, chunk_rows=100, manifest=True
        )
        rows_seen = []
        with pytest.raises(ChunkIntegrityError):
            for rows, _, _ in data.iter_chunks():
                rows_seen.append((rows.start, rows.stop))
        assert rows_seen == []  # the bad chunk's rows were never yielded

    def test_quarantine_excludes_bad_chunk_deterministically(self, tmp_path):
        from repro.tabular.io import ChunkedDataset

        X, y, x_path, y_path = _manifest_workload(tmp_path)
        _corrupt_rows(x_path, 200, 300)
        data = ChunkedDataset.from_npy(
            x_path,
            y_path=y_path,
            chunk_rows=100,
            manifest=True,
            on_chunk_error="quarantine",
        )
        assert data.n_rows == 400
        records = data.quarantined_chunks()
        assert [r.chunk_index for r in records] == [2]
        assert (records[0].row_start, records[0].row_stop) == (200, 300)
        survivors = np.delete(X, slice(200, 300), axis=0)
        got = data.materialize()
        assert np.array_equal(got.X, survivors)
        # effective row numbering is contiguous across the hole
        starts = [rows.start for rows, _, _ in data.iter_chunks()]
        stops = [rows.stop for rows, _, _ in data.iter_chunks()]
        assert starts == [0, 100, 200, 300]
        assert stops == [100, 200, 300, 400]

    def test_quarantined_shards_stay_consistent(self, tmp_path):
        from repro.tabular.io import ChunkedDataset

        X, _, x_path, y_path = _manifest_workload(tmp_path)
        _corrupt_rows(x_path, 100, 200)
        data = ChunkedDataset.from_npy(
            x_path,
            y_path=y_path,
            chunk_rows=100,
            manifest=True,
            on_chunk_error="quarantine",
        )
        shards = data.shards(2)
        assert sum(s.n_rows for s in shards) == data.n_rows
        parts = [s.materialize().X for s in shards]
        assert np.array_equal(np.vstack(parts), data.materialize().X)

    def test_corrupt_manifest_is_detected(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset, manifest_path_for

        _, _, x_path, y_path = _manifest_workload(tmp_path)
        sidecar = manifest_path_for(x_path)
        text = sidecar.read_text().replace('"n_rows": 500', '"n_rows": 400')
        sidecar.write_text(text)
        with pytest.raises(ChunkIntegrityError):
            data = ChunkedDataset.from_npy(
                x_path, y_path=y_path, chunk_rows=100, manifest=True
            )
            for _ in data.iter_chunks():
                pass

    def test_truncated_backing_file_is_detected(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset, save_npy

        X, y, x_path, y_path = _manifest_workload(tmp_path)
        # rewrite both backing files shorter, keeping the stale manifest
        np.save(tmp_path / "X2.npy", np.asarray(X[:400]))
        np.save(tmp_path / "y2.npy", np.asarray(y[:400]))
        (tmp_path / "X2.npy").replace(x_path)
        (tmp_path / "y2.npy").replace(y_path)
        with pytest.raises(ChunkIntegrityError):
            data = ChunkedDataset.from_npy(
                x_path, y_path=y_path, chunk_rows=100, manifest=True
            )
            for _ in data.iter_chunks():
                pass

    def test_manifest_true_requires_sidecar(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset, manifest_path_for

        _, _, x_path, y_path = _manifest_workload(tmp_path)
        manifest_path_for(x_path).unlink()
        with pytest.raises(ChunkIntegrityError):
            ChunkedDataset.from_npy(
                x_path, y_path=y_path, chunk_rows=100, manifest=True
            )

    def test_manifest_auto_discovery_defaults_on_when_present(self, tmp_path):
        from repro.exceptions import ChunkIntegrityError
        from repro.tabular.io import ChunkedDataset

        _, _, x_path, y_path = _manifest_workload(tmp_path)
        _corrupt_rows(x_path, 0, 100)
        data = ChunkedDataset.from_npy(x_path, y_path=y_path, chunk_rows=100)
        with pytest.raises(ChunkIntegrityError):
            for _ in data.iter_chunks():
                pass
        # and manifest=False opts out entirely
        data = ChunkedDataset.from_npy(
            x_path, y_path=y_path, chunk_rows=100, manifest=False
        )
        assert sum(len(r) for r, _, _ in data.iter_chunks()) == 500


class TestAtomicArtifacts:
    def test_interrupted_save_npy_leaves_no_partial_file(self, tmp_path, monkeypatch):
        from repro.tabular.io import save_npy

        ds = Dataset.from_arrays(np.ones((4, 2)))
        x_path = tmp_path / "X.npy"

        real_save = np.save

        def exploding_save(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "save", exploding_save)
        with pytest.raises(OSError):
            save_npy(ds, x_path)
        monkeypatch.setattr(np, "save", real_save)
        assert not x_path.exists()
        assert list(tmp_path.iterdir()) == []  # no temp litter either

    def test_interrupted_save_csv_preserves_previous_contents(self, tmp_path, monkeypatch):
        import csv as csv_module

        path = tmp_path / "out.csv"
        save_csv(Dataset.from_arrays(np.ones((1, 1))), path)
        before = path.read_text()

        class ExplodingWriter:
            def __init__(self, *a, **k):
                raise OSError("disk full")

        monkeypatch.setattr(csv_module, "writer", ExplodingWriter)
        with pytest.raises(OSError):
            save_csv(Dataset.from_arrays(np.zeros((2, 2))), path)
        assert path.read_text() == before
