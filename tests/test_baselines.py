"""Tests for the comparison methods (ORIG, RAND, IMP, TFC, FCTree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    FCTree,
    ImportantGenerator,
    OriginalFeatures,
    RandomGenerator,
    TFC,
)
from repro.core import SAFEConfig
from repro.exceptions import ConfigurationError, DataError
from repro.metrics import roc_auc_score
from repro.models import LogisticRegression
from repro.operators import Var


class TestOriginalFeatures:
    def test_identity_transform(self, interaction_data):
        psi = OriginalFeatures().fit(interaction_data)
        out = psi.transform(interaction_data)
        assert np.allclose(out.X, interaction_data.X)
        assert psi.n_output_features == interaction_data.n_cols
        assert all(isinstance(e, Var) for e in psi.expressions)

    def test_name(self):
        assert OriginalFeatures().name == "ORIG"


class TestRandomGenerator:
    def test_generates_and_selects(self, interaction_data):
        psi = RandomGenerator(SAFEConfig(gamma=20)).fit(interaction_data)
        assert 1 <= psi.n_output_features <= 2 * interaction_data.n_cols
        assert psi.metadata["method"] == "RAND"
        assert psi.metadata["n_generated"] > 0

    def test_deterministic_with_seed(self, interaction_data):
        a = RandomGenerator(SAFEConfig(gamma=10, random_state=3)).fit(interaction_data)
        b = RandomGenerator(SAFEConfig(gamma=10, random_state=3)).fit(interaction_data)
        assert a.feature_keys == b.feature_keys

    def test_different_seeds_differ(self, interaction_data):
        a = RandomGenerator(SAFEConfig(gamma=5, random_state=1)).fit(interaction_data)
        b = RandomGenerator(SAFEConfig(gamma=5, random_state=2)).fit(interaction_data)
        # With only 5 of 28 pairs sampled, different seeds should pick
        # different pairs (astronomically unlikely to collide entirely).
        assert a.feature_keys != b.feature_keys

    def test_gamma_larger_than_pool_takes_all(self, rng):
        from repro.tabular import Dataset

        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        psi = RandomGenerator(SAFEConfig(gamma=1000)).fit(data)
        assert psi.n_output_features >= 1


class TestImportantGenerator:
    def test_pool_restricted_to_split_features(self, rng):
        from repro.tabular import Dataset

        # Only columns 0 and 1 are informative; 2..7 are noise, so the
        # mining model should rarely split on them.
        X = rng.normal(size=(3000, 8))
        y = ((X[:, 0] + X[:, 1]) > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        gen = ImportantGenerator(SAFEConfig(gamma=50, random_state=0))
        pool = gen._feature_pool(data, None)
        assert 0 in pool and 1 in pool

    def test_fit_produces_transformer(self, interaction_data):
        psi = ImportantGenerator(SAFEConfig(gamma=20)).fit(interaction_data)
        assert psi.metadata["method"] == "IMP"
        assert psi.n_output_features >= 1


class TestTFC:
    def test_exhaustive_generation_count(self, rng):
        from repro.tabular import Dataset

        X = rng.normal(size=(400, 4))
        y = (X[:, 0] > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        tfc = TFC()
        tfc.fit(data)
        # C(4,2)=6 pairs × (add + mul + 2*sub + 2*div) = 36 candidates.
        assert tfc.n_generated_ == 36

    def test_output_capped_at_2m(self, interaction_data):
        psi = TFC().fit(interaction_data)
        assert psi.n_output_features <= 2 * interaction_data.n_cols

    def test_max_candidates_guard(self, rng):
        from repro.tabular import Dataset

        X = rng.normal(size=(200, 10))
        y = (X[:, 0] > 0).astype(float)
        tfc = TFC(max_candidates=12)
        tfc.fit(Dataset.from_arrays(X, y))
        assert tfc.n_generated_ <= 12 + 6  # guard checked per pair

    def test_improves_on_interaction(self, interaction_data):
        train = interaction_data.take_rows(np.arange(800))
        test = interaction_data.take_rows(np.arange(800, 1200))
        psi = TFC().fit(train)
        tr2, te2 = psi.transform(train), psi.transform(test)
        base = LogisticRegression().fit(train.X, train.y)
        enriched = LogisticRegression().fit(tr2.X, tr2.y)
        auc_orig = roc_auc_score(test.y, base.predict_proba(test.X)[:, 1])
        auc_tfc = roc_auc_score(te2.y, enriched.predict_proba(te2.X)[:, 1])
        assert auc_tfc > auc_orig


class TestFCTree:
    def test_constructs_features(self, interaction_data):
        fct = FCTree(ne=8, max_depth=5, random_state=0)
        psi = fct.fit(interaction_data)
        assert psi.metadata["n_constructed"] == len(fct.constructed_)
        assert psi.n_output_features <= 2 * interaction_data.n_cols

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FCTree(ne=0)
        with pytest.raises(ConfigurationError):
            FCTree(max_depth=0)

    def test_needs_binary_operator(self):
        with pytest.raises(ConfigurationError):
            FCTree(operators=("log",)).fit(_dummy())

    def test_deterministic_with_seed(self, interaction_data):
        a = FCTree(ne=5, random_state=9).fit(interaction_data)
        b = FCTree(ne=5, random_state=9).fit(interaction_data)
        assert a.feature_keys == b.feature_keys

    def test_improves_on_interaction(self, interaction_data):
        train = interaction_data.take_rows(np.arange(800))
        test = interaction_data.take_rows(np.arange(800, 1200))
        psi = FCTree(ne=10, random_state=0).fit(train)
        tr2, te2 = psi.transform(train), psi.transform(test)
        base = LogisticRegression().fit(train.X, train.y)
        enriched = LogisticRegression().fit(tr2.X, tr2.y)
        auc_orig = roc_auc_score(test.y, base.predict_proba(test.X)[:, 1])
        auc_fct = roc_auc_score(te2.y, enriched.predict_proba(te2.X)[:, 1])
        assert auc_fct > auc_orig


def _dummy():
    from repro.tabular import Dataset

    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 2))
    return Dataset.from_arrays(X, (X[:, 0] > 0).astype(float))
