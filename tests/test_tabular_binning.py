"""Tests for repro.tabular.binning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.tabular import (
    Binner,
    chimerge_edges,
    codes_from_edges,
    equal_frequency_edges,
    equal_width_edges,
    quantile_codes_matrix,
)


class TestEqualWidthEdges:
    def test_uniform_spacing(self):
        edges = equal_width_edges(np.array([0.0, 10.0]), 5)
        assert np.allclose(edges, [2.0, 4.0, 6.0, 8.0])

    def test_constant_column_gives_no_edges(self):
        assert equal_width_edges(np.full(10, 3.0), 5).size == 0

    def test_invalid_bins(self):
        with pytest.raises(ConfigurationError):
            equal_width_edges(np.arange(5.0), 0)

    def test_ignores_nonfinite(self):
        x = np.array([0.0, 10.0, np.nan, np.inf])
        edges = equal_width_edges(x, 2)
        assert edges.size == 1
        assert edges[0] == pytest.approx(5.0)


class TestEqualFrequencyEdges:
    def test_balanced_counts(self):
        x = np.arange(100.0)
        edges = equal_frequency_edges(x, 4)
        codes = codes_from_edges(x, edges)
        __, counts = np.unique(codes, return_counts=True)
        assert counts.min() >= 20  # roughly balanced quartiles

    def test_duplicates_collapse(self):
        x = np.array([1.0] * 50 + [2.0] * 50)
        edges = equal_frequency_edges(x, 10)
        assert edges.size <= 1

    def test_all_nan_gives_no_edges(self):
        assert equal_frequency_edges(np.full(5, np.nan), 4).size == 0


class TestCodesFromEdges:
    def test_missing_gets_dedicated_code(self):
        edges = np.array([1.0, 2.0])
        codes = codes_from_edges(np.array([0.5, 1.5, 2.5, np.nan]), edges)
        assert codes.tolist() == [0, 1, 2, 3]

    def test_boundary_goes_left(self):
        # side="left": values equal to an edge land in the lower bin.
        edges = np.array([1.0])
        codes = codes_from_edges(np.array([1.0, 1.0001]), edges)
        assert codes.tolist() == [0, 1]

    def test_empty_edges_single_bin(self):
        codes = codes_from_edges(np.array([5.0, -3.0]), np.empty(0))
        assert codes.tolist() == [0, 0]


class TestBinner:
    def test_quantile_roundtrip(self):
        x = np.random.default_rng(0).normal(size=500)
        binner = Binner(n_bins=8).fit(x)
        codes = binner.transform(x)
        assert codes.min() >= 0
        assert codes.max() <= binner.n_effective_bins

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Binner().transform([1.0, 2.0])

    def test_n_effective_bins_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            __ = Binner().n_effective_bins

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            Binner(strategy="magic").fit([1.0, 2.0])

    def test_uniform_strategy(self):
        codes = Binner(n_bins=2, strategy="uniform").fit_transform(
            np.array([0.0, 0.4, 0.6, 1.0])
        )
        assert codes.tolist() == [0, 0, 1, 1]

    def test_empty_column_raises(self):
        with pytest.raises(DataError):
            Binner().fit(np.empty(0))


class TestChiMerge:
    def test_reduces_to_max_bins(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=400)
        y = (x > 0).astype(float)
        edges = chimerge_edges(x, y, max_bins=4, initial_bins=20)
        assert edges.size <= 3  # interior edges for <= 4 bins

    def test_keeps_informative_boundary(self):
        # Label flips exactly at 0: the surviving cut should be near 0.
        x = np.linspace(-1, 1, 200)
        y = (x > 0).astype(float)
        edges = chimerge_edges(x, y, max_bins=2, initial_bins=10)
        assert edges.size == 1
        assert abs(edges[0]) < 0.3

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            chimerge_edges(np.arange(4.0), np.zeros(3))


class TestQuantileCodesMatrix:
    def test_shapes(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        codes, edges = quantile_codes_matrix(X, max_bins=8)
        assert codes.shape == X.shape
        assert len(edges) == 3

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            quantile_codes_matrix(np.arange(5.0))

    def test_nan_maps_to_missing_code(self):
        X = np.array([[1.0], [2.0], [np.nan]])
        codes, edges = quantile_codes_matrix(X, max_bins=4)
        assert codes[2, 0] == edges[0].size + 1


class TestCodesFromEdgesMatrix:
    def test_matches_per_column_codes(self):
        from repro.tabular.binning import codes_from_edges_matrix

        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 4))
        X[::7, 1] = np.nan
        X[::11, 2] = np.inf
        __, edges = quantile_codes_matrix(X, max_bins=8)
        X_new = rng.normal(size=(80, 4))
        X_new[::5, 0] = -np.inf
        out = codes_from_edges_matrix(X_new, edges)
        for j in range(4):
            assert np.array_equal(out[:, j], codes_from_edges(X_new[:, j], edges[j]))

    def test_fortran_ordered_int64(self):
        from repro.tabular.binning import codes_from_edges_matrix

        X = np.random.default_rng(2).normal(size=(30, 3))
        codes, edges = quantile_codes_matrix(X, max_bins=4)
        assert codes.flags.f_contiguous
        assert codes.dtype == np.int64
        again = codes_from_edges_matrix(X, edges)
        assert np.array_equal(again, codes)

    def test_column_count_mismatch(self):
        from repro.tabular.binning import codes_from_edges_matrix

        X = np.random.default_rng(3).normal(size=(10, 3))
        __, edges = quantile_codes_matrix(X, max_bins=4)
        with pytest.raises(DataError):
            codes_from_edges_matrix(X[:, :2], edges)

    def test_rejects_1d(self):
        from repro.tabular.binning import codes_from_edges_matrix

        with pytest.raises(DataError):
            codes_from_edges_matrix(np.arange(4.0), [np.array([0.5])])
