"""Tests for the operator registry and base contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OperatorError
from repro.operators import (
    PAPER_OPERATOR_SET,
    Operator,
    available_operators,
    get_operator,
    register_operator,
    resolve_operators,
)


class TestRegistry:
    def test_paper_set_registered(self):
        for name in PAPER_OPERATOR_SET:
            assert get_operator(name).arity == 2

    def test_unknown_name_raises(self):
        with pytest.raises(OperatorError):
            get_operator("warp_drive")

    def test_available_by_arity(self):
        unary = available_operators(arity=1)
        assert "log" in unary
        assert "add" not in unary
        binary = available_operators(arity=2)
        assert set(PAPER_OPERATOR_SET) <= set(binary)

    def test_resolve_multiple(self):
        ops = resolve_operators(("add", "mul"))
        assert [o.name for o in ops] == ["add", "mul"]

    def test_duplicate_registration_rejected(self):
        class Dup(Operator):
            name = "add"
            arity = 2

            def apply(self, state, a, b):
                return a + b

        with pytest.raises(OperatorError):
            register_operator(Dup())

    def test_overwrite_flag_allows_replacement(self):
        original = get_operator("add")

        class Same(Operator):
            name = "add"
            arity = 2
            commutative = True
            symbol = "+"

            def apply(self, state, a, b):
                return a + b

        try:
            replaced = register_operator(Same(), overwrite=True)
            assert get_operator("add") is replaced
        finally:
            register_operator(original, overwrite=True)

    def test_empty_name_rejected(self):
        class NoName(Operator):
            name = ""
            arity = 1

            def apply(self, state, x):
                return x

        with pytest.raises(OperatorError):
            register_operator(NoName())

    def test_bad_arity_rejected(self):
        class BadArity(Operator):
            name = "bad_arity_op"
            arity = 0

            def apply(self, state):
                return None

        with pytest.raises(OperatorError):
            register_operator(BadArity())


class TestUserExtension:
    def test_custom_operator_usable_end_to_end(self):
        class Hypot(Operator):
            name = "test_hypot"
            arity = 2
            commutative = True
            symbol = "hypot"

            def apply(self, state, a, b):
                return np.hypot(a, b)

        try:
            register_operator(Hypot())
            op = get_operator("test_hypot")
            out = op.apply(None, np.array([3.0]), np.array([4.0]))
            assert out[0] == pytest.approx(5.0)
            assert op.format("a", "b") == "hypot(a, b)"
        finally:
            # Leave the global registry clean for other tests.
            from repro.operators.base import _REGISTRY

            _REGISTRY.pop("test_hypot", None)


class TestFormat:
    def test_infix_for_arithmetic(self):
        assert get_operator("add").format("u", "v") == "(u + v)"
        assert get_operator("div").format("u", "v") == "(u / v)"

    def test_function_style_for_named_ops(self):
        assert get_operator("groupby_avg").format("k", "v") == "groupby_avg(k, v)"
        assert get_operator("log").format("u") == "log(u)"

    def test_check_arity(self):
        with pytest.raises(OperatorError):
            get_operator("add").check_arity(3)
