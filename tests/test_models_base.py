"""Tests for the shared classifier plumbing in repro.models.base."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.models import prepare_features, prepare_training
from repro.models.base import (
    Classifier,
    check_n_features,
    ensure_fitted,
    predict_from_proba,
    proba_from_positive,
)


class TestPrepare:
    def test_prepare_features_sanitizes(self):
        X = np.array([[np.nan, 1.0], [np.inf, 2.0]])
        out = prepare_features(X)
        assert np.isfinite(out).all()

    def test_prepare_training_validates_labels(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            prepare_training(X, np.full(10, 2.0))  # non-binary

    def test_prepare_training_requires_two_classes(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            prepare_training(X, np.zeros(10))

    def test_prepare_training_roundtrip(self, rng):
        X = rng.normal(size=(10, 2))
        y = (X[:, 0] > 0).astype(float)
        X2, y2 = prepare_training(X, y)
        assert X2.shape == X.shape
        assert np.array_equal(y2, y)


class TestProbaHelpers:
    def test_proba_from_positive_stacks(self):
        out = proba_from_positive(np.array([0.2, 0.9]))
        assert np.allclose(out, [[0.8, 0.2], [0.1, 0.9]])

    def test_proba_clipped(self):
        out = proba_from_positive(np.array([-0.5, 1.5]))
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_predict_from_proba_threshold(self):
        proba = np.array([[0.6, 0.4], [0.4, 0.6], [0.5, 0.5]])
        assert predict_from_proba(proba).tolist() == [0.0, 1.0, 1.0]


class TestGuards:
    def test_check_n_features(self, rng):
        with pytest.raises(DataError):
            check_n_features(rng.normal(size=(5, 3)), 4, "M")

    def test_ensure_fitted(self):
        with pytest.raises(NotFittedError):
            ensure_fitted(None, "M")
        ensure_fitted(object(), "M")  # no raise


class TestProtocol:
    def test_all_registry_models_satisfy_protocol(self):
        from repro.models import available_classifiers, make_classifier

        for name in available_classifiers():
            assert isinstance(make_classifier(name), Classifier)
