"""Tests for the complexity-validation experiment (E9)."""

from __future__ import annotations

import pytest

from repro.experiments import complexity


@pytest.mark.slow
class TestComplexityRun:
    def test_sweeps_have_requested_points(self):
        result = complexity.run(
            n_values=(500, 1000),
            k1_values=(5, 10),
            m_values=(10, 20),
            gamma=15,
            verbose=False,
        )
        assert [n for n, __ in result.n_sweep] == [500, 1000]
        assert [k for k, __ in result.k1_sweep] == [5, 10]
        assert [m for m, __, __ in result.m_sweep] == [10, 20]
        assert all(t > 0 for __, t in result.n_sweep)

    def test_exponent_is_finite(self):
        result = complexity.run(
            n_values=(500, 2000),
            k1_values=(5,),
            m_values=(10,),
            gamma=15,
            verbose=False,
        )
        assert -1.0 < result.n_scaling_exponent < 2.5
