"""Tests for LogisticRegression, LinearSVM, kNN and MLP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.metrics import roc_auc_score
from repro.models import (
    KNeighborsClassifier,
    LinearSVMClassifier,
    LogisticRegression,
    MLPClassifier,
)


@pytest.fixture
def linear_sep(rng):
    X = rng.normal(size=(1000, 4))
    logit = 2.0 * X[:, 0] - 1.0 * X[:, 1]
    y = (logit + 0.3 * rng.normal(size=1000) > 0).astype(float)
    return X, y


class TestLogisticRegression:
    def test_high_auc_on_linear_problem(self, linear_sep):
        X, y = linear_sep
        lr = LogisticRegression().fit(X[:700], y[:700])
        auc = roc_auc_score(y[700:], lr.predict_proba(X[700:])[:, 1])
        assert auc > 0.93

    def test_coefficients_recover_signs(self, linear_sep):
        X, y = linear_sep
        lr = LogisticRegression().fit(X, y)
        assert lr.coef_[0] > 0
        assert lr.coef_[1] < 0
        assert abs(lr.coef_[0]) > abs(lr.coef_[2])

    def test_regularization_shrinks_weights(self, linear_sep):
        X, y = linear_sep
        loose = LogisticRegression(C=10.0).fit(X, y)
        tight = LogisticRegression(C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_invalid_c(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression(C=0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().decision_function(np.ones((2, 2)))

    def test_robust_to_extreme_feature_scales(self, linear_sep):
        X, y = linear_sep
        X_scaled = X.copy()
        X_scaled[:, 0] *= 1e8  # internal standardization must cope
        lr = LogisticRegression().fit(X_scaled, y)
        auc = roc_auc_score(y, lr.predict_proba(X_scaled)[:, 1])
        assert auc > 0.9


class TestLinearSVM:
    def test_high_auc_on_linear_problem(self, linear_sep):
        X, y = linear_sep
        svm = LinearSVMClassifier().fit(X[:700], y[:700])
        auc = roc_auc_score(y[700:], svm.predict_proba(X[700:])[:, 1])
        assert auc > 0.93

    def test_margin_sign_predicts(self, linear_sep):
        X, y = linear_sep
        svm = LinearSVMClassifier().fit(X, y)
        margin = svm.decision_function(X)
        assert ((margin > 0).astype(float) == svm.predict(X)).all()

    def test_c_controls_fit(self, linear_sep):
        X, y = linear_sep
        loose = LinearSVMClassifier(C=10.0).fit(X, y)
        tight = LinearSVMClassifier(C=1e-4).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_invalid_c(self):
        with pytest.raises(ConfigurationError):
            LinearSVMClassifier(C=-1.0)


class TestKNN:
    def test_memorizes_training_points(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(float)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (knn.predict(X) == y).all()

    def test_k5_on_clusters(self, rng):
        X0 = rng.normal(loc=-2.0, size=(200, 2))
        X1 = rng.normal(loc=+2.0, size=(200, 2))
        X = np.vstack([X0, X1])
        y = np.r_[np.zeros(200), np.ones(200)]
        knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        test = np.array([[-2.0, -2.0], [2.0, 2.0]])
        assert knn.predict(test).tolist() == [0.0, 1.0]

    def test_distance_weighting(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(float)
        knn = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        proba = knn.predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_chunking_consistent(self, rng):
        X = rng.normal(size=(500, 3))
        y = (X[:, 1] > 0).astype(float)
        small = KNeighborsClassifier(n_neighbors=3, chunk_size=7).fit(X, y)
        big = KNeighborsClassifier(n_neighbors=3, chunk_size=512).fit(X, y)
        assert np.allclose(small.predict_proba(X), big.predict_proba(X))

    def test_k_larger_than_train_clamped(self, rng):
        X = rng.normal(size=(6, 2))
        y = np.array([0, 0, 0, 1, 1, 1.0])
        knn = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        proba = knn.predict_proba(X)[:, 1]
        assert np.allclose(proba, 0.5)  # all points vote

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(weights="cosine")

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.ones((2, 2)))


class TestMLP:
    def test_learns_nonlinear_boundary(self, rng):
        X = rng.normal(size=(2000, 4))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)  # XOR-ish
        mlp = MLPClassifier(max_epochs=40, random_state=0).fit(X[:1500], y[:1500])
        auc = roc_auc_score(y[1500:], mlp.predict_proba(X[1500:])[:, 1])
        assert auc > 0.85

    def test_deterministic_with_seed(self, linear_sep):
        X, y = linear_sep
        a = MLPClassifier(max_epochs=3, random_state=5).fit(X, y)
        b = MLPClassifier(max_epochs=3, random_state=5).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(hidden_size=0)
        with pytest.raises(ConfigurationError):
            MLPClassifier(max_epochs=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MLPClassifier().predict(np.ones((2, 2)))

    def test_width_mismatch(self, linear_sep):
        X, y = linear_sep
        mlp = MLPClassifier(max_epochs=2, random_state=0).fit(X, y)
        with pytest.raises(DataError):
            mlp.predict(X[:, :2])
