"""Tests for SAFEConfig validation."""

from __future__ import annotations

import pytest

from repro.core import SAFEConfig
from repro.exceptions import ConfigurationError, OperatorError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SAFEConfig()
        assert cfg.operators == ("add", "sub", "mul", "div")
        assert cfg.iv_threshold == 0.1  # alpha, Table I
        assert cfg.pearson_threshold == 0.8  # theta, Table II
        assert cfg.iv_bins == 10  # beta
        assert cfg.n_iterations == 1
        assert cfg.max_output_features is None  # -> 2M at fit time

    def test_frozen(self):
        cfg = SAFEConfig()
        with pytest.raises(AttributeError):
            cfg.gamma = 10


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_iterations": 0},
            {"time_budget_seconds": 0.0},
            {"gamma": 0},
            {"max_combination_size": 0},
            {"max_combination_size": 5},
            {"max_output_features": 0},
            {"iv_threshold": -0.1},
            {"iv_bins": 1},
            {"pearson_threshold": 0.0},
            {"pearson_threshold": 1.5},
            {"mining_n_estimators": 0},
            {"ranking_n_estimators": 0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SAFEConfig(**kwargs)

    def test_unknown_operator_fails_fast(self):
        with pytest.raises(OperatorError):
            SAFEConfig(operators=("add", "frobnicate"))

    def test_custom_operator_set_ok(self):
        cfg = SAFEConfig(operators=("mul", "div", "log"))
        assert "log" in cfg.operators
