"""Crash-safe out-of-core fit: the kill-then-resume chaos sweep.

Acceptance contract of the recovery stack: for every ``stream.*``
failpoint site (and the worker-kill mode), killing a checkpointed
streaming fit at that site and resuming from the same checkpoint
directory reproduces the uninterrupted fit's Ψ *bit-identically* —
including quarantine bookkeeping and checkpoint-skip reasons. A corrupt
chunk is either raised as a typed error or deterministically excluded;
it is never silently consumed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SAFEConfig
from repro.core.pipeline import SAFE
from repro.exceptions import ChunkIntegrityError, InjectedFault, ShardFailureError
from repro.parallel import _reset_pool_state, set_retry_policy
from repro.runtime.failpoints import FAILPOINTS, active
from repro.runtime.retry import RetryPolicy
from repro.tabular.io import ChunkedDataset, Dataset, save_npy, write_manifest

#: No-sleep retries keep the sweep fast while preserving attempt counts.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

N_ROWS = 400
CHUNK_ROWS = 100

#: Every failpoint site the streaming fit passes through, with a kill
#: schedule that leaves *partial* progress behind (so resume actually
#: has statistics to pick up), plus always-on schedules that die at the
#: first opportunity.
SWEEP = [
    ("stream.shard.run", "always", None),
    ("stream.chunk.read", "always", None),
    ("stream.chunk.read", "nth", 25),
    ("stream.stats.checkpoint", "always", None),
    ("stream.stats.checkpoint", "nth", 5),
    ("selection.select", "nth", 1),
    ("pipeline.iteration", "nth", 1),
]


@pytest.fixture(autouse=True)
def _clean_runtime():
    FAILPOINTS.reset()
    set_retry_policy(FAST_RETRY)
    _reset_pool_state()
    yield
    FAILPOINTS.reset()
    set_retry_policy(None)
    _reset_pool_state()


def _write_backing(root, corrupt_chunk: "int | None" = None):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N_ROWS, 5))
    y = (
        X[:, 0] + 0.5 * X[:, 1] * X[:, 2]
        + rng.normal(scale=0.4, size=N_ROWS)
        > 0
    ).astype(float)
    ds = Dataset(X=X, y=y, names=tuple(f"f{i}" for i in range(5)))
    x_path = root / "X.npy"
    y_path = root / "y.npy"
    save_npy(ds, x_path, y_path)
    write_manifest(
        ChunkedDataset.from_npy(
            x_path, y_path=y_path, chunk_rows=CHUNK_ROWS, manifest=False
        ),
        chunk_rows=CHUNK_ROWS,
    )
    if corrupt_chunk is not None:
        # flipped after the manifest snapshot: verification must notice
        lo = corrupt_chunk * CHUNK_ROWS
        arr = np.load(x_path, mmap_mode="r+")
        arr[lo : lo + CHUNK_ROWS] += 1.0
        arr.flush()
        del arr
    return x_path, y_path


def _open(x_path, y_path, on_chunk_error="raise"):
    return ChunkedDataset.from_npy(
        x_path,
        y_path=y_path,
        chunk_rows=CHUNK_ROWS,
        manifest=True,
        on_chunk_error=on_chunk_error,
    )


def _config(n_jobs: int = 1) -> SAFEConfig:
    return SAFEConfig(
        n_iterations=2, sketch="exact", random_state=0, iv_bins=8, n_jobs=n_jobs
    )


def _psi(transformer, safe):
    """The comparison surface: expression keys plus the exact
    per-iteration information values (floats compared bit-for-bit).

    Traces restored from a checkpoint carry ``selection=None`` (only
    scalars are checkpointed), so IVs are keyed by iteration index and
    compared through :func:`_assert_matches_reference`.
    """
    ivs = {
        i: trace.selection.information_values
        for i, trace in enumerate(safe.traces_)
        if trace.selection is not None
    }
    return tuple(e.key for e in transformer.expressions), ivs


def _assert_matches_reference(candidate, reference):
    """Ψ expression keys must be identical; every information-value
    vector the candidate recomputed must match the reference's
    bit-for-bit (restored iterations have nothing to compare)."""
    cand_keys, cand_ivs = candidate
    ref_keys, ref_ivs = reference
    assert cand_keys == ref_keys
    for i, ivs in cand_ivs.items():
        assert ivs == ref_ivs[i]


@pytest.fixture(scope="module")
def clean_backing(tmp_path_factory):
    root = tmp_path_factory.mktemp("stream-clean")
    return _write_backing(root)


@pytest.fixture(scope="module")
def reference_psi(clean_backing):
    x_path, y_path = clean_backing
    set_retry_policy(FAST_RETRY)
    safe = SAFE(config=_config())
    transformer = safe.fit(_open(x_path, y_path))
    return _psi(transformer, safe)


class TestChaosSweep:
    """Kill at every stream site; resume reproduces Ψ bit-identically."""

    @pytest.mark.parametrize(
        "site,mode,nth", SWEEP, ids=[f"{s}-{m}{n or ''}" for s, m, n in SWEEP]
    )
    def test_kill_then_resume_reproduces_psi(
        self, clean_backing, reference_psi, tmp_path, site, mode, nth
    ):
        x_path, y_path = clean_backing
        crashed = SAFE(config=_config())
        with active(site, mode=mode, nth=nth):
            with pytest.raises((InjectedFault, ShardFailureError)):
                crashed.fit(
                    _open(x_path, y_path), checkpoint_dir=str(tmp_path)
                )
        resumed = SAFE(config=_config())
        transformer = resumed.fit(
            _open(x_path, y_path), checkpoint_dir=str(tmp_path)
        )
        _assert_matches_reference(_psi(transformer, resumed), reference_psi)
        report = resumed.runtime_report_
        # a resumed fit never trusts a torn snapshot: whatever it could
        # not reuse it recomputed, and everything it reused is recorded
        assert report.stats_checkpoints_skipped == []
        assert report.chunks_quarantined == []

    def test_transient_shard_fault_is_absorbed_without_restart(
        self, clean_backing, reference_psi
    ):
        # 'once' dies on the first shard attempt only: the reducer
        # re-submits just that shard and the fit completes first try.
        x_path, y_path = clean_backing
        safe = SAFE(config=_config())
        with active("stream.shard.run", mode="once"):
            transformer = safe.fit(_open(x_path, y_path))
        _assert_matches_reference(_psi(transformer, safe), reference_psi)

    def test_shard_crash_after_partial_progress_then_resume(
        self, clean_backing, reference_psi, tmp_path
    ):
        # a single nth:2 firing is absorbed by the retry budget, so to
        # die *mid-run* with earlier stages already checkpointed we
        # shrink the budget to one attempt — the second shard pass is
        # then fatal, and the resume picks up the first pass's stats
        x_path, y_path = clean_backing
        set_retry_policy(RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0))
        crashed = SAFE(config=_config())
        with active("stream.shard.run", mode="nth", nth=2):
            with pytest.raises(ShardFailureError):
                crashed.fit(
                    _open(x_path, y_path), checkpoint_dir=str(tmp_path)
                )
        set_retry_policy(FAST_RETRY)
        resumed = SAFE(config=_config())
        transformer = resumed.fit(
            _open(x_path, y_path), checkpoint_dir=str(tmp_path)
        )
        _assert_matches_reference(_psi(transformer, resumed), reference_psi)
        assert resumed.runtime_report_.stats_stages_resumed

    def test_shard_exhaustion_raises_typed_error_with_row_range(
        self, clean_backing
    ):
        x_path, y_path = clean_backing
        safe = SAFE(config=_config())
        with active("stream.shard.run", mode="always"):
            with pytest.raises(ShardFailureError) as excinfo:
                safe.fit(_open(x_path, y_path))
        err = excinfo.value
        assert err.attempts == FAST_RETRY.max_attempts
        assert 0 <= err.row_start < err.row_stop <= N_ROWS

    def test_worker_kill_mid_shard_then_resume(
        self, clean_backing, reference_psi, tmp_path
    ):
        # kill mode: marked pool workers os._exit(86) mid-shard (the
        # driver sees BrokenProcessPool and re-submits); in pool-less
        # sandboxes the same activation degrades to InjectedFault on
        # the serial path. Either way the fit dies with the typed
        # shard error, and the resume reproduces Ψ bit-identically.
        x_path, y_path = clean_backing
        crashed = SAFE(config=_config(n_jobs=2))
        with active("stream.shard.run", mode="kill"):
            with pytest.raises(ShardFailureError):
                crashed.fit(
                    _open(x_path, y_path), checkpoint_dir=str(tmp_path)
                )
        resumed = SAFE(config=_config(n_jobs=2))
        transformer = resumed.fit(
            _open(x_path, y_path), checkpoint_dir=str(tmp_path)
        )
        _assert_matches_reference(_psi(transformer, resumed), reference_psi)

    def test_resume_actually_reuses_statistics(
        self, clean_backing, reference_psi, tmp_path
    ):
        x_path, y_path = clean_backing
        crashed = SAFE(config=_config())
        # die late: the first iteration's checkpoint has landed and the
        # second iteration has partial statistics on disk
        with active("pipeline.iteration", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                crashed.fit(
                    _open(x_path, y_path), checkpoint_dir=str(tmp_path)
                )
        resumed = SAFE(config=_config())
        transformer = resumed.fit(
            _open(x_path, y_path), checkpoint_dir=str(tmp_path)
        )
        report = resumed.runtime_report_
        assert report.resumed_from_iteration == 0
        _assert_matches_reference(_psi(transformer, resumed), reference_psi)

    def test_corrupt_stats_snapshot_is_skipped_and_recomputed(
        self, clean_backing, reference_psi, tmp_path
    ):
        x_path, y_path = clean_backing
        crashed = SAFE(config=_config())
        with active("selection.select", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                crashed.fit(
                    _open(x_path, y_path), checkpoint_dir=str(tmp_path)
                )
        snapshots = sorted((tmp_path / "stats").glob("*.npz"))
        assert snapshots, "the crashed fit left statistics behind"
        snapshots[0].write_bytes(b"torn")
        resumed = SAFE(config=_config())
        transformer = resumed.fit(
            _open(x_path, y_path), checkpoint_dir=str(tmp_path)
        )
        report = resumed.runtime_report_
        assert len(report.stats_checkpoints_skipped) == 1
        _assert_matches_reference(_psi(transformer, resumed), reference_psi)


class TestQuarantineRecovery:
    """Corrupt chunks: loud in raise mode, deterministic in quarantine."""

    @pytest.fixture(scope="class")
    def corrupt_backing(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("stream-corrupt")
        return _write_backing(root, corrupt_chunk=1)

    def test_raise_mode_aborts_the_fit(self, corrupt_backing):
        x_path, y_path = corrupt_backing
        safe = SAFE(config=_config())
        with pytest.raises(ChunkIntegrityError):
            safe.fit(_open(x_path, y_path))

    def test_quarantine_kill_resume_reproduces_psi_and_records(
        self, corrupt_backing, tmp_path
    ):
        x_path, y_path = corrupt_backing
        set_retry_policy(FAST_RETRY)

        reference = SAFE(config=_config())
        ref_transformer = reference.fit(
            _open(x_path, y_path, on_chunk_error="quarantine")
        )
        ref = _psi(ref_transformer, reference)
        ref_records = reference.runtime_report_.chunks_quarantined
        assert [r.chunk_index for r in ref_records] == [1]

        set_retry_policy(RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0))
        crashed = SAFE(config=_config())
        with active("stream.shard.run", mode="nth", nth=2):
            with pytest.raises(ShardFailureError):
                crashed.fit(
                    _open(x_path, y_path, on_chunk_error="quarantine"),
                    checkpoint_dir=str(tmp_path),
                )
        set_retry_policy(FAST_RETRY)
        resumed = SAFE(config=_config())
        transformer = resumed.fit(
            _open(x_path, y_path, on_chunk_error="quarantine"),
            checkpoint_dir=str(tmp_path),
        )
        _assert_matches_reference(_psi(transformer, resumed), ref)
        assert resumed.runtime_report_.chunks_quarantined == list(ref_records)
