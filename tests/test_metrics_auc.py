"""Tests for repro.metrics.auc."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import accuracy_score, roc_auc_score, roc_curve


class TestRocAucScore:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=20000).astype(float)
        s = rng.random(20000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.02)

    def test_ties_midrank(self):
        # One pos and one neg share the same score -> that pair counts 1/2.
        assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=500).astype(float)
        s = rng.normal(size=500)
        a = roc_auc_score(y, s)
        b = roc_auc_score(y, np.exp(s) * 3 + 10)
        assert a == pytest.approx(b)

    def test_single_class_raises(self):
        with pytest.raises(DataError):
            roc_auc_score([1, 1, 1], [0.1, 0.2, 0.3])

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            roc_auc_score([0, 1], [0.5])

    def test_empty_raises(self):
        with pytest.raises(DataError):
            roc_auc_score([], [])

    def test_matches_trapezoid_integration(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=300).astype(float)
        s = rng.normal(size=300) + y  # informative scores
        fpr, tpr, __ = roc_curve(y, s)
        trapezoid = float(np.trapezoid(tpr, fpr))
        assert roc_auc_score(y, s) == pytest.approx(trapezoid, abs=1e-9)


class TestRocCurve:
    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=100).astype(float)
        s = rng.normal(size=100)
        fpr, tpr, thr = roc_curve(y, s)
        assert (np.diff(fpr) >= -1e-12).all()
        assert (np.diff(tpr) >= -1e-12).all()
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)

    def test_threshold_starts_at_inf(self):
        __, __, thr = roc_curve([0, 1], [0.3, 0.7])
        assert thr[0] == np.inf

    def test_empty_raises(self):
        with pytest.raises(DataError):
            roc_curve([], [])


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 0]) == 0.75

    def test_mismatch_raises(self):
        with pytest.raises(DataError):
            accuracy_score([0], [0, 1])
