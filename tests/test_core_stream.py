"""Tests for the out-of-core SAFE fit (repro.core.stream).

The contract under test: ``SAFE.fit`` on a :class:`ChunkedDataset`
streams the rows chunk-at-a-time and, with ``sketch="exact"``, yields
the *same kept Ψ* as the in-memory fit — bit-identical expression keys —
because every fit-time statistic is accumulated through the mergeable
kernels (integer counts merge exactly; float sums agree to <=1e-9 and
the miners' shared split search breaks gain near-ties deterministically
in (feature, bin) order via ``tie_rtol=GAIN_TIE_RTOL``).

Also covered: the streaming GBM grower against the in-memory one on
tie-heavy inputs (duplicate columns, tiny leaves), quarantine and
checkpoint-resume parity across the two paths, the streamability
rejections, and the tier-1 memory gate — the streaming fit's tracemalloc
peak stays under a fixed ceiling that the in-memory fit on the same
workload exceeds severalfold.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.boosting import GradientBoostingClassifier
from repro.boosting.tree import GAIN_TIE_RTOL
from repro.boosting.stream import fit_gbm_streaming
from repro.core import SAFE, SAFEConfig
from repro.exceptions import ConfigurationError, DataError
from repro.runtime.failpoints import active
from repro.tabular.dataset import Dataset
from repro.tabular.io import ChunkedDataset


def _workload(seed, n, k):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, k))
    X[rng.random(size=(n, k)) < 0.02] = np.nan
    logits = X[:, 0] - 0.5 * np.nan_to_num(X[:, 1]) + 0.3 * rng.normal(size=n)
    y = (logits > 0).astype(np.float64)
    return X, y, tuple(f"f{i}" for i in range(k))


def _keys(transformer):
    return tuple(e.key for e in transformer.expressions)


class TestPsiParity:
    """Streaming fit == in-memory fit, bit-identical Ψ (sketch="exact")."""

    @pytest.mark.parametrize(
        "seed,n,k,iters,chunk",
        [
            (7, 2867, 5, 1, 311),
            (11, 4000, 5, 2, 512),  # regression: near-tied ranking gains
            (13, 2048, 5, 3, 300),
        ],
    )
    def test_arrays_backed(self, seed, n, k, iters, chunk):
        X, y, names = _workload(seed, n, k)
        cfg = SAFEConfig(n_iterations=iters, sketch="exact", random_state=0)
        t_mem = SAFE(cfg).fit(Dataset(X=X.copy(), y=y.copy(), names=names))
        t_stream = SAFE(cfg).fit(ChunkedDataset(names, chunk, X=X, y=y))
        assert _keys(t_stream) == _keys(t_mem)

    def test_file_backed(self, tmp_path):
        X, y, names = _workload(11, 4000, 5)
        cfg = SAFEConfig(n_iterations=2, sketch="exact", random_state=0)
        t_mem = SAFE(cfg).fit(Dataset(X=X.copy(), y=y.copy(), names=names))
        xp, yp = tmp_path / "X.npy", tmp_path / "y.npy"
        np.save(xp, X)
        np.save(yp, y)
        t_stream = SAFE(cfg).fit(ChunkedDataset(names, 512, x_path=xp, y_path=yp))
        assert _keys(t_stream) == _keys(t_mem)

    def test_row_sharded_workers_match_serial(self):
        X, y, names = _workload(31, 3000, 5)
        kwargs = dict(n_iterations=2, sketch="exact", random_state=0)
        t_serial = SAFE(SAFEConfig(n_jobs=1, **kwargs)).fit(
            ChunkedDataset(names, 417, X=X, y=y)
        )
        t_sharded = SAFE(SAFEConfig(n_jobs=2, **kwargs)).fit(
            ChunkedDataset(names, 417, X=X, y=y)
        )
        assert _keys(t_sharded) == _keys(t_serial)

    def test_merge_sketch_fits_and_serves(self):
        X, y, names = _workload(21, 5000, 6)
        cfg = SAFEConfig(n_iterations=2, sketch="merge", random_state=0)
        t = SAFE(cfg).fit(ChunkedDataset(names, 700, X=X, y=y))
        assert len(t.expressions) >= 1
        out = t.transform(Dataset(X=X, y=y, names=names))
        assert out.X.shape == (5000, len(t.expressions))
        assert np.isfinite(np.nan_to_num(out.X)).all()

    def test_traces_match_in_memory(self):
        X, y, names = _workload(8, 1500, 4)
        cfg = SAFEConfig(n_iterations=2, sketch="exact", random_state=0)
        s_mem, s_stream = SAFE(cfg), SAFE(cfg)
        s_mem.fit(Dataset(X=X.copy(), y=y.copy(), names=names))
        s_stream.fit(ChunkedDataset(names, 257, X=X, y=y))
        assert len(s_stream.traces_) == len(s_mem.traces_)
        for a, b in zip(s_stream.traces_, s_mem.traces_):
            assert (a.n_paths, a.n_combinations, a.n_generated, a.n_candidates) == (
                b.n_paths,
                b.n_combinations,
                b.n_generated,
                b.n_candidates,
            )


class TestGbmStreamingParity:
    def test_tree_structures_match_on_tie_heavy_data(self):
        """Duplicate columns + tiny leaves: the near-tie break must hold."""
        rng = np.random.default_rng(123)
        for _ in range(6):
            n = int(rng.integers(300, 2000))
            k = int(rng.integers(3, 8))
            X = rng.normal(size=(n, k))
            X[:, -1] = X[:, 0]  # exact duplicate => mathematically tied gains
            y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.float64)
            params = dict(
                n_estimators=4,
                max_depth=int(rng.integers(2, 5)),
                learning_rate=0.2,
                max_bins=int(rng.integers(16, 64)),
                min_samples_leaf=int(rng.integers(1, 4)),
                random_state=0,
                tie_rtol=GAIN_TIE_RTOL,
            )
            ref = GradientBoostingClassifier(**params)
            ref.fit(X, y)
            streamed = GradientBoostingClassifier(**params)
            chunk = int(rng.integers(64, 700))

            def chunks():
                for lo in range(0, n, chunk):
                    hi = min(lo + chunk, n)
                    yield range(lo, hi), X[lo:hi], y[lo:hi]

            fit_gbm_streaming(streamed, chunks, n, k, sketch="exact")
            for a, b in zip(ref.trees_, streamed.trees_):
                assert np.array_equal(a.feature, b.feature)
                assert np.array_equal(a.threshold_bin, b.threshold_bin)
                np.testing.assert_allclose(a.value, b.value, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(
                ref.predict_proba(X), streamed.predict_proba(X), rtol=1e-9, atol=1e-12
            )


class TestRuntimeParity:
    def test_quarantine_parity(self):
        X, y, names = _workload(51, 1200, 5)
        cfg = SAFEConfig(
            n_iterations=1,
            sketch="exact",
            random_state=0,
            on_operator_error="quarantine",
        )
        with active("generation.operator", mode="nth", nth=3):
            s_mem = SAFE(cfg)
            t_mem = s_mem.fit(Dataset(X=X.copy(), y=y.copy(), names=names))
        with active("generation.operator", mode="nth", nth=3):
            s_stream = SAFE(cfg)
            t_stream = s_stream.fit(ChunkedDataset(names, 300, X=X, y=y))
        assert _keys(t_stream) == _keys(t_mem)
        q_mem = [(i, r.key, r.operator) for i, r in s_mem.runtime_report_.quarantined]
        q_stream = [
            (i, r.key, r.operator) for i, r in s_stream.runtime_report_.quarantined
        ]
        assert q_stream == q_mem and len(q_stream) == 1

    def test_checkpoint_resume_parity(self, tmp_path):
        X, y, names = _workload(61, 2000, 5)
        cfg = SAFEConfig(n_iterations=2, sketch="exact", random_state=0)
        t_ref = SAFE(cfg).fit(ChunkedDataset(names, 333, X=X, y=y))
        with pytest.raises(Exception):
            with active("pipeline.iteration", mode="nth", nth=1):
                SAFE(cfg).fit(
                    ChunkedDataset(names, 333, X=X, y=y),
                    checkpoint_dir=str(tmp_path),
                )
        resumed = SAFE(cfg)
        t_resumed = resumed.fit(
            ChunkedDataset(names, 333, X=X, y=y), checkpoint_dir=str(tmp_path)
        )
        assert _keys(t_resumed) == _keys(t_ref)
        assert resumed.runtime_report_.resumed_from_iteration == 0


class TestStreamabilityRejections:
    def _data(self):
        X, y, names = _workload(41, 400, 4)
        return ChunkedDataset(names, 100, X=X, y=y)

    def test_non_rowwise_operator_rejected(self):
        cfg = SAFEConfig(n_iterations=1, operators=("add", "lag1"))
        with pytest.raises(ConfigurationError, match="not streamable"):
            SAFE(cfg).fit(self._data())

    def test_stateful_operator_rejected(self):
        cfg = SAFEConfig(n_iterations=1, operators=("add", "zscore"))
        with pytest.raises(ConfigurationError, match="not streamable"):
            SAFE(cfg).fit(self._data())

    def test_validation_set_rejected(self):
        X, y, names = _workload(41, 400, 4)
        cfg = SAFEConfig(n_iterations=1)
        with pytest.raises(ConfigurationError, match="validation set"):
            SAFE(cfg).fit(self._data(), valid=Dataset(X=X, y=y, names=names))

    def test_bogus_sketch_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="sketch"):
            SAFEConfig(sketch="bogus")

    def test_single_class_labels_rejected(self):
        X, _, names = _workload(41, 400, 4)
        y = np.zeros(400)
        with pytest.raises(DataError, match="both classes"):
            SAFE(SAFEConfig(n_iterations=1)).fit(
                ChunkedDataset(names, 100, X=X, y=y)
            )


class TestMemoryGate:
    def test_streaming_fit_is_out_of_core(self, tmp_path):
        """Tracemalloc gate: O(chunk + state), not O(rows x candidates).

        The ceiling is fixed at 48 MB. The in-memory fit on the *same*
        workload — which materializes the working matrix, the candidate
        matrix, and the binned code matrices at full row count — must
        exceed the streaming peak at least 8-fold (measured ~16x), so
        the gate genuinely separates the two paths rather than passing
        both.
        """
        n, k = 80_000, 8
        rng = np.random.default_rng(0)
        X = rng.normal(size=(n, k))
        y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.float64)
        names = tuple(f"f{i}" for i in range(k))
        xp, yp = tmp_path / "X.npy", tmp_path / "y.npy"
        np.save(xp, X)
        np.save(yp, y)
        del X, y

        cfg = SAFEConfig(n_iterations=1, sketch="merge", random_state=0)
        data = ChunkedDataset(names, 4096, x_path=xp, y_path=yp)
        tracemalloc.start()
        try:
            t_stream = SAFE(cfg).fit(data)
            _, stream_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert len(t_stream.expressions) >= 1
        ceiling = 48 * 1024 * 1024
        assert stream_peak < ceiling, (
            f"streaming fit peaked at {stream_peak / 1e6:.1f} MB, "
            f"over the {ceiling / 1e6:.0f} MB out-of-core ceiling"
        )

        tracemalloc.start()
        try:
            t_mem = SAFE(cfg).fit(
                Dataset(X=np.load(xp), y=np.load(yp), names=names)
            )
            _, mem_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert len(t_mem.expressions) >= 1
        assert mem_peak >= 8 * stream_peak, (
            f"in-memory peak {mem_peak / 1e6:.1f} MB is not 8x the streaming "
            f"peak {stream_peak / 1e6:.1f} MB; the gate is not discriminating"
        )
