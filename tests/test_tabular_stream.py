"""Tests for the out-of-core tabular layer: ChunkedDataset + streamed edges.

Covers the chunked reader both arrays-backed and ``.npy``-memmap-backed
(identical chunk streams), its sharding/pickling contracts (the units of
row-parallel work), and ``streamed_quantile_edges`` — whose
``sketch="exact"`` mode must be bit-identical to the in-memory
:func:`equal_frequency_edges` per column.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.tabular.binning import equal_frequency_edges, streamed_quantile_edges
from repro.tabular.io import ChunkedDataset


def _data(n=103, k=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, k))
    X[rng.random(size=(n, k)) < 0.04] = np.nan
    y = (rng.random(n) < 0.5).astype(np.float64)
    names = tuple(f"f{i}" for i in range(k))
    return X, y, names


def _file_backed(tmp_path, X, y, names, chunk_rows):
    xp, yp = tmp_path / "X.npy", tmp_path / "y.npy"
    np.save(xp, X)
    np.save(yp, y)
    return ChunkedDataset(names, chunk_rows, x_path=xp, y_path=yp)


class TestChunkedDataset:
    def test_iter_chunks_covers_rows_in_order(self):
        X, y, names = _data()
        data = ChunkedDataset(names, 17, X=X, y=y)
        seen = 0
        for rows, X_chunk, y_chunk in data.iter_chunks():
            assert rows.start == seen
            assert X_chunk.shape == (len(rows), 4)
            np.testing.assert_array_equal(
                X_chunk, X[rows.start : rows.stop], err_msg="chunk content"
            )
            np.testing.assert_array_equal(y_chunk, y[rows.start : rows.stop])
            seen = rows.stop
        assert seen == data.n_rows == 103
        assert data.n_cols == 4 and data.has_labels

    def test_reiterable(self):
        X, y, names = _data()
        data = ChunkedDataset(names, 29, X=X, y=y)
        first = [np.asarray(c) for _, c, _ in data.iter_chunks()]
        second = [np.asarray(c) for _, c, _ in data.iter_chunks()]
        assert len(first) == len(second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_file_backing_matches_arrays(self, tmp_path):
        X, y, names = _data()
        mem = ChunkedDataset(names, 17, X=X, y=y)
        mapped = _file_backed(tmp_path, X, y, names, 17)
        for (ra, Xa, ya), (rb, Xb, yb) in zip(
            mem.iter_chunks(), mapped.iter_chunks()
        ):
            assert ra == rb
            np.testing.assert_array_equal(Xa, Xb)
            np.testing.assert_array_equal(ya, yb)

    def test_shards_partition_the_row_range(self):
        X, y, names = _data()
        data = ChunkedDataset(names, 10, X=X, y=y)
        shards = data.shards(4)
        assert [s.start for s in shards][0] == 0
        assert shards[-1].stop == data.n_rows
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        # Global row ids: a shard's chunks carry absolute row ranges.
        rows = [r for s in shards for r, _, _ in s.iter_chunks()]
        covered = [i for r in rows for i in r]
        assert covered == list(range(data.n_rows))

    def test_file_backed_shard_is_picklable_without_matrix(self, tmp_path):
        X, y, names = _data()
        mapped = _file_backed(tmp_path, X, y, names, 25)
        shard = mapped.shards(3)[1]
        blob = pickle.dumps(shard)
        assert len(blob) < 10_000  # paths only, never the matrix
        clone = pickle.loads(blob)
        for (ra, Xa, ya), (rb, Xb, yb) in zip(
            shard.iter_chunks(), clone.iter_chunks()
        ):
            assert ra == rb
            np.testing.assert_array_equal(Xa, Xb)
            np.testing.assert_array_equal(ya, yb)

    def test_materialize_round_trip(self, tmp_path):
        X, y, names = _data()
        mapped = _file_backed(tmp_path, X, y, names, 30)
        ds = mapped.materialize()
        np.testing.assert_array_equal(ds.X, X)
        np.testing.assert_array_equal(ds.y, y)
        assert ds.names == names

    def test_errors(self, tmp_path):
        X, y, names = _data()
        with pytest.raises(DataError):
            ChunkedDataset(names, 10)  # neither backing
        with pytest.raises(DataError):
            ChunkedDataset(names, 0, X=X, y=y)
        with pytest.raises(DataError):
            ChunkedDataset(("a",), 10, X=X, y=y)  # 1 name, 4 columns
        with pytest.raises(DataError):
            ChunkedDataset(names, 10, X=X, y=y[:-1])
        xp = tmp_path / "X.npy"
        np.save(xp, X)
        with pytest.raises(DataError):
            ChunkedDataset(names, 10, x_path=xp, y=y)


class TestStreamedQuantileEdges:
    def _chunks(self, X, sizes):
        def iterate():
            lo = 0
            for size in sizes:
                yield range(lo, lo + size), X[lo : lo + size], None
                lo += size
        return iterate

    def test_exact_mode_bit_identical_to_in_memory(self):
        X, _, _ = _data(n=257, k=5, seed=3)
        X[:, 2] = 7.25  # constant column
        chunks = self._chunks(X, [64, 1, 100, 92])
        edges, n_finite, col_min, col_max = streamed_quantile_edges(
            chunks, 5, 8, sketch="exact", exact_batch_cols=2
        )
        for j in range(5):
            np.testing.assert_array_equal(
                edges[j], equal_frequency_edges(X[:, j], 8)
            )
            col = X[:, j][np.isfinite(X[:, j])]
            assert n_finite[j] == col.size
            assert col_min[j] == col.min() and col_max[j] == col.max()

    def test_merge_mode_side_statistics_are_exact(self):
        X, _, _ = _data(n=400, k=3, seed=4)
        chunks = self._chunks(X, [150, 150, 100])
        _, n_finite, col_min, col_max = streamed_quantile_edges(
            chunks, 3, 8, sketch="merge", capacity=32
        )
        for j in range(3):
            col = X[:, j][np.isfinite(X[:, j])]
            assert n_finite[j] == col.size
            assert col_min[j] == col.min() and col_max[j] == col.max()

    def test_merge_mode_edges_are_close_for_ample_capacity(self):
        X, _, _ = _data(n=500, k=2, seed=5)
        chunks = self._chunks(X, [123, 377])
        edges, _, _, _ = streamed_quantile_edges(
            chunks, 2, 6, sketch="merge", capacity=10_000
        )
        for j in range(2):
            np.testing.assert_array_equal(
                edges[j], equal_frequency_edges(X[:, j], 6)
            )

    def test_unknown_sketch_mode_rejected(self):
        X, _, _ = _data()
        with pytest.raises(ConfigurationError):
            streamed_quantile_edges(self._chunks(X, [103]), 4, 8, sketch="bogus")
