"""Tests for expression trees (the Ψ representation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OperatorError, SchemaError
from repro.operators import (
    Applied,
    Var,
    evaluate_expressions,
    expression_from_dict,
    expression_from_json,
    fit_applied,
)


@pytest.fixture
def X(rng):
    return rng.normal(size=(50, 4))


class TestVar:
    def test_evaluate_picks_column(self, X):
        assert np.array_equal(Var(2).evaluate(X), X[:, 2])

    def test_single_row_input(self, X):
        out = Var(1).evaluate(X[0])
        assert out.shape == (1,)
        assert out[0] == X[0, 1]

    def test_out_of_range_raises(self, X):
        with pytest.raises(SchemaError):
            Var(10).evaluate(X)

    def test_names(self):
        assert Var(0).name(("amount", "count")) == "amount"
        assert Var(1).name(None) == "x1"

    def test_metadata(self):
        v = Var(3)
        assert v.depth() == 0
        assert v.original_indices() == frozenset({3})
        assert v.key == "x3"


class TestApplied:
    def test_evaluate_matches_numpy(self, X):
        expr = Applied("add", (Var(0), Var(1)))
        assert np.allclose(expr.evaluate(X), X[:, 0] + X[:, 1])

    def test_nested_composition(self, X):
        inner = Applied("mul", (Var(0), Var(1)))
        outer = Applied("sub", (inner, Var(2)))
        assert np.allclose(outer.evaluate(X), X[:, 0] * X[:, 1] - X[:, 2])
        assert outer.depth() == 2
        assert outer.original_indices() == frozenset({0, 1, 2})

    def test_arity_checked_at_construction(self):
        with pytest.raises(OperatorError):
            Applied("add", (Var(0),))

    def test_name_rendering(self):
        expr = Applied("div", (Var(0), Applied("log", (Var(1),))))
        assert expr.name(("a", "b")) == "(a / log(b))"
        assert expr.key == "(x0 / log(x1))"


class TestEquality:
    def test_structural_equality_via_key(self):
        a = Applied("add", (Var(0), Var(1)))
        b = Applied("add", (Var(0), Var(1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_expressions_differ(self):
        assert Applied("add", (Var(0), Var(1))) != Applied("mul", (Var(0), Var(1)))

    def test_usable_in_sets(self):
        s = {Applied("add", (Var(0), Var(1))), Applied("add", (Var(0), Var(1)))}
        assert len(s) == 1


class TestSerialization:
    def test_dict_roundtrip(self, X):
        expr = Applied("div", (Applied("sqrt", (Var(3),)), Var(0)))
        back = expression_from_dict(expr.to_dict())
        assert back == expr
        assert np.allclose(back.evaluate(X), expr.evaluate(X))

    def test_json_roundtrip_with_state(self, X):
        expr = fit_applied("zscore", (Var(2),), X)
        back = expression_from_json(expr.to_json())
        assert np.allclose(back.evaluate(X), expr.evaluate(X))

    def test_groupby_state_roundtrip(self, X):
        expr = fit_applied("groupby_avg", (Var(0), Var(1)), X)
        back = expression_from_json(expr.to_json())
        fresh = np.random.default_rng(9).normal(size=(10, 4))
        assert np.allclose(back.evaluate(fresh), expr.evaluate(fresh))

    def test_bad_payload_rejected(self):
        with pytest.raises(OperatorError):
            expression_from_dict({"type": "mystery"})


class TestFitApplied:
    def test_stateful_operator_learns_from_training_data(self, X):
        expr = fit_applied("minmax", (Var(0),), X)
        out = expr.evaluate(X)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_state_fixed_after_fit(self, X):
        expr = fit_applied("minmax", (Var(0),), X)
        shifted = X + 100.0
        out = expr.evaluate(shifted)
        assert out.min() > 1.0  # uses training min/range, not refit

    def test_accepts_operator_instance(self, X):
        from repro.operators import get_operator

        expr = fit_applied(get_operator("add"), (Var(0), Var(1)), X)
        assert expr.op_name == "add"


class TestEvaluateExpressions:
    def test_block_shape(self, X):
        exprs = [Var(0), Applied("add", (Var(0), Var(1)))]
        block = evaluate_expressions(exprs, X)
        assert block.shape == (50, 2)

    def test_empty_list(self, X):
        block = evaluate_expressions([], X)
        assert block.shape == (50, 0)

    def test_single_row(self, X):
        block = evaluate_expressions([Var(0), Var(3)], X[0])
        assert block.shape == (1, 2)
