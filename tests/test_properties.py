"""Property-based tests (hypothesis) on core invariants.

These cover the data structures and metrics whose correctness the whole
pipeline leans on: binning, AUC, IV/Pearson, divergences, expression
serialization, and the selection stages.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    information_gain_ratio,
    information_value,
    js_divergence,
    kl_divergence,
    pearson_correlation,
    roc_auc_score,
)
from repro.operators import Var, expression_from_dict, fit_applied, get_operator
from repro.tabular.binning import Binner, codes_from_edges, equal_frequency_edges

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def columns(min_size=2, max_size=200):
    return hnp.arrays(np.float64, st.integers(min_size, max_size),
                      elements=finite_floats)


# ----------------------------------------------------------------------
# Binning
# ----------------------------------------------------------------------
class TestBinningProperties:
    @given(x=columns(), n_bins=st.integers(2, 16))
    @settings(max_examples=60, deadline=None)
    def test_codes_within_range(self, x, n_bins):
        edges = equal_frequency_edges(x, n_bins)
        codes = codes_from_edges(x, edges)
        assert codes.min() >= 0
        assert codes.max() <= edges.size + 1

    @given(x=columns(), n_bins=st.integers(2, 16))
    @settings(max_examples=60, deadline=None)
    def test_edges_sorted_and_unique(self, x, n_bins):
        edges = equal_frequency_edges(x, n_bins)
        assert (np.diff(edges) > 0).all() if edges.size > 1 else True

    @given(x=columns(min_size=10), n_bins=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_binner_transform_deterministic(self, x, n_bins):
        binner = Binner(n_bins=n_bins).fit(x)
        assert np.array_equal(binner.transform(x), binner.transform(x))

    @given(
        x=hnp.arrays(np.float64, st.integers(10, 200),
                     elements=st.floats(-1e3, 1e3)),
        shift=st.integers(-100, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_binning_shift_equivariant(self, x, shift):
        # Equal-frequency binning is rank-based: shifting all values
        # produces identical codes. Values are rounded to a coarse grid so
        # float64 addition cannot collapse distinct ranks.
        x = np.round(x, 3)
        a = Binner(n_bins=6).fit(x).transform(x)
        b = Binner(n_bins=6).fit(x + shift).transform(x + shift)
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# AUC
# ----------------------------------------------------------------------
class TestAucProperties:
    @given(
        scores=columns(min_size=4, max_size=100),
        labels=hnp.arrays(np.int64, st.integers(4, 100), elements=st.integers(0, 1)),
    )
    @settings(max_examples=80, deadline=None)
    def test_auc_in_unit_interval_and_complement(self, scores, labels):
        n = min(scores.size, labels.size)
        y, s = labels[:n].astype(float), scores[:n]
        if y.min() == y.max():
            return  # undefined; covered by unit test
        auc = roc_auc_score(y, s)
        assert 0.0 <= auc <= 1.0
        # Flipping labels complements the AUC.
        assert roc_auc_score(1 - y, s) == pytest.approx(1.0 - auc, abs=1e-9)

    @given(
        scores=columns(min_size=4, max_size=100),
        labels=hnp.arrays(np.int64, st.integers(4, 100), elements=st.integers(0, 1)),
    )
    @settings(max_examples=80, deadline=None)
    def test_auc_negating_scores_complements(self, scores, labels):
        n = min(scores.size, labels.size)
        y, s = labels[:n].astype(float), scores[:n]
        if y.min() == y.max():
            return
        assert roc_auc_score(y, -s) == pytest.approx(
            1.0 - roc_auc_score(y, s), abs=1e-9
        )


# ----------------------------------------------------------------------
# IV / Pearson
# ----------------------------------------------------------------------
class TestInformationProperties:
    @given(
        x=columns(min_size=20, max_size=300),
        labels=hnp.arrays(np.int64, st.integers(20, 300), elements=st.integers(0, 1)),
    )
    @settings(max_examples=60, deadline=None)
    def test_iv_nonnegative(self, x, labels):
        n = min(x.size, labels.size)
        y = labels[:n].astype(float)
        if y.min() == y.max():
            return
        assert information_value(x[:n], y) >= -1e-9

    @given(x=columns(min_size=3, max_size=200), y=columns(min_size=3, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded_and_symmetric(self, x, y):
        n = min(x.size, y.size)
        r = pearson_correlation(x[:n], y[:n])
        assert -1.0 <= r <= 1.0
        assert r == pytest.approx(pearson_correlation(y[:n], x[:n]), abs=1e-12)

    @given(x=columns(min_size=3, max_size=200),
           a=st.floats(0.1, 50), b=st.floats(-50, 50))
    @settings(max_examples=60, deadline=None)
    def test_pearson_affine_invariant(self, x, a, b):
        if np.ptp(x) < 1e-6:
            return  # sub-epsilon spread underflows the normalizer
        r = pearson_correlation(x, a * x + b)
        assert r == pytest.approx(1.0, abs=1e-6)

    @given(
        cells=hnp.arrays(np.int64, st.integers(10, 200), elements=st.integers(0, 5)),
        labels=hnp.arrays(np.int64, st.integers(10, 200), elements=st.integers(0, 1)),
    )
    @settings(max_examples=60, deadline=None)
    def test_gain_ratio_in_unit_range(self, cells, labels):
        n = min(cells.size, labels.size)
        ratio = information_gain_ratio(labels[:n].astype(float), cells[:n])
        assert -1e-9 <= ratio <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Divergences
# ----------------------------------------------------------------------
class TestDivergenceProperties:
    distributions = hnp.arrays(
        np.float64, st.integers(2, 20), elements=st.floats(0.0, 10.0)
    )

    @given(p=distributions, q=distributions)
    @settings(max_examples=80, deadline=None)
    def test_kld_nonnegative(self, p, q):
        n = min(p.size, q.size)
        p, q = p[:n], q[:n]
        if p.sum() <= 0 or q.sum() <= 0:
            return
        assert kl_divergence(p, q + 1e-9) >= -1e-9

    @given(p=distributions, q=distributions)
    @settings(max_examples=80, deadline=None)
    def test_jsd_symmetric_and_bounded(self, p, q):
        n = min(p.size, q.size)
        p, q = p[:n], q[:n]
        if p.sum() <= 0 or q.sum() <= 0:
            return
        d = js_divergence(p, q)
        assert -1e-9 <= d <= np.log(2) + 1e-9
        assert d == pytest.approx(js_divergence(q, p), abs=1e-9)

    @given(p=distributions)
    @settings(max_examples=40, deadline=None)
    def test_jsd_self_zero(self, p):
        if p.sum() <= 0:
            return
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
BINARY_NAMES = ["add", "sub", "mul", "div"]
UNARY_NAMES = ["log", "sqrt", "square", "tanh", "sigmoid", "abs", "neg"]


def expression_strategy(n_cols: int, depth: int = 2):
    base = st.builds(Var, st.integers(0, n_cols - 1))

    def extend(children):
        unary = st.builds(
            lambda name, c: fit_applied(name, (c,), _X),
            st.sampled_from(UNARY_NAMES),
            children,
        )
        binary = st.builds(
            lambda name, a, b: fit_applied(name, (a, b), _X),
            st.sampled_from(BINARY_NAMES),
            children,
            children,
        )
        return unary | binary

    return st.recursive(base, extend, max_leaves=6)


_X = np.random.default_rng(0).normal(size=(30, 5))


class TestExpressionProperties:
    @given(expr=expression_strategy(5))
    @settings(max_examples=80, deadline=None)
    def test_serialization_roundtrip_preserves_semantics(self, expr):
        back = expression_from_dict(expr.to_dict())
        assert back.key == expr.key
        a = expr.evaluate(_X)
        b = back.evaluate(_X)
        both_nan = np.isnan(a) & np.isnan(b)
        assert np.allclose(a[~both_nan], b[~both_nan], equal_nan=True)

    @given(expr=expression_strategy(5))
    @settings(max_examples=60, deadline=None)
    def test_indices_within_schema(self, expr):
        assert all(0 <= i < 5 for i in expr.original_indices())

    @given(expr=expression_strategy(5))
    @settings(max_examples=60, deadline=None)
    def test_row_at_a_time_matches_batch(self, expr):
        batch = expr.evaluate(_X[:3])
        rows = np.concatenate([expr.evaluate(_X[i]) for i in range(3)])
        both_nan = np.isnan(batch) & np.isnan(rows)
        assert np.allclose(batch[~both_nan], rows[~both_nan])


# ----------------------------------------------------------------------
# Selection invariants
# ----------------------------------------------------------------------
class TestSelectionProperties:
    @given(
        data=hnp.arrays(np.float64, st.tuples(st.integers(30, 80), st.integers(2, 6)),
                        elements=finite_floats),
        theta=st.floats(0.5, 0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_redundancy_removal_output_is_subset_and_decorrelated(self, data, theta):
        from repro.core import remove_redundant_features
        from repro.metrics import pearson_matrix

        ivs = np.linspace(1.0, 0.1, data.shape[1])
        kept = remove_redundant_features(data, ivs, theta=theta)
        assert set(kept) <= set(range(data.shape[1]))
        assert kept.size >= 1
        corr = np.abs(pearson_matrix(data[:, kept]))
        off_diag = corr[~np.eye(kept.size, dtype=bool)]
        if off_diag.size:
            assert off_diag.max() <= theta + 1e-9

    @given(
        data=hnp.arrays(np.float64, st.tuples(st.integers(20, 60), st.integers(2, 10)),
                        elements=finite_floats),
        theta=st.floats(0.1, 0.99),
        block_size=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_blocked_greedy_matches_full_matrix_reference(
        self, data, theta, block_size
    ):
        from repro.core import remove_redundant_features_blocked
        from repro.metrics import pearson_matrix

        ivs = np.linspace(1.0, 0.1, data.shape[1])
        corr = np.abs(pearson_matrix(data))
        # Both paths round each correlation through different (equally
        # valid) BLAS summation orders, so a theta landing within rounding
        # distance of an achieved |corr| is genuinely ambiguous — exclude
        # only that measure-zero boundary, not the comparison itself.
        off_diag = corr[~np.eye(corr.shape[0], dtype=bool)]
        if off_diag.size and np.nanmin(np.abs(off_diag - theta)) < 1e-9:
            return
        order = np.lexsort((np.arange(ivs.size), -ivs))
        reference: list[int] = []
        for j in order:
            if not reference or corr[j, reference].max() <= theta:
                reference.append(int(j))
        reference.sort()
        kept = remove_redundant_features_blocked(
            data, ivs, theta, block_size=block_size
        )
        assert kept.tolist() == reference
