"""Tests for FeatureTransformer (Ψ)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import FeatureTransformer
from repro.exceptions import DataError, SchemaError
from repro.operators import Applied, Var
from repro.tabular import Dataset


@pytest.fixture
def psi():
    return FeatureTransformer(
        expressions=(
            Var(0),
            Applied("add", (Var(0), Var(1))),
            Applied("log", (Var(2),)),
        ),
        original_names=("amount", "count", "age"),
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(DataError):
            FeatureTransformer(expressions=(), original_names=("a",))

    def test_out_of_schema_reference_rejected(self):
        with pytest.raises(SchemaError):
            FeatureTransformer(expressions=(Var(5),), original_names=("a", "b"))

    def test_feature_names_rendered(self, psi):
        assert psi.feature_names == ("amount", "(amount + count)", "log(age)")

    def test_feature_keys_canonical(self, psi):
        assert psi.feature_keys == ("x0", "(x0 + x1)", "log(x2)")

    def test_generated_expressions_excludes_vars(self, psi):
        gen = psi.generated_expressions()
        assert len(gen) == 2
        assert all(not isinstance(e, Var) for e in gen)


class TestTransform:
    def test_matrix_shape(self, psi, rng):
        X = rng.normal(size=(10, 3))
        out = psi.transform_matrix(X)
        assert out.shape == (10, 3)
        assert np.allclose(out[:, 1], X[:, 0] + X[:, 1])

    def test_single_row_real_time_inference(self, psi):
        row = psi.transform_matrix(np.array([1.0, 2.0, 0.0]))
        assert row.shape == (3,)
        assert row[1] == 3.0

    def test_dataset_in_dataset_out(self, psi, rng):
        ds = Dataset(
            X=rng.normal(size=(5, 3)),
            names=("amount", "count", "age"),
            y=np.array([0, 1, 0, 1, 0.0]),
        )
        out = psi.transform(ds)
        assert isinstance(out, Dataset)
        assert out.y is not None
        assert out.names[1] == "(amount + count)"

    def test_schema_mismatch_rejected(self, psi, rng):
        ds = Dataset.from_arrays(rng.normal(size=(5, 3)))  # names x0,x1,x2
        with pytest.raises(SchemaError):
            psi.transform(ds)

    def test_width_mismatch_rejected(self, psi, rng):
        with pytest.raises(SchemaError):
            psi.transform_matrix(rng.normal(size=(5, 4)))

    def test_duplicate_output_names_disambiguated(self):
        psi = FeatureTransformer(
            expressions=(Applied("add", (Var(0), Var(1))),
                         Applied("add", (Var(0), Var(1)))),
            original_names=("a", "b"),
        )
        ds = Dataset(X=np.ones((2, 2)), names=("a", "b"))
        out = psi.transform(ds)
        assert len(set(out.names)) == 2

    def test_rename_never_collides_with_literal_name(self):
        # Regression: a duplicate of "a" used to be renamed "a#1", which
        # collides when some column's literal formula already reads "a#1".
        psi = FeatureTransformer(
            expressions=(Var(0), Var(0), Var(1)),
            original_names=("a", "a#1"),
        )
        names = psi._output_names()
        assert len(set(names)) == 3
        assert names[0] == "a"  # first occurrences keep their formula
        assert names[2] == "a#1"  # the literal name wins its own slot
        assert names[1] not in {"a", "a#1"}

    def test_rename_collision_with_literal_after_duplicate(self):
        # The literal "a#1" appears *after* the renamed duplicate.
        psi = FeatureTransformer(
            expressions=(Var(0), Var(1), Var(2), Var(2)),
            original_names=("a", "a", "a#1"),
        )
        names = psi._output_names()
        assert len(set(names)) == 4
        assert names[0] == "a" and names[2] == "a#1"

    def test_triple_duplicates_get_increasing_suffixes(self):
        psi = FeatureTransformer(
            expressions=(Var(0), Var(0), Var(0)),
            original_names=("a",),
        )
        names = psi._output_names()
        assert names == ("a", "a#1", "a#2")


class TestPersistence:
    def test_dict_roundtrip(self, psi, rng):
        X = rng.normal(size=(8, 3))
        back = FeatureTransformer.from_dict(psi.to_dict())
        assert np.allclose(back.transform_matrix(X), psi.transform_matrix(X))
        assert back.original_names == psi.original_names

    def test_file_roundtrip(self, psi, tmp_path, rng):
        path = tmp_path / "psi.json"
        psi.save(path)
        back = FeatureTransformer.load(path)
        X = rng.normal(size=(4, 3))
        assert np.allclose(back.transform_matrix(X), psi.transform_matrix(X))

    def test_metadata_preserved(self, tmp_path):
        psi = FeatureTransformer(
            expressions=(Var(0),),
            original_names=("a",),
            metadata={"method": "SAFE", "note": 1},
        )
        path = tmp_path / "m.json"
        psi.save(path)
        assert FeatureTransformer.load(path).metadata["method"] == "SAFE"

    def test_describe_lists_features(self, psi):
        text = psi.describe()
        assert "(amount + count)" in text
        assert "3 features" in text


class TestLoadErrorWrapping:
    """Satellite: file/format faults surface as typed errors with the path."""

    def test_missing_file_is_a_data_error_with_path(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(DataError, match="nope.json"):
            FeatureTransformer.load(missing)

    def test_invalid_json_is_a_data_error_with_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"original_names": ["a"], "expressions": [')
        with pytest.raises(DataError, match="broken.json"):
            FeatureTransformer.load(path)

    def test_missing_keys_are_a_schema_error_with_path(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"original_names": ["a"]}')
        with pytest.raises(SchemaError, match="partial.json"):
            FeatureTransformer.load(path)

    def test_wrong_shapes_are_a_schema_error(self, tmp_path):
        path = tmp_path / "shapes.json"
        path.write_text(
            '{"original_names": ["a"], "expressions": [{"type": "var"}]}'
        )
        with pytest.raises(SchemaError, match="shapes.json"):
            FeatureTransformer.load(path)

    def test_repro_errors_from_construction_pass_through(self, tmp_path, psi):
        # An expression referencing a missing column is already a typed
        # SchemaError; the wrapper must not re-wrap or swallow it.
        payload = psi.to_dict()
        payload["original_names"] = payload["original_names"][:1]
        path = tmp_path / "narrow.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError):
            FeatureTransformer.load(path)


class TestSchemaHash:
    """metadata["schema_hash"] pins a plan to its fit-time column schema."""

    def _hashed(self):
        from repro.runtime.checkpoint import schema_fingerprint

        names = ("amount", "count")
        return FeatureTransformer(
            expressions=(Var(0), Applied("add", (Var(0), Var(1)))),
            original_names=names,
            metadata={"schema_hash": schema_fingerprint(names)},
        )

    def test_matching_hash_round_trips(self, tmp_path):
        psi = self._hashed()
        path = tmp_path / "hashed.json"
        psi.save(path)
        back = FeatureTransformer.load(path)
        assert back.metadata["schema_hash"] == psi.metadata["schema_hash"]

    def test_tampered_names_are_rejected_on_load(self, tmp_path):
        psi = self._hashed()
        path = tmp_path / "tampered.json"
        psi.save(path)
        payload = json.loads(path.read_text())
        payload["original_names"] = ["amount", "renamed"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="schema hash"):
            FeatureTransformer.load(path)

    def test_plans_without_hash_still_load(self, psi, tmp_path):
        path = tmp_path / "legacy.json"
        psi.save(path)
        assert FeatureTransformer.load(path).n_output_features == 3


class TestDegradedServing:
    """transform(..., errors="null"): failing expressions become NaN columns."""

    def test_invalid_errors_value_rejected(self, psi, rng):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            psi.transform_matrix(rng.normal(size=(4, 3)), errors="ignore")

    def test_null_matches_raise_when_nothing_fails(self, psi, rng):
        X = rng.normal(size=(16, 3))
        assert np.array_equal(
            psi.transform_matrix(X, errors="null"),
            psi.transform_matrix(X, errors="raise"),
        )

    def test_single_row_under_errors_null(self, psi):
        from repro.runtime.failpoints import FAILPOINTS, active

        FAILPOINTS.reset()
        with active("transform.evaluate", mode="nth", nth=3):
            row = psi.transform(np.array([1.0, 2.0, 0.5]), errors="null")
        FAILPOINTS.reset()
        assert row.shape == (3,)
        assert row[1] == 3.0  # healthy expressions still served
        assert np.isnan(row[2])  # the faulted one degrades to NaN

    def test_non_finite_inputs_are_served_not_crashed(self, psi):
        X = np.array(
            [[np.inf, 2.0, -1.0], [np.nan, 0.0, 0.0], [1.0, -np.inf, 4.0]]
        )
        out = psi.transform_matrix(X, errors="null")
        assert out.shape == (3, 3)
        # add propagates the non-finite values instead of raising.
        assert np.isinf(out[0, 1]) and np.isnan(out[1, 1])

    def test_dataset_transform_threads_errors_through(self, psi, rng):
        from repro.runtime.failpoints import FAILPOINTS, active

        ds = Dataset(
            X=rng.normal(size=(6, 3)),
            names=("amount", "count", "age"),
            y=np.zeros(6),
        )
        FAILPOINTS.reset()
        with active("transform.evaluate", mode="nth", nth=1):
            out = psi.transform(ds, errors="null")
        FAILPOINTS.reset()
        assert isinstance(out, Dataset)
        assert np.all(np.isnan(out.X[:, 0]))
        assert np.array_equal(out.X[:, 1], ds.X[:, 0] + ds.X[:, 1])


class TestFormatVersion:
    """Forward compatibility: refuse plans written by a newer library."""

    def test_save_writes_the_current_format_version(self, psi, tmp_path):
        from repro.core.transform import PLAN_FORMAT_VERSION

        path = tmp_path / "plan.json"
        psi.save(path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == PLAN_FORMAT_VERSION

    def test_newer_format_version_rejected_with_typed_error(self, psi, tmp_path):
        from repro.exceptions import PlanVersionError

        path = tmp_path / "plan.json"
        psi.save(path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(PlanVersionError) as excinfo:
            FeatureTransformer.load(path)
        message = str(excinfo.value)
        assert "99" in message and str(path) in message

    def test_plan_version_error_is_a_schema_error(self):
        from repro.exceptions import PlanVersionError

        assert issubclass(PlanVersionError, SchemaError)

    def test_missing_format_version_accepted_as_v1(self, psi, tmp_path):
        # plans written before versioning existed keep loading
        path = tmp_path / "plan.json"
        psi.save(path)
        payload = json.loads(path.read_text())
        del payload["format_version"]
        path.write_text(json.dumps(payload))
        back = FeatureTransformer.load(path)
        assert back.feature_keys == psi.feature_keys

    def test_non_integer_format_version_rejected(self, psi, tmp_path):
        path = tmp_path / "plan.json"
        psi.save(path)
        payload = json.loads(path.read_text())
        for bad in ("two", True, 1.5):
            payload["format_version"] = bad
            path.write_text(json.dumps(payload))
            with pytest.raises(SchemaError):
                FeatureTransformer.load(path)
