"""Tests for binary operators (arithmetic, logical, GroupByThen*)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.operators import get_operator


def apply2(name: str, a, b, fit_a=None, fit_b=None):
    op = get_operator(name)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    state = op.fit(
        np.asarray(fit_a, dtype=np.float64) if fit_a is not None else a,
        np.asarray(fit_b, dtype=np.float64) if fit_b is not None else b,
    )
    return op.apply(state, a, b)


class TestArithmetic:
    def test_add(self):
        assert apply2("add", [1.0], [2.0])[0] == 3.0

    def test_sub_not_commutative_flag(self):
        assert get_operator("sub").commutative is False
        assert get_operator("add").commutative is True
        assert get_operator("mul").commutative is True
        assert get_operator("div").commutative is False

    def test_mul(self):
        assert apply2("mul", [3.0], [-2.0])[0] == -6.0

    def test_div_protected_on_zero(self):
        out = apply2("div", [1.0, 4.0], [0.0, 2.0])
        assert out.tolist() == [0.0, 2.0]

    def test_div_exact(self):
        assert apply2("div", [7.0], [2.0])[0] == 3.5


class TestLogical:
    truth = [
        # p, q
        (0.0, 0.0),
        (0.0, 1.0),
        (1.0, 0.0),
        (1.0, 1.0),
    ]

    def _col(self, k):
        return np.array([t[k] for t in self.truth])

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("and", [0, 0, 0, 1]),
            ("or", [0, 1, 1, 1]),
            ("nand", [1, 1, 1, 0]),
            ("nor", [1, 0, 0, 0]),
            ("implies", [1, 1, 0, 1]),
            ("converse", [1, 0, 1, 1]),
            ("iff", [1, 0, 0, 1]),
            ("xor", [0, 1, 1, 0]),
        ],
    )
    def test_truth_tables(self, name, expected):
        out = apply2(name, self._col(0), self._col(1))
        assert out.tolist() == [float(v) for v in expected]

    def test_nonzero_is_true(self):
        out = apply2("and", [2.5, 0.0], [-1.0, 3.0])
        assert out.tolist() == [1.0, 0.0]


class TestGroupByThen:
    def test_avg_matches_group_means(self):
        key = np.array([0.0] * 50 + [10.0] * 50)
        value = np.array([1.0] * 50 + [3.0] * 50)
        out = apply2("groupby_avg", key, value)
        assert np.allclose(out[:50], 1.0)
        assert np.allclose(out[50:], 3.0)

    def test_max_min(self):
        key = np.array([0.0] * 3 + [10.0] * 3)
        value = np.array([1.0, 2.0, 3.0, 7.0, 8.0, 9.0])
        assert np.allclose(apply2("groupby_max", key, value)[:3], 3.0)
        assert np.allclose(apply2("groupby_min", key, value)[3:], 7.0)

    def test_count(self):
        key = np.array([0.0] * 4 + [10.0] * 2)
        value = np.zeros(6)
        out = apply2("groupby_count", key, value)
        assert out.tolist() == [4.0] * 4 + [2.0] * 2

    def test_std(self):
        key = np.zeros(4)
        value = np.array([0.0, 0.0, 2.0, 2.0])
        out = apply2("groupby_std", key, value)
        assert np.allclose(out, 1.0)

    def test_unseen_group_uses_fallback(self):
        op = get_operator("groupby_avg")
        key = np.array([0.0] * 50 + [10.0] * 50)
        value = np.array([1.0] * 50 + [3.0] * 50)
        state = op.fit(key, value)
        # NaN key at serving time maps to the missing-bin code -> fallback.
        out = op.apply(state, np.array([np.nan]), np.array([0.0]))
        assert out[0] == pytest.approx(2.0)  # global mean

    def test_state_is_json_serializable(self):
        import json

        op = get_operator("groupby_avg")
        state = op.fit(np.arange(100.0), np.arange(100.0))
        payload = json.dumps(state)
        assert "groups" in json.loads(payload)

    def test_serving_single_row(self):
        op = get_operator("groupby_avg")
        key = np.array([0.0] * 50 + [10.0] * 50)
        value = np.array([1.0] * 50 + [3.0] * 50)
        state = op.fit(key, value)
        out = op.apply(state, np.array([10.0]), np.array([99.0]))
        assert out[0] == pytest.approx(3.0)
