"""Tests for repro.boosting.gbm (the XGBoost stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.metrics import roc_auc_score


@pytest.fixture
def xor_like(rng):
    X = rng.normal(size=(2000, 6))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
    return X, y


class TestFit:
    def test_learns_interaction(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=40, max_depth=3).fit(
            X[:1500], y[:1500]
        )
        auc = roc_auc_score(y[1500:], model.predict_proba(X[1500:])[:, 1])
        assert auc > 0.9

    def test_more_trees_fit_train_better(self, rng):
        X = rng.normal(size=(800, 4))
        y = (X[:, 0] + 0.5 * rng.normal(size=800) > 0).astype(float)
        small = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        big = GradientBoostingClassifier(n_estimators=50).fit(X, y)
        auc_small = roc_auc_score(y, small.predict_proba(X)[:, 1])
        auc_big = roc_auc_score(y, big.predict_proba(X)[:, 1])
        assert auc_big >= auc_small

    def test_deterministic_given_seed(self, xor_like):
        X, y = xor_like
        a = GradientBoostingClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = GradientBoostingClassifier(n_estimators=5, random_state=3).fit(X, y)
        assert np.allclose(a.decision_function(X), b.decision_function(X))

    def test_subsample_and_colsample(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(
            n_estimators=20, subsample=0.5, colsample=0.5
        ).fit(X, y)
        auc = roc_auc_score(y, model.predict_proba(X)[:, 1])
        assert auc > 0.8

    def test_nonbinary_labels_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            GradientBoostingClassifier().fit(X, np.arange(10))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(subsample=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(max_bins=1)


class TestEarlyStopping:
    def test_stops_before_budget(self, rng):
        X = rng.normal(size=(1200, 3))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=200, early_stopping_rounds=3
        ).fit(X[:800], y[:800], eval_set=(X[800:], y[800:]))
        assert len(model.trees_) < 200
        assert model.best_iteration_ is not None

    def test_eval_set_shape_checked(self, rng):
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        with pytest.raises(DataError):
            GradientBoostingClassifier().fit(X, y, eval_set=(X[:, :2], y))


class TestPredict:
    def test_proba_shape_and_range(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        proba = model.predict_proba(X[:50])
        assert proba.shape == (50, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_is_thresholded_proba(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        proba = model.predict_proba(X[:100])[:, 1]
        assert np.array_equal(model.predict(X[:100]), (proba >= 0.5).astype(float))

    def test_wrong_width_rejected(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        with pytest.raises(DataError):
            model.predict_proba(X[:, :3])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict_proba(np.ones((2, 2)))


class TestStructure:
    def test_paths_come_from_all_trees(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=8, max_depth=3).fit(X, y)
        paths = model.paths()
        per_tree = [len(t.paths()) for t in model.trees_]
        assert len(paths) == sum(per_tree)

    def test_split_features_identify_informative(self, rng):
        X = rng.normal(size=(2000, 8))
        y = ((X[:, 2] + X[:, 5]) > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=10, max_depth=3).fit(X, y)
        split = model.split_features()
        assert 2 in split and 5 in split

    def test_importance_ranks_informative_features(self, rng):
        X = rng.normal(size=(3000, 6))
        y = (2 * X[:, 3] + 0.1 * rng.normal(size=3000) > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=20, max_depth=3).fit(X, y)
        imp = model.feature_importances_
        assert imp.shape == (6,)
        assert np.argmax(imp) == 3

    def test_importance_zero_for_unused(self, rng):
        X = rng.normal(size=(500, 3))
        X[:, 2] = 0.0  # constant, never splittable
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        assert model.feature_importances_[2] == 0.0


class TestRegressor:
    def test_fits_linear_target(self, rng):
        X = rng.normal(size=(1000, 3))
        target = 2.0 * X[:, 0] - X[:, 1]
        model = GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X, target)
        pred = model.predict(X)
        resid = target - pred
        assert np.var(resid) < 0.5 * np.var(target)

    def test_accepts_continuous_targets(self, rng):
        X = rng.normal(size=(100, 2))
        target = rng.normal(size=100)  # not 0/1 labels
        model = GradientBoostingRegressor(n_estimators=3).fit(X, target)
        assert model.predict(X).shape == (100,)
