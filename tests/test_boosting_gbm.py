"""Tests for repro.boosting.gbm (the XGBoost stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.metrics import roc_auc_score


@pytest.fixture
def xor_like(rng):
    X = rng.normal(size=(2000, 6))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
    return X, y


class TestFit:
    def test_learns_interaction(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=40, max_depth=3).fit(
            X[:1500], y[:1500]
        )
        auc = roc_auc_score(y[1500:], model.predict_proba(X[1500:])[:, 1])
        assert auc > 0.9

    def test_more_trees_fit_train_better(self, rng):
        X = rng.normal(size=(800, 4))
        y = (X[:, 0] + 0.5 * rng.normal(size=800) > 0).astype(float)
        small = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        big = GradientBoostingClassifier(n_estimators=50).fit(X, y)
        auc_small = roc_auc_score(y, small.predict_proba(X)[:, 1])
        auc_big = roc_auc_score(y, big.predict_proba(X)[:, 1])
        assert auc_big >= auc_small

    def test_deterministic_given_seed(self, xor_like):
        X, y = xor_like
        a = GradientBoostingClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = GradientBoostingClassifier(n_estimators=5, random_state=3).fit(X, y)
        assert np.allclose(a.decision_function(X), b.decision_function(X))

    def test_subsample_and_colsample(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(
            n_estimators=20, subsample=0.5, colsample=0.5
        ).fit(X, y)
        auc = roc_auc_score(y, model.predict_proba(X)[:, 1])
        assert auc > 0.8

    def test_nonbinary_labels_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            GradientBoostingClassifier().fit(X, np.arange(10))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(subsample=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(max_bins=1)


class TestEarlyStopping:
    def test_stops_before_budget(self, rng):
        X = rng.normal(size=(1200, 3))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=200, early_stopping_rounds=3
        ).fit(X[:800], y[:800], eval_set=(X[800:], y[800:]))
        assert len(model.trees_) < 200
        assert model.best_iteration_ is not None

    def test_truncates_to_best_iteration(self, rng):
        """Regression: predictions must not include the trees grown after
        the best validation loss (the early_stopping_rounds overshoot)."""
        X = rng.normal(size=(1500, 4))
        y = ((X[:, 0] + 0.3 * rng.normal(size=1500)) > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=300, learning_rate=0.5, early_stopping_rounds=5
        ).fit(X[:1000], y[:1000], eval_set=(X[1000:], y[1000:]))
        assert len(model.trees_) == model.best_iteration_ + 1
        assert len(model.staged_decision_function(X[:20])) == len(model.trees_)

    def test_truncated_model_equals_shorter_fit(self, rng):
        """The early-stopped model predicts exactly like a fresh fit with
        n_estimators == best_iteration_ + 1 (no trailing trees linger)."""
        X = rng.normal(size=(1500, 4))
        y = ((X[:, 0] + 0.3 * rng.normal(size=1500)) > 0).astype(float)
        stopped = GradientBoostingClassifier(
            n_estimators=300, learning_rate=0.5, early_stopping_rounds=5
        ).fit(X[:1000], y[:1000], eval_set=(X[1000:], y[1000:]))
        assert len(stopped.trees_) < 300
        refit = GradientBoostingClassifier(
            n_estimators=stopped.best_iteration_ + 1, learning_rate=0.5
        ).fit(X[:1000], y[:1000])
        assert np.array_equal(
            stopped.decision_function(X), refit.decision_function(X)
        )

    def test_no_truncation_without_early_stopping(self, rng):
        X = rng.normal(size=(600, 3))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=30).fit(
            X[:400], y[:400], eval_set=(X[400:], y[400:])
        )
        assert len(model.trees_) == 30
        assert model.best_iteration_ is not None

    def test_eval_set_shape_checked(self, rng):
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        with pytest.raises(DataError):
            GradientBoostingClassifier().fit(X, y, eval_set=(X[:, :2], y))


class TestMissingValueRouting:
    def _specials_matrix(self, rng, n=1200, d=5):
        X = rng.normal(size=(n, d))
        X[rng.random(size=n) < 0.1, 0] = np.inf
        X[rng.random(size=n) < 0.1, 1] = -np.inf
        X[rng.random(size=n) < 0.1, 2] = np.nan
        y = (np.nan_to_num(X[:, 3]) + 0.5 * np.nan_to_num(X[:, 4]) > 0).astype(float)
        return X, y

    def test_inf_train_predict_parity(self, rng):
        """Regression: raw-float descent must route ±inf exactly like the
        training partition did (to the missing side), so fit-time margins
        and decision_function agree bit-for-bit on ±inf data."""
        from repro.tabular.binning import quantile_codes_matrix

        X, y = self._specials_matrix(rng)
        model = GradientBoostingClassifier(n_estimators=8, max_depth=4).fit(X, y)
        codes, __ = quantile_codes_matrix(X, max_bins=model.max_bins)
        margin = np.full(X.shape[0], model.base_score_)
        for tree in model.trees_:
            margin += model.learning_rate * tree.predict_codes(codes)
        assert np.array_equal(margin, model.decision_function(X))

    def test_nonfinite_rows_follow_missing_branch(self, rng):
        X, y = self._specials_matrix(rng)
        model = GradientBoostingClassifier(n_estimators=8, max_depth=4).fit(X, y)
        probe = np.zeros((3, X.shape[1]))
        probe[0], probe[1], probe[2] = np.nan, np.inf, -np.inf
        preds = model.decision_function(probe)
        # All-non-finite rows always take the right branch, so every kind
        # of non-finite row lands in the same leaf path.
        assert preds[0] == preds[1] == preds[2]


class TestSubsamplePartitions:
    def test_dropped_rows_leave_the_partition(self, rng):
        """Regression: subsampled-away rows no longer count toward node
        sizes (they used to be zero-weighted but kept, inflating
        ``n_samples`` and ``min_samples_leaf`` checks with phantom rows)."""
        X = rng.normal(size=(2000, 5))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=10, subsample=0.5, max_depth=3
        ).fit(X, y)
        for tree in model.trees_:
            root_n = int(tree.n_samples[0])
            assert root_n < 2000
            assert 700 < root_n < 1300  # ~Binomial(2000, 0.5)
            leaves = tree.feature == -1
            assert int(tree.n_samples[leaves].sum()) == root_n

    def test_leaf_sizes_respect_min_samples_leaf_on_real_rows(self, rng):
        X = rng.normal(size=(1500, 4))
        y = (X[:, 0] * X[:, 1] > 0).astype(float)
        msl = 20
        model = GradientBoostingClassifier(
            n_estimators=8, subsample=0.5, min_samples_leaf=msl, max_depth=4
        ).fit(X, y)
        for tree in model.trees_:
            leaves = (tree.feature == -1) & (tree.n_samples < tree.n_samples[0])
            # Every non-root leaf holds >= msl *actually trained* rows.
            assert (tree.n_samples[leaves] >= msl).all()

    def test_subsampled_fit_still_learns(self, rng):
        from repro.metrics import roc_auc_score

        X = rng.normal(size=(2000, 6))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
        model = GradientBoostingClassifier(
            n_estimators=30, max_depth=3, subsample=0.6
        ).fit(X[:1500], y[:1500])
        assert roc_auc_score(y[1500:], model.predict_proba(X[1500:])[:, 1]) > 0.85


class TestPredict:
    def test_proba_shape_and_range(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        proba = model.predict_proba(X[:50])
        assert proba.shape == (50, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_is_thresholded_proba(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        proba = model.predict_proba(X[:100])[:, 1]
        assert np.array_equal(model.predict(X[:100]), (proba >= 0.5).astype(float))

    def test_wrong_width_rejected(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        with pytest.raises(DataError):
            model.predict_proba(X[:, :3])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict_proba(np.ones((2, 2)))


class TestStructure:
    def test_paths_come_from_all_trees(self, xor_like):
        X, y = xor_like
        model = GradientBoostingClassifier(n_estimators=8, max_depth=3).fit(X, y)
        paths = model.paths()
        per_tree = [len(t.paths()) for t in model.trees_]
        assert len(paths) == sum(per_tree)

    def test_split_features_identify_informative(self, rng):
        X = rng.normal(size=(2000, 8))
        y = ((X[:, 2] + X[:, 5]) > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=10, max_depth=3).fit(X, y)
        split = model.split_features()
        assert 2 in split and 5 in split

    def test_importance_ranks_informative_features(self, rng):
        X = rng.normal(size=(3000, 6))
        y = (2 * X[:, 3] + 0.1 * rng.normal(size=3000) > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=20, max_depth=3).fit(X, y)
        imp = model.feature_importances_
        assert imp.shape == (6,)
        assert np.argmax(imp) == 3

    def test_importance_zero_for_unused(self, rng):
        X = rng.normal(size=(500, 3))
        X[:, 2] = 0.0  # constant, never splittable
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        assert model.feature_importances_[2] == 0.0


class TestRegressor:
    def test_fits_linear_target(self, rng):
        X = rng.normal(size=(1000, 3))
        target = 2.0 * X[:, 0] - X[:, 1]
        model = GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X, target)
        pred = model.predict(X)
        resid = target - pred
        assert np.var(resid) < 0.5 * np.var(target)

    def test_accepts_continuous_targets(self, rng):
        X = rng.normal(size=(100, 2))
        target = rng.normal(size=100)  # not 0/1 labels
        model = GradientBoostingRegressor(n_estimators=3).fit(X, target)
        assert model.predict(X).shape == (100,)
