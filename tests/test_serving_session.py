"""ServingSession: the serve loop, queue, deadlines, breakers, hot-swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeatureTransformer
from repro.exceptions import ConfigurationError, PlanSwapError
from repro.operators import Applied, Var
from repro.runtime.checkpoint import schema_fingerprint
from repro.runtime.failpoints import FAILPOINTS, active
from repro.serving import CoercionPolicy, ServingSession
from repro.serving.session import DEGRADED, OK, REJECTED_STATUS, SHED
from repro.tabular import Dataset

NAMES = ("amount", "count", "age")


class ManualClock:
    """Monotonic test clock: returns ``t``, optionally stepping per call."""

    def __init__(self, step: float = 0.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        return value


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


@pytest.fixture
def plan() -> FeatureTransformer:
    return FeatureTransformer(
        expressions=(
            Var(0),
            Applied("add", (Var(0), Var(1))),
            Applied("mul", (Var(1), Var(2))),
        ),
        original_names=NAMES,
        metadata={"schema_hash": schema_fingerprint(NAMES), "config_hash": "cfg"},
    )


@pytest.fixture
def other_plan() -> FeatureTransformer:
    """Same input schema, different Ψ (a legitimate rollout candidate)."""
    return FeatureTransformer(
        expressions=(Applied("sub", (Var(2), Var(0))), Var(1)),
        original_names=NAMES,
        metadata={"schema_hash": schema_fingerprint(NAMES), "config_hash": "cfg2"},
    )


class TestBasicServing:
    def test_single_record_ok(self, plan):
        session = ServingSession(plan)
        response = session.serve_one({"amount": 1.0, "count": 2.0, "age": 3.0})
        assert response.status == OK and response.ok
        np.testing.assert_array_equal(response.values, [1.0, 3.0, 6.0])

    def test_batch_matches_transform_bitwise(self, plan, rng):
        X = rng.normal(size=(50, 3))
        session = ServingSession(plan)
        response = session.serve_one(X)
        assert response.status == OK
        expected = plan.transform_matrix(X)
        np.testing.assert_array_equal(response.values, expected)

    def test_coerced_request_flagged_and_correct(self, plan):
        session = ServingSession(plan)
        response = session.serve_one({"age": 3.0, "count": 2.0, "amount": 1.0})
        assert response.status == OK
        assert response.admission == "coerced"
        assert "reordered" in response.coercions
        np.testing.assert_array_equal(response.values, [1.0, 3.0, 6.0])
        assert session.report.admitted_coerced == 1
        assert session.report.coercions.get("reordered") == 1

    def test_rejected_request_flagged(self, plan):
        session = ServingSession(plan)
        response = session.serve_one({"amount": 1.0})
        assert response.status == REJECTED_STATUS
        assert not response.ok
        assert response.values is None
        assert "count" in response.error
        assert session.report.rejected == 1

    def test_responses_in_request_order(self, plan):
        session = ServingSession(plan)
        responses = session.serve(
            [np.ones(3), {"bad": 1.0}, np.zeros(3)]
        )
        assert [r.request_id for r in responses] == [0, 1, 2]
        assert [r.status for r in responses] == [OK, REJECTED_STATUS, OK]

    def test_dataset_request(self, plan):
        session = ServingSession(plan)
        ds = Dataset(X=np.ones((4, 3)), names=NAMES)
        response = session.serve_one(ds)
        assert response.status == OK
        assert response.values.shape == (4, 3)

    def test_invalid_deadline_rejected(self, plan):
        with pytest.raises(ConfigurationError):
            ServingSession(plan, deadline_ms=0)


class TestDeadlines:
    def test_deadline_degrades_the_tail_only(self, plan):
        # Clock: t=0 at deadline computation, then +0.2s per check; a
        # 500 ms budget admits two steps and degrades the third.
        session = ServingSession(
            plan, deadline_ms=500, clock=ManualClock(step=0.2)
        )
        response = session.serve_one(np.array([1.0, 2.0, 3.0]))
        assert response.status == DEGRADED
        assert response.deadline_hit
        np.testing.assert_array_equal(response.values[:2], [1.0, 3.0])
        assert np.isnan(response.values[2])
        assert response.nulled == (plan.expressions[2].key,)
        assert session.report.deadline_hits == 1

    def test_no_deadline_never_hits(self, plan):
        session = ServingSession(plan, clock=ManualClock(step=100.0))
        response = session.serve_one(np.ones(3))
        assert response.status == OK and not response.deadline_hit


class TestQueueShedding:
    def test_overflow_sheds_oldest_with_flagged_responses(self, plan):
        session = ServingSession(plan, max_queue=2)
        responses = session.serve([np.full(3, float(i)) for i in range(5)])
        assert len(responses) == 5
        statuses = [r.status for r in responses]
        # shed-oldest: the first three requests are dropped, the two
        # freshest survive.
        assert statuses == [SHED, SHED, SHED, OK, OK]
        assert all(r.values is None for r in responses[:3])
        assert session.report.shed == 3
        assert session.report.requests_total == 2

    def test_queue_within_bound_serves_everything(self, plan):
        session = ServingSession(plan, max_queue=16)
        responses = session.serve([np.ones(3)] * 10)
        assert all(r.status == OK for r in responses)
        assert session.report.shed == 0


class TestBreakers:
    def test_consecutive_faults_trip_and_short_circuit(self, plan):
        clock = ManualClock()
        session = ServingSession(
            plan, breaker_threshold=2, breaker_cooldown=60.0, clock=clock
        )
        with active("serve.operator"):
            first = session.serve_one(np.ones(3))
            second = session.serve_one(np.ones(3))
        assert first.status == DEGRADED
        assert np.all(np.isnan(first.values))
        assert len(first.nulled) == 3
        # second faulting request tripped every expression's breaker
        assert session.report.breaker_trips == 3
        assert session.report.nulled_columns == 6

        # disarmed, but breakers are open: served NaN without evaluation
        third = session.serve_one(np.ones(3))
        assert third.status == DEGRADED
        assert np.all(np.isnan(third.values))
        assert session.report.breaker_short_circuits == 3
        assert session.health()["status"] == DEGRADED
        assert len(session.health()["open_breakers"]) == 3

        # cooldown elapsed: the half-open probes succeed and close
        clock.t = 120.0
        fourth = session.serve_one(np.ones(3))
        assert fourth.status == OK
        np.testing.assert_array_equal(fourth.values, [1.0, 2.0, 1.0])
        assert session.health()["status"] == OK

    def test_one_bad_expression_keeps_the_rest_live(self, plan):
        clock = ManualClock()
        session = ServingSession(
            plan, breaker_threshold=1, breaker_cooldown=60.0, clock=clock
        )
        # nth=2 faults exactly the second expression of the first request
        with active("serve.operator", mode="nth", nth=2):
            response = session.serve_one(np.array([1.0, 2.0, 3.0]))
        assert response.status == DEGRADED
        assert response.nulled == (plan.expressions[1].key,)
        np.testing.assert_array_equal(response.values[[0, 2]], [1.0, 6.0])

        # the faulted expression now short-circuits; the others serve
        response = session.serve_one(np.array([1.0, 2.0, 3.0]))
        assert response.status == DEGRADED
        assert np.isnan(response.values[1])
        np.testing.assert_array_equal(response.values[[0, 2]], [1.0, 6.0])


class TestHotSwap:
    def test_swap_switches_atomically(self, plan, other_plan):
        session = ServingSession(plan)
        before = session.serve_one(np.array([1.0, 2.0, 3.0]))
        installed = session.swap_plan(other_plan)
        assert installed is other_plan
        after = session.serve_one(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(before.values, [1.0, 3.0, 6.0])
        np.testing.assert_array_equal(after.values, [2.0, 2.0])
        assert session.report.swaps_completed == 1
        assert session.health()["config_hash"] == "cfg2"

    def test_swap_from_path(self, plan, other_plan, tmp_path):
        path = tmp_path / "candidate.json"
        other_plan.save(path)
        session = ServingSession(plan)
        session.swap_plan(path)
        assert session.plan.feature_keys == other_plan.feature_keys

    def test_swap_refuses_schema_mismatch(self, plan):
        wrong = FeatureTransformer(
            expressions=(Var(0),), original_names=("a", "b")
        )
        session = ServingSession(plan)
        with pytest.raises(PlanSwapError, match="fingerprint"):
            session.swap_plan(wrong)
        assert session.plan is plan
        assert session.report.swaps_rolled_back == 1
        assert session.report.swap_failures

    def test_swap_refuses_corrupt_file(self, plan, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        session = ServingSession(plan)
        with pytest.raises(PlanSwapError, match="load failed"):
            session.swap_plan(bad)
        assert session.plan is plan
        assert session.report.swaps_rolled_back == 1

    def test_failed_selftest_rolls_back(self, plan, other_plan):
        session = ServingSession(plan)
        session.serve_one(np.array([1.0, 2.0, 3.0]))  # seeds the probe row
        with active("serve.bad_swap_plan"):
            with pytest.raises(PlanSwapError, match="self-test"):
                session.swap_plan(other_plan)
        # rollback: the prior plan keeps serving, identically
        response = session.serve_one(np.array([1.0, 2.0, 3.0]))
        assert response.status == OK
        np.testing.assert_array_equal(response.values, [1.0, 3.0, 6.0])
        assert session.report.swaps_rolled_back == 1
        assert "self-test failed" in session.report.swap_failures[0]

    def test_swap_resets_breakers(self, plan, other_plan):
        session = ServingSession(plan, breaker_threshold=1)
        with active("serve.operator"):
            session.serve_one(np.ones(3))
        assert session.health()["status"] == DEGRADED
        session.swap_plan(other_plan)
        assert session.health()["status"] == OK


class TestHealthAndReport:
    def test_health_shape(self, plan):
        session = ServingSession(plan)
        health = session.health()
        assert health["ready"] is True
        assert health["status"] == OK
        assert health["queue_depth"] == 0
        assert health["n_features"] == 3
        assert health["schema_hash"] == schema_fingerprint(NAMES)

    def test_report_summary_is_jsonable(self, plan):
        import json

        session = ServingSession(plan, max_queue=1)
        with active("serve.operator", mode="once"):
            session.serve([np.ones(3), {"bad": 1.0}, np.ones(3)])
        summary = session.report.summary()
        json.dumps(summary)  # must not raise
        assert summary["requests_total"] >= 1

    def test_policy_threads_through(self, plan):
        session = ServingSession(
            plan, policy=CoercionPolicy.from_spec("none")
        )
        response = session.serve_one(
            {"age": 3.0, "amount": 1.0, "count": 2.0}
        )
        assert response.status == REJECTED_STATUS
