"""Chaos suite: the ISSUE's fault scripts, driven through failpoints.

Every scenario injects a deterministic fault into a live ``SAFE.fit`` or
``transform`` and asserts the run *degrades predictably*:

* a worker-pool crash mid-fit ends with the same Ψ as ``n_jobs=1``;
* a fit killed between iterations resumes from its checkpoint and
  produces the same Ψ as an uninterrupted run;
* a truncated final checkpoint costs one iteration, not the run;
* with every failpoint disarmed, the fault-tolerant paths are
  bit-identical to the strict ones.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core import SAFE, SAFEConfig
from repro.exceptions import InjectedFault
from repro.parallel import _reset_pool_state, set_retry_policy
from repro.runtime.failpoints import FAILPOINTS, active
from repro.runtime.retry import RetryPolicy


@pytest.fixture(autouse=True)
def _clean_runtime():
    FAILPOINTS.reset()
    set_retry_policy(None)
    _reset_pool_state()
    yield
    FAILPOINTS.reset()
    set_retry_policy(None)
    _reset_pool_state()


#: Fast retries so chaos scenarios never sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

CFG = dict(gamma=10, random_state=0)


class TestPoolCrash:
    def test_transient_pool_crash_is_retried_to_the_same_psi(self, linear_data):
        reference = SAFE(SAFEConfig(**CFG)).fit(linear_data)
        set_retry_policy(FAST_RETRY)
        with active("parallel.pool", mode="once", raises=BrokenProcessPool):
            psi = SAFE(SAFEConfig(n_jobs=2, **CFG)).fit(linear_data)
        assert psi.feature_keys == reference.feature_keys

    def test_persistent_pool_crash_degrades_to_serial(self, linear_data):
        reference = SAFE(SAFEConfig(**CFG)).fit(linear_data)
        set_retry_policy(RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0))
        with active("parallel.pool", mode="always", raises=BrokenProcessPool):
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                psi = SAFE(SAFEConfig(n_jobs=2, **CFG)).fit(linear_data)
        assert psi.feature_keys == reference.feature_keys


class TestKilledFitResumes:
    def test_resume_reproduces_the_uninterrupted_psi(self, linear_data, tmp_path):
        cfg = SAFEConfig(n_iterations=2, **CFG)
        reference = SAFE(cfg).fit(linear_data)

        ckpt = tmp_path / "ckpt"
        with active("pipeline.iteration", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                SAFE(cfg).fit(linear_data, checkpoint_dir=ckpt)

        resumed = SAFE(cfg)
        psi = resumed.fit(linear_data, checkpoint_dir=ckpt)
        assert resumed.runtime_report_.resumed_from_iteration == 0
        assert psi.feature_keys == reference.feature_keys
        assert np.array_equal(
            psi.transform_matrix(linear_data.X),
            reference.transform_matrix(linear_data.X),
        )

    def test_resumed_traces_cover_all_iterations(self, linear_data, tmp_path):
        cfg = SAFEConfig(n_iterations=2, **CFG)
        ckpt = tmp_path / "ckpt"
        with active("pipeline.iteration", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                SAFE(cfg).fit(linear_data, checkpoint_dir=ckpt)
        resumed = SAFE(cfg)
        resumed.fit(linear_data, checkpoint_dir=ckpt)
        assert [t.iteration for t in resumed.traces_] == [0, 1]
        # Restored traces only persist scalars; the live one is complete.
        assert resumed.traces_[0].selection is None
        assert resumed.traces_[1].selection is not None

    def test_checkpoint_from_other_config_is_not_resumed(
        self, linear_data, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        with active("pipeline.iteration", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                SAFE(SAFEConfig(n_iterations=2, **CFG)).fit(
                    linear_data, checkpoint_dir=ckpt
                )
        other = SAFE(SAFEConfig(n_iterations=2, gamma=12, random_state=0))
        psi = other.fit(linear_data, checkpoint_dir=ckpt)
        assert other.runtime_report_.resumed_from_iteration is None
        assert other.runtime_report_.checkpoints_skipped
        assert psi.n_output_features >= 1


class TestTruncatedCheckpoint:
    def test_torn_final_checkpoint_costs_one_iteration_only(
        self, linear_data, tmp_path
    ):
        cfg = SAFEConfig(n_iterations=2, **CFG)
        reference = SAFE(cfg).fit(linear_data)

        ckpt = tmp_path / "ckpt"
        interrupted = SAFE(cfg)
        with active("pipeline.iteration", mode="nth", nth=2):
            with pytest.raises(InjectedFault):
                interrupted.fit(linear_data, checkpoint_dir=ckpt)
        newest = sorted(ckpt.glob("iter_*.json"))[-1]
        text = newest.read_text()
        newest.write_text(text[: len(text) // 2])  # torn write

        resumed = SAFE(cfg)
        psi = resumed.fit(linear_data, checkpoint_dir=ckpt)
        # The corrupt iteration-1 file is skipped (with a reason) and the
        # fit resumes after iteration 0, replaying iteration 1.
        assert resumed.runtime_report_.checkpoints_skipped
        assert resumed.runtime_report_.resumed_from_iteration == 0
        assert psi.feature_keys == reference.feature_keys

    def test_all_checkpoints_corrupt_means_clean_restart(
        self, linear_data, tmp_path
    ):
        cfg = SAFEConfig(n_iterations=1, **CFG)
        reference = SAFE(cfg).fit(linear_data)
        ckpt = tmp_path / "ckpt"
        SAFE(cfg).fit(linear_data, checkpoint_dir=ckpt)
        for path in ckpt.glob("iter_*.json"):
            path.write_text(path.read_text()[:40])
        restarted = SAFE(cfg)
        psi = restarted.fit(linear_data, checkpoint_dir=ckpt)
        assert restarted.runtime_report_.resumed_from_iteration is None
        assert psi.feature_keys == reference.feature_keys


class TestQuarantine:
    def test_operator_fault_is_quarantined_and_the_fit_completes(
        self, linear_data
    ):
        safe = SAFE(SAFEConfig(**CFG))
        with active("generation.operator", mode="nth", nth=1):
            psi = safe.fit(linear_data)
        report = safe.runtime_report_
        assert report.n_quarantined == 1
        iteration, record = report.quarantined[0]
        assert iteration == 0 and "InjectedFault" in record.reason
        assert safe.traces_[0].n_quarantined == 1
        assert psi.n_output_features >= 1
        assert record.key not in psi.feature_keys

    def test_raise_mode_restores_fail_fast(self, linear_data):
        safe = SAFE(SAFEConfig(on_operator_error="raise", **CFG))
        with active("generation.operator", mode="nth", nth=1):
            with pytest.raises(InjectedFault):
                safe.fit(linear_data)

    def test_quarantine_summary_is_jsonable(self, linear_data):
        import json

        safe = SAFE(SAFEConfig(**CFG))
        with active("generation.operator", mode="nth", nth=2):
            safe.fit(linear_data)
        summary = safe.runtime_report_.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["quarantined"][0]["operator"]


class TestServingFaults:
    def test_errors_null_turns_an_evaluation_fault_into_nan(self, linear_data):
        psi = SAFE(SAFEConfig(**CFG)).fit(linear_data)
        with active("transform.evaluate", mode="nth", nth=2):
            out = psi.transform_matrix(linear_data.X, errors="null")
        healthy = psi.transform_matrix(linear_data.X)
        assert np.all(np.isnan(out[:, 1]))
        mask = np.ones(out.shape[1], dtype=bool)
        mask[1] = False
        assert np.array_equal(out[:, mask], healthy[:, mask])

    def test_errors_raise_propagates_the_fault(self, linear_data):
        psi = SAFE(SAFEConfig(**CFG)).fit(linear_data)
        with active("transform.evaluate"):
            with pytest.raises(InjectedFault):
                psi.transform(linear_data)


class TestFaultFreeParity:
    """With every failpoint disarmed, tolerance adds nothing — bit for bit."""

    def test_quarantine_mode_matches_strict_mode(self, linear_data):
        tolerant = SAFE(SAFEConfig(on_operator_error="quarantine", **CFG)).fit(
            linear_data
        )
        strict = SAFE(SAFEConfig(on_operator_error="raise", **CFG)).fit(
            linear_data
        )
        assert tolerant.feature_keys == strict.feature_keys
        assert np.array_equal(
            tolerant.transform_matrix(linear_data.X),
            strict.transform_matrix(linear_data.X),
        )

    def test_checkpointed_fit_matches_plain_fit(self, linear_data, tmp_path):
        cfg = SAFEConfig(n_iterations=2, **CFG)
        plain = SAFE(cfg).fit(linear_data)
        ckpt_safe = SAFE(cfg)
        checkpointed = ckpt_safe.fit(
            linear_data, checkpoint_dir=tmp_path / "ckpt"
        )
        assert ckpt_safe.runtime_report_.checkpoints_written == len(
            ckpt_safe.traces_
        )
        assert checkpointed.feature_keys == plain.feature_keys
        assert np.array_equal(
            checkpointed.transform_matrix(linear_data.X),
            plain.transform_matrix(linear_data.X),
        )

    def test_errors_null_matches_errors_raise(self, linear_data):
        psi = SAFE(SAFEConfig(**CFG)).fit(linear_data)
        assert np.array_equal(
            psi.transform_matrix(linear_data.X, errors="null"),
            psi.transform_matrix(linear_data.X, errors="raise"),
        )
