"""Tests for the learned (ridge / kernel ridge) operators of §III."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.operators import expression_from_json, fit_applied, get_operator, Var


@pytest.fixture
def linear_pair(rng):
    a = rng.normal(size=800)
    b = 2.0 * a + 1.0 + 0.1 * rng.normal(size=800)
    return a, b


@pytest.fixture
def nonlinear_pair(rng):
    a = rng.normal(size=800)
    b = np.sin(2.0 * a) + 0.1 * rng.normal(size=800)
    return a, b


class TestRidge:
    def test_prediction_tracks_linear_relation(self, linear_pair):
        a, b = linear_pair
        op = get_operator("ridge")
        state = op.fit(a, b)
        pred = op.apply(state, a, b)
        corr = np.corrcoef(pred, b)[0, 1]
        assert corr > 0.95

    def test_residual_removes_linear_part(self, linear_pair):
        a, b = linear_pair
        op = get_operator("ridge_residual")
        state = op.fit(a, b)
        resid = op.apply(state, a, b)
        assert abs(np.corrcoef(resid, a)[0, 1]) < 0.15
        assert resid.std() < b.std()

    def test_state_is_scalars(self, linear_pair):
        a, b = linear_pair
        state = get_operator("ridge").fit(a, b)
        json.dumps(state)
        assert set(state) == {"slope", "intercept", "a_mean", "a_std"}

    def test_degenerate_input_safe(self):
        op = get_operator("ridge")
        state = op.fit(np.array([np.nan, np.nan]), np.array([1.0, 2.0]))
        out = op.apply(state, np.array([1.0]), np.array([2.0]))
        assert np.isfinite(out).all()

    def test_serving_with_none_state(self):
        op = get_operator("ridge")
        out = op.apply(None, np.array([1.0]), np.array([2.0]))
        assert np.isfinite(out).all()


class TestKernelRidge:
    def test_captures_nonlinear_relation(self, nonlinear_pair):
        a, b = nonlinear_pair
        op = get_operator("kernel_ridge")
        state = op.fit(a, b)
        pred = op.apply(state, a, b)
        corr = np.corrcoef(pred, b)[0, 1]
        assert corr > 0.8, "kernel ridge should track sin(2a)"

    def test_beats_linear_ridge_on_nonlinear_data(self, nonlinear_pair):
        a, b = nonlinear_pair
        kr = get_operator("kernel_ridge")
        lr = get_operator("ridge")
        kr_pred = kr.apply(kr.fit(a, b), a, b)
        lr_pred = lr.apply(lr.fit(a, b), a, b)
        kr_err = np.mean((kr_pred - b) ** 2)
        lr_err = np.mean((lr_pred - b) ** 2)
        assert kr_err < lr_err

    def test_residual_shrinks_variance(self, nonlinear_pair):
        a, b = nonlinear_pair
        op = get_operator("kernel_ridge_residual")
        resid = op.apply(op.fit(a, b), a, b)
        assert resid.std() < b.std()

    def test_state_serializable_and_portable(self, nonlinear_pair, rng):
        a, b = nonlinear_pair
        X = np.column_stack([a, b])
        expr = fit_applied("kernel_ridge", (Var(0), Var(1)), X)
        back = expression_from_json(expr.to_json())
        fresh = rng.normal(size=(20, 2))
        assert np.allclose(back.evaluate(fresh), expr.evaluate(fresh))

    def test_tiny_input_falls_back(self):
        op = get_operator("kernel_ridge")
        state = op.fit(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        out = op.apply(state, np.array([1.5]), np.array([0.0]))
        assert np.isfinite(out).all()

    def test_nan_keys_served_safely(self, nonlinear_pair):
        a, b = nonlinear_pair
        op = get_operator("kernel_ridge")
        state = op.fit(a, b)
        out = op.apply(state, np.array([np.nan]), np.array([0.0]))
        assert np.isfinite(out).all()

    def test_anchor_count_bounded(self, rng):
        a = rng.normal(size=5000)
        b = a**2
        state = get_operator("kernel_ridge").fit(a, b)
        assert len(state["anchors"]) <= 64


class TestStandardizeNoiseFloor:
    """Regression: a numerically constant regressor must not poison the fit.

    Standardizing by the ~1e-17 rounding std of a constant column used to
    feed ±1e16 values into the ridge solve; the noise floor maps the
    column to ~0 instead, and the fit degrades gracefully to the
    intercept-only model.
    """

    def test_constant_regressor_yields_intercept_only_ridge(self, rng):
        a = np.full(150, 0.1)
        assert 0.0 < a.std() < 1e-15  # the hazard exists on this input
        b = rng.normal(loc=3.0, size=150)
        op = get_operator("ridge")
        state = op.fit(a, b)
        assert state["a_std"] == 1.0
        assert abs(state["slope"]) < 1e-10
        out = op.apply(state, a, b)
        assert np.allclose(out, b.mean())

    def test_constant_regressor_keeps_kernel_ridge_finite(self, rng):
        a = np.full(150, 0.1)
        b = rng.normal(size=150)
        op = get_operator("kernel_ridge")
        state = op.fit(a, b)
        assert state["a_std"] == 1.0
        out = op.apply(state, a, b)
        assert np.isfinite(out).all()
        assert np.abs(out).max() < 1e3
