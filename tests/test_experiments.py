"""Smoke + contract tests for the experiment harness (small scales)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import METHOD_ORDER, average_lift, fit_method, make_method
from repro.experiments.reporting import banner, format_table, save_results


class TestRunner:
    def test_make_method_all_names(self):
        for name in METHOD_ORDER:
            m = make_method(name, gamma=5, seed=0)
            assert m.name == name

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            make_method("AUTOLEARN")

    def test_fit_method_records_time(self, interaction_data):
        run = fit_method("ORIG", interaction_data, None)
        assert run.fit_seconds >= 0
        assert run.transformer.n_output_features == interaction_data.n_cols

    def test_average_lift(self):
        per_method = {
            "ORIG": {"lr": 50.0, "xgb": 80.0},
            "SAFE": {"lr": 55.0, "xgb": 88.0},
        }
        lift = average_lift(per_method)
        assert lift == pytest.approx((10.0 + 10.0) / 2)

    def test_evaluate_transformer(self, interaction_data):
        from repro.experiments import evaluate_transformer

        train = interaction_data.take_rows(np.arange(800))
        test = interaction_data.take_rows(np.arange(800, 1200))
        run = fit_method("SAFE", train, None, gamma=20)
        scores = evaluate_transformer(run.transformer, train, test, ("lr", "xgb"))
        assert set(scores) == {"lr", "xgb"}
        assert all(0 <= v <= 100 for v in scores.values())
        assert scores["lr"] > 60  # interaction recovered


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bee"], [["x", 1.5], ["long-cell", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.50" in text
        assert "long-cell" in text

    def test_banner(self):
        out = banner("Title")
        assert out.splitlines()[1] == "Title"

    def test_save_results_json(self, tmp_path):
        path = tmp_path / "out" / "results.json"
        save_results({"a": np.array([1.0, 2.0]), "b": 3}, path)
        import json

        payload = json.loads(path.read_text())
        assert payload["a"] == [1.0, 2.0]


@pytest.mark.slow
class TestExperimentRuns:
    """Each experiment module must run end-to-end at miniature scale."""

    def test_table3(self):
        from repro.experiments import table3

        result = table3.run(
            datasets=("banknote",), methods=("ORIG", "SAFE"),
            classifiers=("lr", "xgb"), scale=0.3, gamma=10, verbose=False,
        )
        assert "banknote" in result.scores
        assert set(result.scores["banknote"]) == {"ORIG", "SAFE"}

    def test_table5(self):
        from repro.experiments import table5

        result = table5.run(
            datasets=("banknote",), methods=("FCT", "TFC", "SAFE"),
            scale=0.3, gamma=10, verbose=False,
        )
        assert result.seconds["banknote"]["SAFE"] > 0
        assert "SAFE/FCT" in result.ratios

    def test_table6(self):
        from repro.experiments import table6

        result = table6.run(
            datasets=("banknote",), methods=("RAND", "SAFE"),
            repeats=3, scale=0.2, gamma=10, verbose=False,
        )
        row = result.jsd["banknote"]
        assert 0 <= row["SAFE"] <= np.log(2) + 1e-9
        assert 0 <= row["RAND"] <= np.log(2) + 1e-9

    def test_table8(self):
        from repro.experiments import table8

        result = table8.run(
            datasets=("data1",), methods=("ORIG", "SAFE"),
            classifiers=("lr",), scale=0.001, gamma=10, verbose=False,
        )
        assert set(result.scores["data1"]) == {"ORIG", "SAFE"}

    def test_fig3(self):
        from repro.experiments import fig3

        result = fig3.run(datasets=("banknote",), scale=0.3, gamma=10, verbose=False)
        assert "banknote" in result.summary
        assert 0 <= result.summary["banknote"]["generated_share_top_half"] <= 1

    def test_fig4(self):
        from repro.experiments import fig4

        result = fig4.run(
            datasets=("banknote",), rounds=2, scale=0.3, gamma=10, verbose=False
        )
        curve = result.curves["banknote"]
        assert [n for n, __ in curve] == [1, 2]

    def test_assumptions(self):
        from repro.experiments import assumptions

        result = assumptions.run(datasets=("spambase",), scale=0.1, verbose=False)
        assert "spambase" in result.mean_ivs
        assert result.mean_ivs["spambase"]["same_path"] > 0

    def test_search_space(self):
        from repro.experiments import search_space

        result = search_space.run(datasets=("spambase",), scale=0.1, verbose=False)
        row = result.rows["spambase"]
        assert row["T"] == 57 * 56 * 4
        assert row["actual_distinct_pairs"] > 0
