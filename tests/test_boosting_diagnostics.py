"""Tests for GBM diagnostics: staged predictions and tree dumps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import GradientBoostingClassifier
from repro.metrics import roc_auc_score


@pytest.fixture
def fitted(rng):
    X = rng.normal(size=(1500, 4))
    y = ((X[:, 0] + X[:, 2]) > 0).astype(float)
    model = GradientBoostingClassifier(n_estimators=15, max_depth=3).fit(X, y)
    return model, X, y


class TestStaged:
    def test_one_margin_per_round(self, fitted):
        model, X, __ = fitted
        staged = model.staged_decision_function(X[:50])
        assert len(staged) == len(model.trees_)

    def test_last_stage_matches_decision_function(self, fitted):
        model, X, __ = fitted
        staged = model.staged_decision_function(X[:100])
        assert np.allclose(staged[-1], model.decision_function(X[:100]))

    def test_training_auc_improves_over_stages(self, fitted):
        model, X, y = fitted
        staged = model.staged_decision_function(X)
        first = roc_auc_score(y, staged[0])
        last = roc_auc_score(y, staged[-1])
        assert last >= first


class TestDump:
    def test_dump_contains_all_trees(self, fitted):
        model, __, __2 = fitted
        text = model.dump_trees()
        assert text.count("tree ") == len(model.trees_)
        assert "leaf value=" in text
        assert "gain=" in text

    def test_dump_uses_feature_names(self, fitted):
        model, __, __2 = fitted
        text = model.dump_trees(feature_names=("alpha", "beta", "gamma", "delta"))
        assert "alpha <=" in text or "gamma <=" in text

    def test_dump_falls_back_to_placeholders(self, fitted):
        model, __, __2 = fitted
        text = model.dump_trees()
        assert "x0 <=" in text or "x2 <=" in text
