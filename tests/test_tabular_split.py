"""Tests for repro.tabular.split."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.tabular import (
    Dataset,
    bootstrap_indices,
    fraction_split,
    kfold_indices,
    train_valid_test_split,
)


@pytest.fixture
def labeled():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(1000, 3))
    y = (rng.random(1000) < 0.2).astype(float)
    return Dataset.from_arrays(X, y)


class TestTrainValidTest:
    def test_sizes(self, labeled):
        tr, va, te = train_valid_test_split(labeled, 600, 200, 200, random_state=0)
        assert tr.n_rows == pytest.approx(600, abs=2)
        assert va.n_rows == pytest.approx(200, abs=2)
        assert te.n_rows == pytest.approx(200, abs=2)

    def test_zero_valid_returns_none(self, labeled):
        tr, va, te = train_valid_test_split(labeled, 700, 0, 300, random_state=0)
        assert va is None
        assert tr.n_rows + te.n_rows <= 1000

    def test_stratification_preserves_rate(self, labeled):
        tr, va, te = train_valid_test_split(labeled, 600, 200, 200, random_state=0)
        overall = labeled.y.mean()
        for part in (tr, va, te):
            assert part.y.mean() == pytest.approx(overall, abs=0.05)

    def test_unstratified_works(self, labeled):
        tr, __, te = train_valid_test_split(
            labeled, 600, 0, 300, random_state=0, stratify=False
        )
        assert tr.n_rows == 600
        assert te.n_rows == 300

    def test_oversized_request_raises(self, labeled):
        with pytest.raises(DataError):
            train_valid_test_split(labeled, 900, 200, 200, stratify=False)

    def test_deterministic_with_seed(self, labeled):
        a = train_valid_test_split(labeled, 100, 0, 100, random_state=7)[0]
        b = train_valid_test_split(labeled, 100, 0, 100, random_state=7)[0]
        assert np.array_equal(a.X, b.X)

    def test_invalid_sizes(self, labeled):
        with pytest.raises(ConfigurationError):
            train_valid_test_split(labeled, 0, 10, 10)

    def test_disjoint_partitions(self, labeled):
        tr, va, te = train_valid_test_split(
            labeled, 500, 200, 300, random_state=0, stratify=False
        )
        # Tag rows by a unique column value to check disjointness.
        all_vals = np.concatenate([tr.X[:, 0], va.X[:, 0], te.X[:, 0]])
        assert np.unique(all_vals).size == all_vals.size


class TestFractionSplit:
    def test_default_fractions(self, labeled):
        tr, va, te = fraction_split(labeled, random_state=0)
        assert tr.n_rows == pytest.approx(700, abs=3)
        assert te.n_rows >= 100

    def test_invalid_fractions(self, labeled):
        with pytest.raises(ConfigurationError):
            fraction_split(labeled, train_frac=0.9, valid_frac=0.2)


class TestKFold:
    def test_covers_everything_once(self):
        folds = kfold_indices(50, n_folds=5, random_state=0)
        all_test = np.concatenate([te for __, te in folds])
        assert sorted(all_test.tolist()) == list(range(50))

    def test_train_test_disjoint(self):
        for tr, te in kfold_indices(30, n_folds=3, random_state=0):
            assert not set(tr) & set(te)

    def test_too_many_folds(self):
        with pytest.raises(DataError):
            kfold_indices(3, n_folds=5)

    def test_min_folds(self):
        with pytest.raises(ConfigurationError):
            kfold_indices(10, n_folds=1)


class TestBootstrap:
    def test_size_and_range(self):
        idx = bootstrap_indices(100, random_state=0)
        assert idx.size == 100
        assert idx.min() >= 0
        assert idx.max() < 100

    def test_has_duplicates_whp(self):
        idx = bootstrap_indices(500, random_state=0)
        assert np.unique(idx).size < 500
