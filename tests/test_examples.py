"""Each example script must run end-to-end (tiny scales via importable main)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.slow
class TestExamplesRun:
    def _run(self, script: str, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(EXAMPLES / script), *args],
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_quickstart(self):
        result = self._run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "test AUC" in result.stdout

    def test_fraud_detection(self):
        result = self._run("fraud_detection.py", "--scale", "0.0015")
        assert result.returncode == 0, result.stderr
        assert "fraud score" in result.stdout

    def test_custom_operators(self):
        result = self._run("custom_operators.py")
        assert result.returncode == 0, result.stderr
        assert "round-trip" in result.stdout

    def test_method_comparison(self):
        result = self._run("method_comparison.py", "--dataset", "banknote",
                           "--scale", "0.3")
        assert result.returncode == 0, result.stderr
        assert "SAFE" in result.stdout

    def test_iterative_refinement(self):
        result = self._run("iterative_refinement.py")
        assert result.returncode == 0, result.stderr
        assert "iterations=1" in result.stdout
