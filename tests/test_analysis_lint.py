"""The static-analysis subsystem: repo gate, per-rule firing, registries.

Three layers:

* the tier-1 gate — ``run_lint`` over the real source tree must come
  back empty (the same check as ``python -m repro lint``);
* seeded defects — for every rule, a synthetic module carrying exactly
  the defect the rule exists for must produce a finding with the right
  rule id (and the suppression syntax must silence it);
* registry completeness — every public function of the batched kernel
  modules is a kernel, an oracle, or an explicit exemption.
"""

from __future__ import annotations

import inspect
from pathlib import Path

import pytest

import repro
from repro.analysis import run_lint
from repro.analysis.linter import SourceModule, lint_modules

pytestmark = pytest.mark.analysis

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_ROOT.parent.parent
TESTS_ROOT = REPO_ROOT / "tests"


def _lint_src(source: str, tests: "list[str] | None" = None) -> "list":
    modules = [SourceModule.from_source(source, path="synthetic.py")]
    test_modules = [
        SourceModule.from_source(t, path=f"test_synthetic_{i}.py")
        for i, t in enumerate(tests or [])
    ]
    return lint_modules(modules, test_modules)


def _rule_ids(findings) -> "list[str]":
    return [f.rule for f in findings]


class TestRepoIsLintClean:
    """Tier-1 gate: the shipped source tree has zero findings."""

    def test_run_lint_on_the_repo_is_clean(self):
        findings = run_lint(SRC_ROOT, tests_root=TESTS_ROOT, repo_root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)


class TestFloatHazardRules:
    def test_float_equality_fires(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    return a / 3.0 == b\n"
        )
        assert "float-eq" in _rule_ids(findings)

    def test_integer_sentinel_compare_not_flagged(self):
        findings = _lint_src(
            "def f(counts):\n"
            "    return counts == 0\n"
        )
        assert "float-eq" not in _rule_ids(findings)

    def test_unguarded_log_fires(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.log(x)\n"
        )
        assert "log-guard" in _rule_ids(findings)

    def test_floored_log_not_flagged(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.log(np.maximum(x, 1e-12))\n"
        )
        assert "log-guard" not in _rule_ids(findings)

    def test_unguarded_division_fires(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    return a / b\n"
        )
        assert "div-guard" in _rule_ids(findings)

    def test_branch_guarded_division_not_flagged(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    if b > 0:\n"
            "        return a / b\n"
            "    return 0.0\n"
        )
        assert "div-guard" not in _rule_ids(findings)

    def test_float32_downcast_fires(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def f(x):\n"
            "    return x.astype(np.float32)\n"
        )
        assert "float32-cast" in _rule_ids(findings)

    def test_unfilled_empty_fires(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def f(n):\n"
            "    out = np.empty(n)\n"
            "    return out\n"
        )
        assert "empty-fill" in _rule_ids(findings)

    def test_subscript_filled_empty_not_flagged(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def f(n, vals):\n"
            "    out = np.empty(n)\n"
            "    out[:] = vals\n"
            "    return out\n"
        )
        assert "empty-fill" not in _rule_ids(findings)


class TestAliasingRule:
    def test_unregistered_inplace_mutation_fires(self):
        findings = _lint_src(
            "def clobber(x):\n"
            "    x.sort()\n"
            "    return x\n"
        )
        assert "inplace-alias" in _rule_ids(findings)

    def test_registered_mutator_not_flagged(self):
        findings = _lint_src(
            "from repro.analysis.registry import inplace_mutator\n"
            "@inplace_mutator\n"
            "def clobber(x):\n"
            "    x.sort()\n"
            "    return x\n"
        )
        assert "inplace-alias" not in _rule_ids(findings)

    def test_mutating_a_local_copy_not_flagged(self):
        findings = _lint_src(
            "def f(x):\n"
            "    y = x.copy()\n"
            "    y.sort()\n"
            "    return y\n"
        )
        assert "inplace-alias" not in _rule_ids(findings)


class TestParallelRules:
    def test_lambda_to_parallel_map_fires(self):
        findings = _lint_src(
            "from repro.utils import parallel_map\n"
            "def f(items):\n"
            "    return parallel_map(lambda x: x + 1, items)\n"
        )
        assert "parallel-callable" in _rule_ids(findings)

    def test_module_level_worker_not_flagged(self):
        findings = _lint_src(
            "from repro.utils import parallel_map\n"
            "def _score_one(x):\n"
            "    return x + 1\n"
            "def f(items):\n"
            "    return parallel_map(_score_one, items)\n"
        )
        assert "parallel-callable" not in _rule_ids(findings)

    def test_chunk_worker_touching_global_state_fires(self):
        findings = _lint_src(
            "def _score_chunk(items):\n"
            "    global CACHE\n"
            "    CACHE = items\n"
            "    return items\n"
        )
        assert "parallel-chunk-state" in _rule_ids(findings)


class TestKernelContractRules:
    def test_kernel_without_oracle_fires(self):
        findings = _lint_src(
            "from repro.analysis.registry import batched_kernel\n"
            "@batched_kernel\n"
            "def fast_thing(x):\n"
            "    return x\n"
        )
        assert "kernel-oracle" in _rule_ids(findings)

    def test_kernel_with_unmarked_oracle_fires(self):
        findings = _lint_src(
            "from repro.analysis.registry import batched_kernel\n"
            "@batched_kernel(oracle=\"slow_thing\")\n"
            "def fast_thing(x):\n"
            "    return x\n"
        )
        assert "kernel-oracle" in _rule_ids(findings)

    def test_kernel_without_parity_test_fires(self):
        source = (
            "from repro.analysis.registry import batched_kernel, kernel_oracle\n"
            "@kernel_oracle\n"
            "def slow_thing(x):\n"
            "    return x\n"
            "@batched_kernel(oracle=\"slow_thing\")\n"
            "def fast_thing(x):\n"
            "    return x\n"
        )
        findings = _lint_src(source, tests=[])
        assert "kernel-parity" in _rule_ids(findings)

    def test_parity_test_co_occurrence_clears_the_finding(self):
        source = (
            "from repro.analysis.registry import batched_kernel, kernel_oracle\n"
            "@kernel_oracle\n"
            "def slow_thing(x):\n"
            "    return x\n"
            "@batched_kernel(oracle=\"slow_thing\")\n"
            "def fast_thing(x):\n"
            "    return x\n"
        )
        parity_test = (
            "def test_parity():\n"
            "    assert fast_thing(3) == slow_thing(3)\n"
        )
        findings = _lint_src(source, tests=[parity_test])
        assert "kernel-parity" not in _rule_ids(findings)

    def test_batchable_operator_outside_the_sweep_fires(self):
        findings = _lint_src(
            "class ShinyNewOp:\n"
            "    name = \"shiny\"\n"
            "    batchable = True\n"
        )
        assert "batchable-parity" in _rule_ids(findings)


class TestRobustnessRules:
    def test_bare_except_fires(self):
        findings = _lint_src(
            "def f(x):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except:\n"
            "        return 0\n"
        )
        assert "except-swallow" in _rule_ids(findings)

    def test_broad_except_with_inert_body_fires(self):
        findings = _lint_src(
            "def f(x):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert "except-swallow" in _rule_ids(findings)

    def test_broad_except_in_tuple_with_pass_fires(self):
        findings = _lint_src(
            "def f(x):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except (ValueError, Exception):\n"
            "        pass\n"
        )
        assert "except-swallow" in _rule_ids(findings)

    def test_broad_except_doing_real_work_not_flagged(self):
        findings = _lint_src(
            "def f(x, report):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except Exception as exc:\n"
            "        report.append(repr(exc))\n"
            "        return 0\n"
        )
        assert "except-swallow" not in _rule_ids(findings)

    def test_narrow_except_with_pass_not_flagged(self):
        findings = _lint_src(
            "def f(x):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except ValueError:\n"
            "        pass\n"
            "    return 0\n"
        )
        assert "except-swallow" not in _rule_ids(findings)

    def test_suppression_silences_except_swallow(self):
        findings = _lint_src(
            "def f(x):\n"
            "    try:\n"
            "        return x + 1\n"
            "    except Exception:  # repro: ignore[except-swallow] best effort\n"
            "        pass\n"
        )
        assert "except-swallow" not in _rule_ids(findings)


class TestWallClockDeadlineRule:
    def test_wallclock_deadline_arithmetic_fires(self):
        findings = _lint_src(
            "import time\n"
            "def serve(budget):\n"
            "    deadline = time.time() + budget\n"
            "    return deadline\n"
        )
        assert "wallclock-deadline" in _rule_ids(findings)

    def test_wallclock_timeout_compare_fires(self):
        findings = _lint_src(
            "import time\n"
            "def poll(timeout_at):\n"
            "    while time.time() < timeout_at:\n"
            "        pass\n"
        )
        assert "wallclock-deadline" in _rule_ids(findings)

    def test_bare_time_import_fires_in_deadline_scope(self):
        findings = _lint_src(
            "from time import time\n"
            "def check_deadline(limit):\n"
            "    return time() > limit\n"
        )
        assert "wallclock-deadline" in _rule_ids(findings)

    def test_benign_timestamp_not_flagged(self):
        # wall-clock is fine for logging/telemetry timestamps
        findings = _lint_src(
            "import time\n"
            "def stamp(record):\n"
            "    record.created_at = time.time()\n"
            "    return record\n"
        )
        assert "wallclock-deadline" not in _rule_ids(findings)

    def test_monotonic_deadline_not_flagged(self):
        findings = _lint_src(
            "import time\n"
            "def serve(budget):\n"
            "    deadline = time.monotonic() + budget\n"
            "    return deadline\n"
        )
        assert "wallclock-deadline" not in _rule_ids(findings)

    def test_suppression_silences_wallclock_deadline(self):
        findings = _lint_src(
            "import time\n"
            "def serve(budget):\n"
            "    deadline = time.time() + budget  # repro: ignore[wallclock-deadline] epoch contract\n"
            "    return deadline\n"
        )
        assert "wallclock-deadline" not in _rule_ids(findings)


class TestRuleRegistryCompleteness:
    """Every LintRule subclass shipped in a rules_* module is registered.

    A rule that exists but is missing from ``default_rules`` silently
    never runs — neither in the CLI nor in the tier-1 gate above.
    """

    def test_every_shipped_rule_is_in_default_rules(self):
        import importlib
        import pkgutil

        from repro import analysis
        from repro.analysis.linter import LintRule, default_rules

        registered = {type(rule) for rule in default_rules()}
        missing = []
        for info in pkgutil.iter_modules(analysis.__path__):
            if not info.name.startswith("rules_"):
                continue
            mod = importlib.import_module(f"repro.analysis.{info.name}")
            for name, obj in sorted(vars(mod).items()):
                if (
                    inspect.isclass(obj)
                    and issubclass(obj, LintRule)
                    and obj is not LintRule
                    and obj.__module__ == mod.__name__
                    and obj.rule_id
                ):
                    if obj not in registered:
                        missing.append(f"{mod.__name__}.{name}")
        assert missing == [], f"rules not registered in default_rules(): {missing}"

    def test_rule_ids_are_unique(self):
        from repro.analysis.linter import default_rules

        ids = [rule.rule_id for rule in default_rules()]
        assert len(ids) == len(set(ids))


class TestSuppressions:
    def test_inline_suppression_silences_the_rule(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    return a / b  # repro: ignore[div-guard] b is validated upstream\n"
        )
        assert "div-guard" not in _rule_ids(findings)

    def test_suppression_is_rule_specific(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    return a / b  # repro: ignore[float-eq] wrong rule\n"
        )
        assert "div-guard" in _rule_ids(findings)

    def test_wildcard_suppression_silences_everything(self):
        findings = _lint_src(
            "def f(a, b):\n"
            "    return a / b  # repro: ignore[*] audited by hand\n"
        )
        assert findings == []


class TestRegistryCompleteness:
    """Satellite: every public kernel-module function carries a contract.

    (``register_operator`` duplicate rejection — the other registry
    satellite — already ships in the seed; see test_operators_base.py.)
    """

    CONTRACT_ATTRS = ("__kernel_contract__", "__kernel_oracle__", "__kernel_exempt__")

    @staticmethod
    def _public_functions(mod):
        for name, obj in sorted(vars(mod).items()):
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) and obj.__module__ == mod.__name__:
                yield name, obj

    def _modules(self):
        from repro.boosting import histogram
        from repro.core import redundancy
        from repro.metrics import batched

        return (batched, redundancy, histogram)

    def test_every_public_function_is_kernel_oracle_or_exempt(self):
        missing = []
        for mod in self._modules():
            for name, fn in self._public_functions(mod):
                if not any(hasattr(fn, a) for a in self.CONTRACT_ATTRS):
                    missing.append(f"{mod.__name__}.{name}")
        assert missing == [], (
            "public kernel-module functions without a declared contract "
            f"(@batched_kernel / @kernel_oracle / @kernel_exempt): {missing}"
        )

    def test_exemptions_carry_reasons(self):
        from repro.analysis.registry import EXEMPT_REGISTRY

        assert EXEMPT_REGISTRY, "expected at least one explicit exemption"
        for qualname, reason in EXEMPT_REGISTRY.items():
            assert reason.strip(), f"{qualname} exempted without a reason"

    def test_declared_kernels_point_at_marked_oracles(self):
        from repro.analysis.registry import KERNEL_REGISTRY, ORACLE_REGISTRY

        oracle_names = {c.func_name for c in ORACLE_REGISTRY.values()}
        for contract in KERNEL_REGISTRY.values():
            assert contract.oracle in oracle_names, (
                f"kernel {contract.name} declares oracle {contract.oracle!r} "
                "which is not marked @kernel_oracle"
            )


class TestFullMatrixInChunkLoopRule:
    """Streaming-contract rule: mergeable kernels and iter_chunks loops."""

    KERNEL_PREAMBLE = (
        "import numpy as np\n"
        "from repro.analysis.registry import chunk_mergeable\n"
        "def merge(a, b):\n"
        "    return a + b\n"
    )

    def test_order_statistic_in_mergeable_kernel_fires(self):
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=True)\n"
            "def bad_partial(chunk):\n"
            "    return np.median(chunk, axis=0)\n"
        )
        assert "full-matrix-in-chunk-loop" in _rule_ids(findings)

    def test_sort_in_mergeable_kernel_fires(self):
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=True)\n"
            "def bad_partial(chunk):\n"
            "    return np.sort(chunk, axis=0)[0]\n"
        )
        assert "full-matrix-in-chunk-loop" in _rule_ids(findings)

    def test_no_axis_reduction_on_chunk_parameter_fires(self):
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=False)\n"
            "def bad_partial(chunk):\n"
            "    return chunk.sum()\n"
        )
        assert "full-matrix-in-chunk-loop" in _rule_ids(findings)

    def test_axis_reduction_on_chunk_parameter_is_clean(self):
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=False)\n"
            "def good_partial(chunk):\n"
            "    return chunk.sum(axis=0)\n"
        )
        assert "full-matrix-in-chunk-loop" not in _rule_ids(findings)

    def test_parameter_subscript_copy_fires(self):
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=True)\n"
            "def bad_partial(chunk, mask):\n"
            "    return chunk[mask].copy()\n"
        )
        assert "full-matrix-in-chunk-loop" in _rule_ids(findings)

    def test_local_variable_calls_are_clean(self):
        # The shapes iv_bin_counts legitimately uses: whole-array `.all()`
        # on a locally derived mask and `.ravel()` on a local buffer.
        findings = _lint_src(
            self.KERNEL_PREAMBLE
            + "@chunk_mergeable(merge=merge, exact=True)\n"
            "def good_partial(chunk):\n"
            "    col_finite = np.isfinite(chunk)\n"
            "    if col_finite.all():\n"
            "        pass\n"
            "    flat = chunk + 0\n"
            "    return flat.ravel()\n"
        )
        assert "full-matrix-in-chunk-loop" not in _rule_ids(findings)

    def test_undecorated_function_is_out_of_scope(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def batch_quantiles(X):\n"
            "    return np.quantile(X, 0.5, axis=0)\n"
        )
        assert "full-matrix-in-chunk-loop" not in _rule_ids(findings)

    def test_concatenate_in_iter_chunks_loop_fires(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def gather(data):\n"
            "    parts = np.zeros((0, 3))\n"
            "    for rows, X_chunk, y_chunk in data.iter_chunks():\n"
            "        parts = np.concatenate([parts, X_chunk])\n"
            "    return parts\n"
        )
        assert "full-matrix-in-chunk-loop" in _rule_ids(findings)

    def test_concatenate_outside_chunk_loop_is_clean(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def stack_two(a, b):\n"
            "    for i in range(3):\n"
            "        a = a + i\n"
            "    return np.concatenate([a, b])\n"
        )
        assert "full-matrix-in-chunk-loop" not in _rule_ids(findings)

    def test_suppression_comment_silences(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def gather(data):\n"
            "    parts = np.zeros((0, 3))\n"
            "    for rows, X_chunk, y_chunk in data.iter_chunks():\n"
            "        parts = np.concatenate([parts, X_chunk])  # repro: ignore[full-matrix-in-chunk-loop] test helper gathers on purpose\n"
            "    return parts\n"
        )
        assert "full-matrix-in-chunk-loop" not in _rule_ids(findings)

    def test_rule_is_registered_in_default_rules(self):
        from repro.analysis.linter import default_rules

        assert "full-matrix-in-chunk-loop" in {
            r.rule_id for r in default_rules()
        }


class TestArtifactWriteRule:
    def test_direct_np_save_fires(self):
        findings = _lint_src(
            "import numpy as np\n"
            "def export(plan, path):\n"
            "    np.save(path, plan)\n"
        )
        assert "non-atomic-artifact-write" in _rule_ids(findings)

    def test_open_with_write_mode_fires(self):
        findings = _lint_src(
            "def dump(report, path):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(report)\n"
        )
        assert "non-atomic-artifact-write" in _rule_ids(findings)

    def test_path_write_text_fires(self):
        findings = _lint_src(
            "def publish(path, payload):\n"
            "    path.write_text(payload)\n"
        )
        assert "non-atomic-artifact-write" in _rule_ids(findings)

    def test_open_for_reading_is_clean(self):
        findings = _lint_src(
            "def load(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert "non-atomic-artifact-write" not in _rule_ids(findings)

    def test_atomic_helper_in_scope_exempts(self):
        findings = _lint_src(
            "from repro.utils import atomic_path\n"
            "import numpy as np\n"
            "def export(plan, path):\n"
            "    with atomic_path(path) as tmp:\n"
            "        np.save(tmp, plan)\n"
        )
        assert "non-atomic-artifact-write" not in _rule_ids(findings)

    def test_os_replace_in_scope_exempts(self):
        findings = _lint_src(
            "import os\n"
            "def export(report, path):\n"
            "    tmp = str(path) + '.tmp'\n"
            "    with open(tmp, 'w') as fh:\n"
            "        fh.write(report)\n"
            "    os.replace(tmp, path)\n"
        )
        assert "non-atomic-artifact-write" not in _rule_ids(findings)

    def test_nested_function_scope_is_independent(self):
        # the outer function's os.replace must NOT launder a raw write
        # inside a nested function, which has its own publication duty
        findings = _lint_src(
            "import os\n"
            "def outer(path):\n"
            "    def inner(p):\n"
            "        with open(p, 'w') as fh:\n"
            "            fh.write('x')\n"
            "    os.replace('a', 'b')\n"
            "    return inner\n"
        )
        assert "non-atomic-artifact-write" in _rule_ids(findings)

    def test_suppression_comment_silences(self):
        findings = _lint_src(
            "def append_log(path, line):\n"
            "    with open(path, 'a') as fh:  # repro: ignore[non-atomic-artifact-write] append-only log\n"
            "        fh.write(line)\n"
        )
        assert "non-atomic-artifact-write" not in _rule_ids(findings)

    def test_rule_is_registered_in_default_rules(self):
        from repro.analysis.linter import default_rules

        assert "non-atomic-artifact-write" in {
            r.rule_id for r in default_rules()
        }
