"""Tests for the classifier registry (Table III's nine CLF names)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import roc_auc_score
from repro.models import (
    PAPER_CLASSIFIERS,
    available_classifiers,
    make_classifier,
)


class TestRegistry:
    def test_paper_lists_nine(self):
        assert len(PAPER_CLASSIFIERS) == 9
        assert available_classifiers() == list(PAPER_CLASSIFIERS)

    def test_all_names_construct(self):
        for name in PAPER_CLASSIFIERS:
            assert make_classifier(name) is not None

    def test_long_names_and_case(self):
        assert type(make_classifier("ADABOOST")).__name__ == "AdaBoostClassifier"
        assert type(make_classifier("random_forest")).__name__ == "RandomForestClassifier"
        assert type(make_classifier("XGBoost")).__name__ == "XGBClassifier"

    def test_kwargs_forwarded(self):
        clf = make_classifier("rf", n_estimators=3)
        assert clf.n_estimators == 3

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            make_classifier("catboost")

    def test_fresh_instance_each_call(self):
        assert make_classifier("lr") is not make_classifier("lr")


@pytest.mark.slow
class TestAllClassifiersEndToEnd:
    """Every registry entry must fit/predict and beat chance on easy data."""

    @pytest.mark.parametrize("name", PAPER_CLASSIFIERS)
    def test_fit_predict_auc(self, name, rng):
        X = rng.normal(size=(600, 5))
        y = ((X[:, 0] + X[:, 1]) > 0).astype(float)
        kwargs = {}
        if name in ("rf", "et"):
            kwargs = {"n_estimators": 8, "max_depth": 6}
        elif name == "ab":
            kwargs = {"n_estimators": 10}
        elif name == "xgb":
            kwargs = {"n_estimators": 10}
        elif name == "mlp":
            kwargs = {"max_epochs": 10}
        clf = make_classifier(name, **kwargs)
        clf.fit(X[:400], y[:400])
        proba = clf.predict_proba(X[400:])
        assert proba.shape == (200, 2)
        auc = roc_auc_score(y[400:], proba[:, 1])
        assert auc > 0.75, f"{name} AUC {auc:.3f} too low"
        preds = clf.predict(X[400:])
        assert set(np.unique(preds)) <= {0.0, 1.0}
