"""Tests for repro.tabular.dataset.Dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, SchemaError
from repro.tabular import Dataset, default_names


class TestConstruction:
    def test_from_arrays_default_names(self):
        ds = Dataset.from_arrays(np.ones((3, 4)))
        assert ds.names == ("x0", "x1", "x2", "x3")
        assert ds.shape == (3, 4)
        assert ds.y is None

    def test_from_arrays_with_labels(self):
        ds = Dataset.from_arrays(np.ones((3, 2)), y=[0, 1, 0])
        assert ds.y is not None
        assert ds.y.tolist() == [0.0, 1.0, 0.0]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Dataset(X=np.ones((2, 2)), names=("a", "a"))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Dataset(X=np.ones((2, 3)), names=("a", "b"))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset(X=np.ones((3, 2)), names=("a", "b"), y=np.zeros(2))

    def test_default_names_prefix(self):
        assert default_names(3, prefix="f") == ("f0", "f1", "f2")


class TestAccess:
    @pytest.fixture
    def ds(self):
        X = np.arange(12, dtype=float).reshape(4, 3)
        return Dataset(X=X, names=("a", "b", "c"), y=np.array([0, 1, 0, 1.0]))

    def test_column_by_name(self, ds):
        assert ds.column("b").tolist() == [1.0, 4.0, 7.0, 10.0]

    def test_column_by_index(self, ds):
        assert ds.column(0).tolist() == [0.0, 3.0, 6.0, 9.0]

    def test_column_unknown_name(self, ds):
        with pytest.raises(SchemaError):
            ds.column("zzz")

    def test_column_out_of_range(self, ds):
        with pytest.raises(SchemaError):
            ds.column(7)

    def test_columns_matrix(self, ds):
        block = ds.columns(["c", "a"])
        assert block.shape == (4, 2)
        assert block[0].tolist() == [2.0, 0.0]

    def test_select_preserves_labels(self, ds):
        sub = ds.select(["c"])
        assert sub.names == ("c",)
        assert sub.y is not None

    def test_contains_and_iter(self, ds):
        assert "a" in ds
        assert "zzz" not in ds
        assert list(ds) == ["a", "b", "c"]

    def test_index_of(self, ds):
        assert ds.index_of("c") == 2

    def test_len_is_rows(self, ds):
        assert len(ds) == 4

    def test_head(self, ds):
        assert ds.head(2).n_rows == 2
        assert ds.head(100).n_rows == 4


class TestRowOps:
    @pytest.fixture
    def ds(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        y = np.arange(10) % 2
        return Dataset(X=X, names=("a", "b"), y=y.astype(float))

    def test_take_rows_mask(self, ds):
        sub = ds.take_rows(ds.y == 1)
        assert sub.n_rows == 5
        assert (sub.y == 1).all()

    def test_take_rows_indices(self, ds):
        sub = ds.take_rows(np.array([0, 9]))
        assert sub.X[1, 0] == 18.0

    def test_sample_without_replacement(self, ds):
        sub = ds.sample(5, random_state=0)
        assert sub.n_rows == 5

    def test_sample_too_many_raises(self, ds):
        with pytest.raises(DataError):
            ds.sample(11, random_state=0)

    def test_sample_with_replacement_allows_more(self, ds):
        sub = ds.sample(20, random_state=0, replace=True)
        assert sub.n_rows == 20


class TestCombination:
    def test_with_columns(self):
        ds = Dataset.from_arrays(np.ones((3, 2)), y=[0, 1, 1])
        out = ds.with_columns(np.zeros((3, 1)), ["new"])
        assert out.names == ("x0", "x1", "new")
        assert out.y is not None
        assert out.n_cols == 3

    def test_with_columns_name_clash(self):
        ds = Dataset.from_arrays(np.ones((3, 2)))
        with pytest.raises(SchemaError):
            ds.with_columns(np.zeros((3, 1)), ["x0"])

    def test_with_columns_row_mismatch(self):
        ds = Dataset.from_arrays(np.ones((3, 2)))
        with pytest.raises(DataError):
            ds.with_columns(np.zeros((4, 1)), ["new"])

    def test_with_labels_and_without(self):
        ds = Dataset.from_arrays(np.ones((3, 2)))
        labeled = ds.with_labels([1, 0, 1])
        assert labeled.y is not None
        assert labeled.without_labels().y is None

    def test_require_labels_raises_when_missing(self):
        ds = Dataset.from_arrays(np.ones((3, 2)))
        with pytest.raises(DataError):
            ds.require_labels()


class TestDescribe:
    def test_describe_handles_nan(self):
        X = np.array([[1.0, np.nan], [3.0, np.nan], [5.0, np.nan]])
        ds = Dataset(X=X, names=("a", "b"))
        desc = ds.describe()
        assert desc["a"]["mean"] == pytest.approx(3.0)
        assert desc["b"]["missing_rate"] == pytest.approx(1.0)
