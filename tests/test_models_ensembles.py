"""Tests for RandomForest, ExtraTrees and AdaBoost."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import roc_auc_score
from repro.models import (
    AdaBoostClassifier,
    ExtraTreesClassifier,
    RandomForestClassifier,
)


@pytest.fixture
def moons_like(rng):
    X = rng.normal(size=(1000, 5))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 1.5).astype(float)
    return X, y


class TestRandomForest:
    def test_beats_chance_on_nonlinear(self, moons_like):
        X, y = moons_like
        rf = RandomForestClassifier(n_estimators=15, max_depth=8, random_state=0)
        rf.fit(X[:700], y[:700])
        auc = roc_auc_score(y[700:], rf.predict_proba(X[700:])[:, 1])
        assert auc > 0.85

    def test_deterministic_with_seed(self, moons_like):
        X, y = moons_like
        a = RandomForestClassifier(n_estimators=5, random_state=2).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=2).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_n_estimators_validated(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(n_estimators=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_proba(np.ones((2, 2)))

    def test_importances_normalized(self, moons_like):
        X, y = moons_like
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        imp = rf.feature_importances_
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)
        # The two circle-defining features dominate the three noise ones.
        assert imp[0] + imp[1] > 0.5

    def test_predict_thresholds_proba(self, moons_like):
        X, y = moons_like
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        proba = rf.predict_proba(X[:20])[:, 1]
        assert np.array_equal(rf.predict(X[:20]), (proba >= 0.5).astype(float))


class TestExtraTrees:
    def test_learns(self, moons_like):
        X, y = moons_like
        et = ExtraTreesClassifier(n_estimators=15, max_depth=8, random_state=0)
        et.fit(X[:700], y[:700])
        auc = roc_auc_score(y[700:], et.predict_proba(X[700:])[:, 1])
        assert auc > 0.8

    def test_no_bootstrap_by_default(self):
        assert ExtraTreesClassifier().bootstrap is False
        assert ExtraTreesClassifier().splitter == "random"

    def test_differs_from_rf_predictions(self, moons_like):
        X, y = moons_like
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        et = ExtraTreesClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert not np.allclose(rf.predict_proba(X), et.predict_proba(X))


class TestAdaBoost:
    def test_boosting_improves_over_single_stump(self, rng):
        X = rng.normal(size=(1500, 4))
        y = ((X[:, 0] + X[:, 1]) > 0).astype(float)  # needs >1 stump
        one = AdaBoostClassifier(n_estimators=1, random_state=0).fit(X[:1000], y[:1000])
        many = AdaBoostClassifier(n_estimators=30, random_state=0).fit(X[:1000], y[:1000])
        auc_one = roc_auc_score(y[1000:], one.predict_proba(X[1000:])[:, 1])
        auc_many = roc_auc_score(y[1000:], many.predict_proba(X[1000:])[:, 1])
        assert auc_many > auc_one + 0.02

    def test_proba_range(self, rng):
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(float)
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_early_stop_on_perfect_stump(self):
        # A perfectly separable 1-D problem: the weight update degenerates
        # and the loop must bail out instead of dividing by ~zero.
        X = np.linspace(-1, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0).astype(float)
        model = AdaBoostClassifier(n_estimators=50, random_state=0).fit(X, y)
        assert len(model.estimators_) >= 1
        assert (model.predict(X) == y).mean() > 0.99

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ConfigurationError):
            AdaBoostClassifier(learning_rate=0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            AdaBoostClassifier().decision_function(np.ones((2, 2)))
