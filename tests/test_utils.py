"""Tests for repro.utils helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.utils import (
    Timer,
    as_float_matrix,
    as_label_vector,
    check_random_state,
    sigmoid,
    softmax,
)


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = check_random_state(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_raises(self):
        with pytest.raises(DataError):
            check_random_state("not-a-seed")


class TestAsFloatMatrix:
    def test_list_of_lists(self):
        out = as_float_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_1d_promoted_to_column(self):
        out = as_float_matrix([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(DataError):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_empty_rows_rejected(self):
        with pytest.raises(DataError):
            as_float_matrix(np.zeros((0, 3)))

    def test_empty_cols_rejected(self):
        with pytest.raises(DataError):
            as_float_matrix(np.zeros((3, 0)))

    def test_contiguous_output(self):
        out = as_float_matrix(np.asfortranarray(np.ones((4, 3))))
        assert out.flags["C_CONTIGUOUS"]


class TestAsLabelVector:
    def test_binary_ok(self):
        y = as_label_vector([0, 1, 1, 0])
        assert y.tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_wrong_length_raises(self):
        with pytest.raises(DataError):
            as_label_vector([0, 1], n_rows=3)

    def test_nonbinary_raises(self):
        with pytest.raises(DataError):
            as_label_vector([0, 1, 2])

    def test_empty_raises(self):
        with pytest.raises(DataError):
            as_label_vector([])


class TestSigmoid:
    def test_extreme_negative_does_not_overflow(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        z = np.random.default_rng(0).normal(size=(4, 3)) * 100
        out = softmax(z, axis=1)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert np.isfinite(out).all()


class TestTimer:
    def test_elapsed_nonnegative_and_monotone(self):
        t = Timer()
        a = t.elapsed()
        b = t.elapsed()
        assert 0 <= a <= b

    def test_restart_resets(self):
        t = Timer()
        first = t.restart()
        assert first >= 0
        assert t.elapsed() <= first + 1.0
