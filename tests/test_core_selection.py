"""Tests for the three-stage feature selection (§IV-C)."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import (
    filter_by_information_value,
    rank_by_importance,
    remove_redundant_features,
    remove_redundant_features_blocked,
    select_features,
)
from repro.exceptions import DataError
from repro.metrics import pearson_matrix


def full_matrix_reference_kept(X: np.ndarray, ivs: np.ndarray, theta: float) -> np.ndarray:
    """The pre-blocked Algorithm 4 greedy: full k x k matrix, then scan.

    Kept as the audited oracle for the blocked incremental kernel — a
    faithful copy of the seed implementation (``benchmarks/run_perf.py``
    carries an intentionally independent twin for the perf gate).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.shape[1] == 0:
        return np.empty(0, dtype=np.int64)
    corr = np.abs(pearson_matrix(X))
    order = np.lexsort((np.arange(ivs.size), -ivs))
    kept: list[int] = []
    for j in order:
        if not kept or corr[j, kept].max() <= theta:
            kept.append(int(j))
    kept.sort()
    return np.asarray(kept, dtype=np.int64)


class TestIVFilter:
    def test_drops_noise_keeps_signal(self, rng):
        X = rng.normal(size=(3000, 4))
        y = (X[:, 1] > 0).astype(float)
        kept, ivs = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert 1 in kept
        assert ivs[1] > 0.5
        # Pure-noise columns should be gone.
        assert all(ivs[k] > 0.1 for k in kept)

    def test_never_returns_empty(self, rng):
        X = rng.normal(size=(500, 3))
        y = rng.integers(0, 2, size=500).astype(float)  # nothing informative
        kept, __ = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert kept.size >= 1

    def test_min_keep_honoured(self, rng):
        X = rng.normal(size=(500, 5))
        y = rng.integers(0, 2, size=500).astype(float)
        kept, __ = filter_by_information_value(X, y, alpha=10.0, n_bins=10, min_keep=3)
        assert kept.size == 3

    def test_constant_column_scores_zero(self, rng):
        X = np.column_stack([np.full(400, 7.0), rng.normal(size=400)])
        y = (X[:, 1] > 0).astype(float)
        kept, ivs = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert ivs[0] == 0.0
        assert 0 not in kept

    def test_rejects_empty_matrix(self):
        with pytest.raises(DataError):
            filter_by_information_value(np.ones((3, 0)), np.ones(3), 0.1, 10)


class TestRedundancyRemoval:
    def test_keeps_higher_iv_of_correlated_pair(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, 2 * x + 0.001 * rng.normal(size=500)])
        ivs = np.array([0.5, 0.3])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [0]

    def test_lower_iv_wins_when_higher(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, 2 * x])
        ivs = np.array([0.3, 0.5])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [1]

    def test_uncorrelated_features_all_kept(self, rng):
        X = rng.normal(size=(500, 4))
        ivs = np.array([0.4, 0.3, 0.2, 0.1])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [0, 1, 2, 3]

    def test_negative_correlation_counts(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, -x])
        kept = remove_redundant_features(X, np.array([0.5, 0.4]), theta=0.8)
        assert kept.tolist() == [0]

    def test_chain_of_correlation(self, rng):
        # a ~ b ~ c all mutually correlated: only the best survives.
        x = rng.normal(size=500)
        X = np.column_stack([x, x + 0.01 * rng.normal(size=500),
                             x - 0.01 * rng.normal(size=500)])
        kept = remove_redundant_features(X, np.array([0.2, 0.9, 0.5]), theta=0.8)
        assert kept.tolist() == [1]

    def test_empty_matrix(self):
        kept = remove_redundant_features(np.empty((5, 0)), np.empty(0), 0.8)
        assert kept.size == 0

    def test_iv_length_mismatch(self, rng):
        with pytest.raises(DataError):
            remove_redundant_features(rng.normal(size=(10, 3)), np.ones(2), 0.8)


class TestBlockedRedundancyEquivalence:
    """The blocked incremental kernel must return *identical* kept indices
    to the full-matrix greedy on every input class the pipeline can
    produce — including the pathological ones."""

    def _assert_equivalent(self, X, ivs, theta, block_sizes=(1, 3, 7, 64)):
        ref = full_matrix_reference_kept(X, ivs, theta)
        for bs in block_sizes:
            got = remove_redundant_features_blocked(X, ivs, theta, block_size=bs)
            assert got.tolist() == ref.tolist(), f"block_size={bs}"
        assert remove_redundant_features(X, ivs, theta).tolist() == ref.tolist()

    def test_randomized_correlated_pools(self, rng):
        for trial in range(15):
            n = int(rng.integers(20, 80))
            k = int(rng.integers(2, 40))
            n_groups = max(1, k // 3)
            factors = rng.normal(size=(n, n_groups))
            X = factors[:, rng.integers(0, n_groups, size=k)]
            X = X + rng.uniform(0.05, 1.5) * rng.normal(size=(n, k))
            ivs = rng.uniform(0, 1, size=k)
            self._assert_equivalent(X, ivs, float(rng.uniform(0.1, 0.95)))

    def test_nan_and_inf_columns(self, rng):
        X = rng.normal(size=(60, 8))
        X[3, 1] = np.nan
        X[:, 4] = X[:, 0]
        X[7, 5] = np.inf
        X[9, 6] = -np.inf
        ivs = rng.uniform(0, 1, size=8)
        # Exercise both orders: NaN column visited first and last.
        for nan_iv in (2.0, -1.0):
            ivs[1] = nan_iv
            self._assert_equivalent(X, ivs, 0.8)

    def test_constant_and_near_constant_columns(self, rng):
        X = rng.normal(size=(50, 7))
        X[:, 2] = 3.25  # exactly constant
        X[:, 5] = 1e8 + 1e-7 * rng.normal(size=50)  # noise-floor constant
        X[:, 6] = 2.0 * X[:, 1]  # redundant duplicate
        ivs = rng.uniform(0, 1, size=7)
        # Constant visited first, middle, and after a NaN keeper.
        for const_iv in (2.0, 0.5, -1.0):
            ivs[2] = const_iv
            self._assert_equivalent(X, ivs, 0.8)

    def test_constant_against_nan_keeper(self, rng):
        # The corner the post-product zeroing creates: the kept set holds a
        # NaN column (kept because it was visited first), and a constant
        # column is visited later — the full path keeps it (its corr row is
        # zeroed), so the blocked path must too.
        X = rng.normal(size=(40, 4))
        X[5, 0] = np.nan
        X[:, 2] = 7.0
        ivs = np.array([3.0, 1.0, 0.5, 0.2])
        self._assert_equivalent(X, ivs, 0.8)

    def test_duplicate_columns_and_iv_ties(self, rng):
        x = rng.normal(size=70)
        X = np.column_stack([x, x, -x, rng.normal(size=70), x * 2])
        ivs = np.array([0.5, 0.5, 0.5, 0.5, 0.2])  # ties break by index
        self._assert_equivalent(X, ivs, 0.8)

    def test_theta_extremes(self, rng):
        X = rng.normal(size=(40, 6))
        ivs = rng.uniform(0, 1, size=6)
        for theta in (0.0, 1.0):
            self._assert_equivalent(X, ivs, theta)

    def test_columns_subset_matches_gathered_submatrix(self, rng):
        X = rng.normal(size=(50, 12))
        X[:, 7] = X[:, 1] * 3
        ivs_all = rng.uniform(0, 1, size=12)
        cols = np.array([1, 3, 4, 7, 10], dtype=np.int64)
        ref = cols[full_matrix_reference_kept(X[:, cols], ivs_all[cols], 0.8)]
        got = remove_redundant_features_blocked(
            X, ivs_all[cols], 0.8, columns=cols, block_size=2
        )
        assert got.tolist() == ref.tolist()

    def test_kernel_validates_input(self, rng):
        with pytest.raises(DataError):
            remove_redundant_features_blocked(rng.normal(size=(10, 3)), np.ones(2), 0.8)
        with pytest.raises(DataError):
            remove_redundant_features_blocked(
                rng.normal(size=(10, 3)), np.ones(3), 0.8, block_size=0
            )

    def test_empty_columns(self):
        out = remove_redundant_features_blocked(
            np.empty((5, 0)), np.empty(0), 0.8
        )
        assert out.size == 0

    def test_peak_memory_stays_subquadratic(self, rng):
        """A wide pool whose full correlation matrix (k^2 floats = 128 MB,
        before pearson_matrix's centered/normalized twins) would dwarf the
        blocked path's O((block + kept) * n) working set."""
        n, k = 64, 4000
        X = rng.normal(size=(n, k))
        ivs = rng.uniform(0.1, 1.0, size=k)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            kept = remove_redundant_features(X, ivs, theta=0.8)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert kept.size > 0
        # Kept panel (<= 64 * 4000 * 8 = 2 MB) + per-block slabs; leave
        # generous slack while staying far below the 128 MB k x k matrix.
        assert peak < 32 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"


class TestImportanceRanking:
    def test_informative_first(self, rng):
        X = rng.normal(size=(2000, 4))
        y = (X[:, 2] > 0).astype(float)
        order = rank_by_importance(
            X, y, None, n_estimators=10, max_depth=3, top_k=None, random_state=0
        )
        assert order[0] == 2

    def test_top_k_truncates(self, rng):
        X = rng.normal(size=(500, 6))
        y = (X[:, 0] > 0).astype(float)
        order = rank_by_importance(
            X, y, None, n_estimators=5, max_depth=3, top_k=2, random_state=0
        )
        assert order.size == 2


class TestFullSelection:
    def test_pipeline_composition(self, rng):
        n = 2000
        signal = rng.normal(size=n)
        X = np.column_stack([
            signal,                                  # informative
            signal * 3 + 0.01 * rng.normal(size=n),  # redundant copy
            rng.normal(size=n),                      # noise
            -signal + 0.5 * rng.normal(size=n),      # weaker informative
        ])
        y = (signal + 0.3 * rng.normal(size=n) > 0).astype(float)
        report = select_features(
            X, y, None,
            alpha=0.1, iv_bins=10, theta=0.8,
            ranking_n_estimators=10, ranking_max_depth=3,
            max_output=4, random_state=0,
        )
        final = set(report.final_order)
        # Noise dropped by IV stage; exactly one of {0, 1} survives Pearson.
        assert 2 not in final
        assert len(final & {0, 1}) == 1
        assert report.n_candidates == 4
        assert set(report.kept_after_redundancy) <= set(report.kept_after_iv)
        assert final <= set(report.kept_after_redundancy)

    def test_max_output_budget(self, rng):
        X = rng.normal(size=(1000, 10))
        y = (X[:, :5].sum(axis=1) > 0).astype(float)
        report = select_features(
            X, y, None,
            alpha=0.0, iv_bins=10, theta=0.99,
            ranking_n_estimators=5, ranking_max_depth=3,
            max_output=3, random_state=0,
        )
        assert len(report.final_order) <= 3
