"""Tests for the three-stage feature selection (§IV-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    filter_by_information_value,
    rank_by_importance,
    remove_redundant_features,
    select_features,
)
from repro.exceptions import DataError


class TestIVFilter:
    def test_drops_noise_keeps_signal(self, rng):
        X = rng.normal(size=(3000, 4))
        y = (X[:, 1] > 0).astype(float)
        kept, ivs = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert 1 in kept
        assert ivs[1] > 0.5
        # Pure-noise columns should be gone.
        assert all(ivs[k] > 0.1 for k in kept)

    def test_never_returns_empty(self, rng):
        X = rng.normal(size=(500, 3))
        y = rng.integers(0, 2, size=500).astype(float)  # nothing informative
        kept, __ = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert kept.size >= 1

    def test_min_keep_honoured(self, rng):
        X = rng.normal(size=(500, 5))
        y = rng.integers(0, 2, size=500).astype(float)
        kept, __ = filter_by_information_value(X, y, alpha=10.0, n_bins=10, min_keep=3)
        assert kept.size == 3

    def test_constant_column_scores_zero(self, rng):
        X = np.column_stack([np.full(400, 7.0), rng.normal(size=400)])
        y = (X[:, 1] > 0).astype(float)
        kept, ivs = filter_by_information_value(X, y, alpha=0.1, n_bins=10)
        assert ivs[0] == 0.0
        assert 0 not in kept

    def test_rejects_empty_matrix(self):
        with pytest.raises(DataError):
            filter_by_information_value(np.ones((3, 0)), np.ones(3), 0.1, 10)


class TestRedundancyRemoval:
    def test_keeps_higher_iv_of_correlated_pair(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, 2 * x + 0.001 * rng.normal(size=500)])
        ivs = np.array([0.5, 0.3])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [0]

    def test_lower_iv_wins_when_higher(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, 2 * x])
        ivs = np.array([0.3, 0.5])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [1]

    def test_uncorrelated_features_all_kept(self, rng):
        X = rng.normal(size=(500, 4))
        ivs = np.array([0.4, 0.3, 0.2, 0.1])
        kept = remove_redundant_features(X, ivs, theta=0.8)
        assert kept.tolist() == [0, 1, 2, 3]

    def test_negative_correlation_counts(self, rng):
        x = rng.normal(size=500)
        X = np.column_stack([x, -x])
        kept = remove_redundant_features(X, np.array([0.5, 0.4]), theta=0.8)
        assert kept.tolist() == [0]

    def test_chain_of_correlation(self, rng):
        # a ~ b ~ c all mutually correlated: only the best survives.
        x = rng.normal(size=500)
        X = np.column_stack([x, x + 0.01 * rng.normal(size=500),
                             x - 0.01 * rng.normal(size=500)])
        kept = remove_redundant_features(X, np.array([0.2, 0.9, 0.5]), theta=0.8)
        assert kept.tolist() == [1]

    def test_empty_matrix(self):
        kept = remove_redundant_features(np.empty((5, 0)), np.empty(0), 0.8)
        assert kept.size == 0

    def test_iv_length_mismatch(self, rng):
        with pytest.raises(DataError):
            remove_redundant_features(rng.normal(size=(10, 3)), np.ones(2), 0.8)


class TestImportanceRanking:
    def test_informative_first(self, rng):
        X = rng.normal(size=(2000, 4))
        y = (X[:, 2] > 0).astype(float)
        order = rank_by_importance(
            X, y, None, n_estimators=10, max_depth=3, top_k=None, random_state=0
        )
        assert order[0] == 2

    def test_top_k_truncates(self, rng):
        X = rng.normal(size=(500, 6))
        y = (X[:, 0] > 0).astype(float)
        order = rank_by_importance(
            X, y, None, n_estimators=5, max_depth=3, top_k=2, random_state=0
        )
        assert order.size == 2


class TestFullSelection:
    def test_pipeline_composition(self, rng):
        n = 2000
        signal = rng.normal(size=n)
        X = np.column_stack([
            signal,                                  # informative
            signal * 3 + 0.01 * rng.normal(size=n),  # redundant copy
            rng.normal(size=n),                      # noise
            -signal + 0.5 * rng.normal(size=n),      # weaker informative
        ])
        y = (signal + 0.3 * rng.normal(size=n) > 0).astype(float)
        report = select_features(
            X, y, None,
            alpha=0.1, iv_bins=10, theta=0.8,
            ranking_n_estimators=10, ranking_max_depth=3,
            max_output=4, random_state=0,
        )
        final = set(report.final_order)
        # Noise dropped by IV stage; exactly one of {0, 1} survives Pearson.
        assert 2 not in final
        assert len(final & {0, 1}) == 1
        assert report.n_candidates == 4
        assert set(report.kept_after_redundancy) <= set(report.kept_after_iv)
        assert final <= set(report.kept_after_redundancy)

    def test_max_output_budget(self, rng):
        X = rng.normal(size=(1000, 10))
        y = (X[:, :5].sum(axis=1) > 0).astype(float)
        report = select_features(
            X, y, None,
            alpha=0.0, iv_bins=10, theta=0.99,
            ranking_n_estimators=5, ranking_max_depth=3,
            max_output=3, random_state=0,
        )
        assert len(report.final_order) <= 3
