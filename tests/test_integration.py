"""End-to-end integration tests across the whole library."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SAFE,
    Dataset,
    FeatureTransformer,
    SAFEConfig,
    load_benchmark,
    make_classifier,
    roc_auc_score,
)
from repro.experiments import fit_method


@pytest.mark.slow
class TestFullWorkflow:
    def test_benchmark_to_model_pipeline(self):
        """The README quickstart, executed."""
        train, valid, test = load_benchmark("magic", scale=0.1)
        transformer = SAFE(SAFEConfig(n_iterations=1, gamma=25)).fit(train, valid)
        train_new = transformer.transform(train)
        test_new = transformer.transform(test)
        clf = make_classifier("xgb", n_estimators=20)
        clf.fit(train_new.X, train_new.require_labels())
        auc = roc_auc_score(test_new.y, clf.predict_proba(test_new.X)[:, 1])
        assert auc > 0.6

    def test_safe_beats_orig_on_interaction_dataset(self):
        """The paper's core claim at miniature scale, across 3 classifiers."""
        train, valid, test = load_benchmark("eeg-eye", scale=0.1)
        orig = fit_method("ORIG", train, valid).transformer
        safe = fit_method("SAFE", train, valid, gamma=40).transformer
        wins = 0
        for clf_name in ("lr", "svm", "xgb"):
            scores = {}
            for label, psi in (("orig", orig), ("safe", safe)):
                tr, te = psi.transform(train), psi.transform(test)
                clf = make_classifier(clf_name)
                clf.fit(tr.X, tr.require_labels())
                scores[label] = roc_auc_score(te.y, clf.predict_proba(te.X)[:, 1])
            if scores["safe"] >= scores["orig"] - 0.01:
                wins += 1
        assert wins >= 2, "SAFE should match or beat ORIG for most classifiers"

    def test_deployment_roundtrip(self, tmp_path):
        """Fit -> save plan -> reload in 'another process' -> serve rows."""
        train, valid, __ = load_benchmark("wind", scale=0.1)
        psi = SAFE(SAFEConfig(gamma=20)).fit(train, valid)
        plan_path = tmp_path / "psi.json"
        psi.save(plan_path)

        served = FeatureTransformer.load(plan_path)
        # Row-at-a-time serving must agree with batch transform.
        batch = served.transform_matrix(train.X[:5])
        rows = np.vstack([served.transform_matrix(train.X[i]) for i in range(5)])
        assert np.allclose(batch, rows, equal_nan=True)

    def test_interpretability_names_reference_schema(self):
        train, __, __ = load_benchmark("banknote", scale=0.5)
        psi = SAFE(SAFEConfig(gamma=10)).fit(train)
        for name in psi.feature_names:
            assert any(col in name for col in train.names)

    def test_custom_operator_flows_through_safe(self):
        """User extension: register an operator, use it in SAFEConfig."""
        from repro.operators import Operator, register_operator
        from repro.operators.base import _REGISTRY

        class GeoMean(Operator):
            name = "itest_geomean"
            arity = 2
            commutative = True
            symbol = "geomean"

            def apply(self, state, a, b):
                return np.sqrt(np.abs(a * b))

        try:
            register_operator(GeoMean())
            train, __, __ = load_benchmark("banknote", scale=0.5)
            cfg = SAFEConfig(operators=("mul", "itest_geomean"), gamma=10)
            psi = SAFE(cfg).fit(train)
            assert psi.n_output_features >= 1
        finally:
            _REGISTRY.pop("itest_geomean", None)


@pytest.mark.slow
class TestRobustness:
    def test_safe_tolerates_nan_columns(self, rng):
        X = rng.normal(size=(800, 5))
        X[::7, 2] = np.nan
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        psi = SAFE(SAFEConfig(gamma=15)).fit(data)
        out = psi.transform(data)
        assert out.n_rows == 800

    def test_safe_tolerates_constant_columns(self, rng):
        X = rng.normal(size=(600, 4))
        X[:, 3] = 1.0
        y = (X[:, 0] > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=15)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1

    def test_safe_on_heavily_imbalanced_data(self, rng):
        X = rng.normal(size=(4000, 6))
        logit = X[:, 0] * X[:, 1] - 3.5  # ~3% positive
        y = (logit + 0.5 * rng.normal(size=4000) > 0).astype(float)
        assert 0 < y.mean() < 0.1
        psi = SAFE(SAFEConfig(gamma=20)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1

    def test_safe_with_tiny_training_set(self, rng):
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1

    def test_transform_input_wider_than_needed_rejected(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            psi.transform_matrix(rng.normal(size=(5, 7)))
