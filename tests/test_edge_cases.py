"""Cross-cutting edge cases and failure injection.

The deployed system must degrade gracefully rather than crash on the
pathologies industrial data actually contains: all-constant blocks,
extreme magnitudes, duplicated columns, near-empty classes, and corrupted
serving inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SAFE, FeatureTransformer, SAFEConfig
from repro.exceptions import DataError, ReproError
from repro.models import make_classifier
from repro.operators import Applied, Var
from repro.tabular import Dataset


class TestExtremeValues:
    def test_safe_with_huge_magnitudes(self, rng):
        X = rng.normal(size=(600, 4))
        X[:, 1] *= 1e10
        X[:, 2] *= 1e-10
        y = ((X[:, 0] * X[:, 3]) > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=15)).fit(Dataset.from_arrays(X, y))
        out = psi.transform_matrix(X)
        # Expression evaluation itself may produce big numbers, but must
        # not crash; downstream prep clips them.
        assert out.shape[0] == 600

    def test_classifiers_survive_inf_inputs(self, rng):
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(float)
        X_bad = X.copy()
        X_bad[::11, 1] = np.inf
        X_bad[::13, 2] = -np.inf
        for name in ("lr", "dt", "xgb", "knn"):
            clf = make_classifier(name)
            clf.fit(X_bad, y)
            proba = clf.predict_proba(X_bad)
            assert np.isfinite(proba).all(), name


class TestDegenerateSchemas:
    def test_safe_on_two_columns(self, rng):
        X = rng.normal(size=(500, 2))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1

    def test_safe_on_single_column(self, rng):
        X = rng.normal(size=(400, 1))
        y = (X[:, 0] > 0).astype(float)
        # No pairs exist; SAFE must still return a valid (identity-ish) plan.
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1
        assert np.allclose(psi.transform_matrix(X)[:, 0], X[:, 0])

    def test_all_columns_identical(self, rng):
        col = rng.normal(size=400)
        X = np.column_stack([col, col, col])
        y = (col > 0).astype(float)
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        # Redundancy stage collapses the copies.
        assert psi.n_output_features <= 3

    def test_nearly_pure_labels(self, rng):
        X = rng.normal(size=(800, 3))
        y = np.zeros(800)
        y[:8] = 1.0  # 1% positives
        psi = SAFE(SAFEConfig(gamma=5)).fit(Dataset.from_arrays(X, y))
        assert psi.n_output_features >= 1


class TestServingFailures:
    def test_transform_rejects_too_few_columns(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=5)).fit(interaction_data)
        with pytest.raises(ReproError):
            psi.transform_matrix(np.ones((3, 2)))

    def test_transform_handles_nan_rows(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=5)).fit(interaction_data)
        row = np.full(interaction_data.n_cols, np.nan)
        out = psi.transform_matrix(row)
        assert out.shape == (psi.n_output_features,)

    def test_corrupt_plan_payload_rejected(self):
        with pytest.raises(Exception):
            FeatureTransformer.from_dict({"original_names": ["a"], "expressions": []})

    def test_plan_referencing_missing_column_rejected(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            FeatureTransformer(
                expressions=(Applied("add", (Var(0), Var(9))),),
                original_names=("a", "b"),
            )


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro.exceptions import (
            ConfigurationError,
            DataError,
            NotFittedError,
            OperatorError,
            SchemaError,
        )

        for exc in (ConfigurationError, DataError, NotFittedError,
                    OperatorError, SchemaError):
            assert issubclass(exc, ReproError)

    def test_data_error_is_value_error(self):
        assert issubclass(DataError, ValueError)

    def test_catching_base_class_works(self, rng):
        X = rng.normal(size=(10, 2))
        data = Dataset.from_arrays(X)  # unlabeled
        with pytest.raises(ReproError):
            SAFE().fit(data)
