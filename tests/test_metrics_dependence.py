"""Tests for distance correlation and related-pair mining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import distance_correlation, related_pairs


class TestDistanceCorrelation:
    def test_detects_nonlinear_dependence(self, rng):
        x = rng.normal(size=800)
        assert distance_correlation(x, x * x) > 0.4

    def test_independent_near_zero(self, rng):
        x = rng.normal(size=800)
        z = rng.normal(size=800)
        assert distance_correlation(x, z) < 0.15

    def test_identity_is_one(self, rng):
        x = rng.normal(size=300)
        assert distance_correlation(x, x) == pytest.approx(1.0, abs=1e-9)

    def test_symmetric(self, rng):
        x = rng.normal(size=300)
        y = x + rng.normal(size=300)
        assert distance_correlation(x, y) == pytest.approx(
            distance_correlation(y, x), abs=1e-12
        )

    def test_bounded(self, rng):
        for __ in range(5):
            x = rng.normal(size=100)
            y = rng.normal(size=100)
            d = distance_correlation(x, y)
            assert 0.0 <= d <= 1.0

    def test_subsampling_keeps_decision(self, rng):
        x = rng.normal(size=5000)
        y = np.abs(x) + 0.1 * rng.normal(size=5000)
        full_signal = distance_correlation(x, y, max_samples=256)
        assert full_signal > 0.3  # relation still detected after subsample

    def test_constant_column_zero(self, rng):
        x = np.ones(50)
        y = rng.normal(size=50)
        assert distance_correlation(x, y) == 0.0

    def test_nan_rows_dropped(self, rng):
        x = rng.normal(size=100)
        y = x.copy()
        x[:10] = np.nan
        assert distance_correlation(x, y) > 0.95

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            distance_correlation([1.0, 2.0], [3.0, 4.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            distance_correlation(np.arange(10.0), np.arange(9.0))


class TestRelatedPairs:
    def test_finds_planted_relation(self, rng):
        X = rng.normal(size=(600, 4))
        X[:, 2] = np.sin(2 * X[:, 0]) + 0.1 * rng.normal(size=600)
        pairs = related_pairs(X, threshold=0.25)
        assert (0, 2) in [(i, j) for i, j, __ in pairs]

    def test_sorted_by_strength(self, rng):
        X = rng.normal(size=(500, 3))
        X[:, 1] = X[:, 0] + 0.05 * rng.normal(size=500)   # strong
        X[:, 2] = X[:, 0] + 1.0 * rng.normal(size=500)    # weaker
        pairs = related_pairs(X, threshold=0.1)
        assert pairs[0][:2] == (0, 1)
        scores = [s for __, __, s in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_filters(self, rng):
        X = rng.normal(size=(400, 3))  # all independent
        assert related_pairs(X, threshold=0.5) == []

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            related_pairs(np.arange(10.0))
