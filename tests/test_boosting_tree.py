"""Tests for repro.boosting.tree (regression tree + path extraction).

Includes the equivalence suite for the histogram-subtraction fast path:
``_reference_grow`` is a faithful copy of the seed's depth-first grower
(direct per-node histograms, no subtraction), and the level-order
subtraction trees must match it node-for-node on NaN/inf/constant/
duplicate-heavy data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import Tree
from repro.exceptions import ConfigurationError, NotFittedError
from repro.tabular import quantile_codes_matrix
from repro.tabular.binning import codes_from_edges_matrix


def _grow(X, grad, hess=None, **kwargs):
    codes, edges = quantile_codes_matrix(X, max_bins=32)
    if hess is None:
        hess = np.ones_like(grad)
    defaults = {"max_depth": 4, "min_samples_leaf": 1, "min_child_weight": 0.0}
    defaults.update(kwargs)
    return Tree(**defaults).fit(codes, edges, grad, hess)


def _reference_grow(codes, edges, grad, hess, *, max_depth, min_samples_leaf,
                    min_child_weight, reg_lambda=1.0, gamma=0.0):
    """The seed's depth-first direct-histogram grower (the audited oracle).

    Returns the tree as a nested tuple from the root: internal nodes are
    ``(feature, bin, threshold, left, right)``, leaves are
    ``("leaf", value, n_samples)``. ``benchmarks/run_perf.py::SeedTree``
    is a deliberately independent copy of the same seed semantics; a
    change to the reference semantics must be mirrored there.
    """
    codes = np.ascontiguousarray(codes)
    n_rows, n_cols = codes.shape
    stride = max(len(e) for e in edges) + 2 if edges else 2
    offsets = (np.arange(n_cols, dtype=np.int64) * stride)[None, :]
    codes_offset = codes + offsets
    n_edges = np.array([len(e) for e in edges], dtype=np.int64)

    def grow(depth, idx):
        g_sum = float(grad[idx].sum())
        h_sum = float(hess[idx].sum())
        value = -g_sum / (h_sum + reg_lambda)
        if (
            depth >= max_depth
            or idx.size < 2 * min_samples_leaf
            or h_sum < 2 * min_child_weight
        ):
            return ("leaf", value, idx.size)
        flat = codes_offset[idx].ravel()
        length = n_cols * stride
        g_hist = np.bincount(
            flat, weights=np.repeat(grad[idx], n_cols), minlength=length
        ).reshape(n_cols, stride)
        h_hist = np.bincount(
            flat, weights=np.repeat(hess[idx], n_cols), minlength=length
        ).reshape(n_cols, stride)
        c_hist = np.bincount(flat, minlength=length).reshape(n_cols, stride)
        gl = np.cumsum(g_hist, axis=1)[:, :-1]
        hl = np.cumsum(h_hist, axis=1)[:, :-1]
        cl = np.cumsum(c_hist, axis=1)[:, :-1]
        gr = g_sum - gl
        hr = h_sum - hl
        cr = idx.size - cl
        parent_term = g_sum * g_sum / (h_sum + reg_lambda)
        gains = 0.5 * (
            gl * gl / (hl + reg_lambda) + gr * gr / (hr + reg_lambda) - parent_term
        ) - gamma
        valid = (
            (cl >= min_samples_leaf)
            & (cr >= min_samples_leaf)
            & (hl >= min_child_weight)
            & (hr >= min_child_weight)
            & (np.arange(stride - 1)[None, :] <= n_edges[:, None])
        )
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        j, b = divmod(best, stride - 1)
        if not np.isfinite(gains[j, b]) or gains[j, b] <= 0:
            return ("leaf", value, idx.size)
        threshold = float(edges[j][b]) if b < len(edges[j]) else np.inf
        go_left = codes[idx, j] <= b
        left_idx, right_idx = idx[go_left], idx[~go_left]
        if left_idx.size == 0 or right_idx.size == 0:
            return ("leaf", value, idx.size)
        return (
            j, b, threshold,
            grow(depth + 1, left_idx),
            grow(depth + 1, right_idx),
        )

    return grow(0, np.arange(n_rows))


def _canonical(tree, nid=0):
    """Node-id-independent nested-tuple form of a fitted :class:`Tree`."""
    if tree.feature[nid] < 0:
        return ("leaf", float(tree.value[nid]), int(tree.n_samples[nid]))
    return (
        int(tree.feature[nid]),
        int(tree.threshold_bin[nid]),
        float(tree.threshold[nid]),
        _canonical(tree, int(tree.left[nid])),
        _canonical(tree, int(tree.right[nid])),
    )


def _awkward_matrices(rng):
    """NaN / ±inf / constant / duplicate-heavy training matrices."""
    n = 800
    base = rng.normal(size=(n, 6))
    nanful = base.copy()
    nanful[rng.random(size=n) < 0.2, 0] = np.nan
    nanful[rng.random(size=n) < 0.2, 1] = np.nan
    infful = base.copy()
    infful[rng.random(size=n) < 0.15, 0] = np.inf
    infful[rng.random(size=n) < 0.15, 1] = -np.inf
    constant = base.copy()
    constant[:, 2] = 1.5
    constant[:, 3] = 0.0
    dupes = np.round(base * 2.0) / 2.0  # few distinct values per column
    return {"nan": nanful, "inf": infful, "constant": constant, "dupes": dupes}


class TestSubtractionEquivalence:
    """Histogram-subtraction level growth == the seed's direct DFS growth."""

    @pytest.mark.parametrize("kind", ["nan", "inf", "constant", "dupes"])
    def test_trees_bit_identical_to_direct_path(self, rng, kind):
        X = _awkward_matrices(rng)[kind]
        target = np.nan_to_num(X[:, 4]) + 0.7 * np.nan_to_num(X[:, 5])
        grad = -target + 0.05 * rng.normal(size=X.shape[0])
        hess = np.full(X.shape[0], 0.25) + 0.1 * rng.random(X.shape[0])
        codes, edges = quantile_codes_matrix(X, max_bins=32)
        params = {"max_depth": 5, "min_samples_leaf": 3, "min_child_weight": 1e-3}
        tree = Tree(**params).fit(codes, edges, grad, hess)
        ref = _reference_grow(codes, edges, grad, hess, **params)
        assert _canonical(tree) == ref

    @pytest.mark.parametrize("kind", ["nan", "inf", "constant", "dupes"])
    def test_binned_descent_bit_identical_to_raw(self, rng, kind):
        """predict_codes on matrices binned with the training edges must
        equal raw-float predict exactly — including on non-finite probes."""
        X = _awkward_matrices(rng)[kind]
        grad = np.where(np.nan_to_num(X[:, 4]) > 0, 1.0, -1.0)
        codes, edges = quantile_codes_matrix(X, max_bins=32)
        tree = Tree(max_depth=5, min_samples_leaf=2, min_child_weight=0.0).fit(
            codes, edges, grad, np.ones_like(grad)
        )
        X_new = _awkward_matrices(np.random.default_rng(99))[kind]
        new_codes = codes_from_edges_matrix(X_new, edges)
        assert np.array_equal(tree.predict_codes(new_codes), tree.predict(X_new))
        assert np.array_equal(tree.predict_codes(codes), tree.predict(X))

    def test_count_free_path_matches_reference(self, rng):
        """min_samples_leaf=0 (no count channel) still matches the oracle."""
        X = _awkward_matrices(rng)["dupes"]
        grad = rng.normal(size=X.shape[0])
        codes, edges = quantile_codes_matrix(X, max_bins=32)
        params = {"max_depth": 4, "min_samples_leaf": 0, "min_child_weight": 1e-3}
        tree = Tree(**params).fit(codes, edges, grad, np.ones_like(grad))
        ref = _reference_grow(codes, edges, grad, np.ones_like(grad), **params)
        assert _canonical(tree) == ref


class TestFitLeafIds:
    def test_full_fit_assigns_every_row(self, rng):
        X = rng.normal(size=(500, 4))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        codes, edges = quantile_codes_matrix(X, max_bins=32)
        tree = Tree(max_depth=3, min_samples_leaf=1, min_child_weight=0.0).fit(
            codes, edges, grad, np.ones_like(grad)
        )
        assert np.array_equal(tree.fit_leaf_ids_, tree.apply(X))

    def test_rows_subset_marks_excluded_rows(self, rng):
        X = rng.normal(size=(600, 4))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        codes, edges = quantile_codes_matrix(X, max_bins=32)
        rows = np.flatnonzero(rng.random(600) < 0.5)
        tree = Tree(max_depth=3, min_samples_leaf=1, min_child_weight=0.0).fit(
            codes, edges, grad, np.ones_like(grad), rows=rows
        )
        leaf_ids = tree.fit_leaf_ids_
        mask = np.zeros(600, dtype=bool)
        mask[rows] = True
        assert (leaf_ids[~mask] == -1).all()
        assert (leaf_ids[mask] >= 0).all()
        assert np.array_equal(leaf_ids[rows], tree.apply(X[rows]))
        assert int(tree.n_samples[0]) == rows.size


class TestGrowth:
    def test_single_informative_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        grad = np.where(X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=2)
        assert 1 in tree.split_features()
        assert tree.n_leaves >= 2

    def test_pure_gradient_gives_single_leaf(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        tree = _grow(X, np.ones(100))
        assert tree.n_nodes == 1
        assert tree.n_leaves == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(1000, 4))
        grad = rng.normal(size=1000)
        tree = _grow(X, grad, max_depth=2)
        # Depth-2 tree has at most 7 nodes.
        assert tree.n_nodes <= 7

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            _grow(np.ones((10, 1)), np.ones(10), max_depth=0)

    def test_leaf_value_is_newton_step(self):
        X = np.array([[0.0], [0.0], [0.0]])
        grad = np.array([1.0, 2.0, 3.0])
        hess = np.array([1.0, 1.0, 1.0])
        tree = _grow(X, grad, hess, reg_lambda=1.0)
        # Single leaf: value = -G/(H+lambda) = -6/4.
        assert tree.value[0] == pytest.approx(-1.5)


class TestPredict:
    def test_prediction_reduces_gradient_objective(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(600, 3))
        target = np.sin(X[:, 0]) + 0.5 * X[:, 2]
        grad = -target  # squared-loss gradient at margin 0
        tree = _grow(X, grad, max_depth=4)
        pred = tree.predict(X)
        # The tree should approximate the target (correlation well above 0).
        corr = np.corrcoef(pred, target)[0, 1]
        assert corr > 0.7

    def test_nan_goes_right(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 50, dtype=float)
        grad = np.where(X[:, 0] <= 1.0, -1.0, 1.0)
        tree = _grow(X, grad, max_depth=1)
        pred_nan = tree.predict(np.array([[np.nan]]))
        pred_big = tree.predict(np.array([[99.0]]))
        assert pred_nan[0] == pred_big[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Tree().predict(np.ones((2, 2)))

    def test_apply_returns_leaves(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 2))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=2)
        leaves = tree.apply(X)
        assert (tree.feature[leaves] == -1).all()


class TestPaths:
    def test_stump_has_single_path(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 3))
        grad = np.where(X[:, 2] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=1)
        paths = tree.paths()
        assert len(paths) == 1
        assert paths[0].features == (2,)
        assert len(paths[0].split_values[2]) == 1

    def test_single_leaf_tree_has_no_paths(self):
        tree = _grow(np.ones((50, 2)), np.ones(50))
        assert tree.paths() == []

    def test_path_features_are_distinct_and_ordered(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(2000, 4))
        grad = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=4)
        for path in tree.paths():
            assert len(set(path.features)) == len(path.features)
            for f in path.features:
                assert f in path.split_values
                assert len(path.split_values[f]) >= 1

    def test_repeated_feature_pools_split_values(self):
        # A single very informative feature should be split repeatedly on
        # one path; its split_values must collect multiple thresholds.
        X = np.linspace(0, 1, 800).reshape(-1, 1)
        grad = np.sin(6 * X[:, 0])
        tree = _grow(X, grad, max_depth=3)
        paths = tree.paths()
        assert paths, "expected at least one path"
        assert any(len(p.split_values.get(0, ())) > 1 for p in paths)

    def test_interaction_appears_on_same_path(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(3000, 5))
        grad = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=3)
        assert any(
            {0, 1} <= set(p.features) for p in tree.paths()
        ), "interacting features should co-occur on a path"


class TestFeatureGains:
    def test_gains_positive_and_counted(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(500, 3))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=3)
        gains = tree.feature_gains()
        assert 0 in gains
        total, count = gains[0]
        assert total > 0
        assert count >= 1

    def test_empty_for_single_leaf(self):
        tree = _grow(np.ones((50, 2)), np.ones(50))
        assert tree.feature_gains() == {}
