"""Tests for repro.boosting.tree (regression tree + path extraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import Tree
from repro.exceptions import ConfigurationError, NotFittedError
from repro.tabular import quantile_codes_matrix


def _grow(X, grad, hess=None, **kwargs):
    codes, edges = quantile_codes_matrix(X, max_bins=32)
    if hess is None:
        hess = np.ones_like(grad)
    defaults = {"max_depth": 4, "min_samples_leaf": 1, "min_child_weight": 0.0}
    defaults.update(kwargs)
    return Tree(**defaults).fit(codes, edges, grad, hess)


class TestGrowth:
    def test_single_informative_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        grad = np.where(X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=2)
        assert 1 in tree.split_features()
        assert tree.n_leaves >= 2

    def test_pure_gradient_gives_single_leaf(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        tree = _grow(X, np.ones(100))
        assert tree.n_nodes == 1
        assert tree.n_leaves == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(1000, 4))
        grad = rng.normal(size=1000)
        tree = _grow(X, grad, max_depth=2)
        # Depth-2 tree has at most 7 nodes.
        assert tree.n_nodes <= 7

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            _grow(np.ones((10, 1)), np.ones(10), max_depth=0)

    def test_leaf_value_is_newton_step(self):
        X = np.array([[0.0], [0.0], [0.0]])
        grad = np.array([1.0, 2.0, 3.0])
        hess = np.array([1.0, 1.0, 1.0])
        tree = _grow(X, grad, hess, reg_lambda=1.0)
        # Single leaf: value = -G/(H+lambda) = -6/4.
        assert tree.value[0] == pytest.approx(-1.5)


class TestPredict:
    def test_prediction_reduces_gradient_objective(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(600, 3))
        target = np.sin(X[:, 0]) + 0.5 * X[:, 2]
        grad = -target  # squared-loss gradient at margin 0
        tree = _grow(X, grad, max_depth=4)
        pred = tree.predict(X)
        # The tree should approximate the target (correlation well above 0).
        corr = np.corrcoef(pred, target)[0, 1]
        assert corr > 0.7

    def test_nan_goes_right(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 50, dtype=float)
        grad = np.where(X[:, 0] <= 1.0, -1.0, 1.0)
        tree = _grow(X, grad, max_depth=1)
        pred_nan = tree.predict(np.array([[np.nan]]))
        pred_big = tree.predict(np.array([[99.0]]))
        assert pred_nan[0] == pred_big[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Tree().predict(np.ones((2, 2)))

    def test_apply_returns_leaves(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 2))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=2)
        leaves = tree.apply(X)
        assert (tree.feature[leaves] == -1).all()


class TestPaths:
    def test_stump_has_single_path(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(400, 3))
        grad = np.where(X[:, 2] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=1)
        paths = tree.paths()
        assert len(paths) == 1
        assert paths[0].features == (2,)
        assert len(paths[0].split_values[2]) == 1

    def test_single_leaf_tree_has_no_paths(self):
        tree = _grow(np.ones((50, 2)), np.ones(50))
        assert tree.paths() == []

    def test_path_features_are_distinct_and_ordered(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(2000, 4))
        grad = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=4)
        for path in tree.paths():
            assert len(set(path.features)) == len(path.features)
            for f in path.features:
                assert f in path.split_values
                assert len(path.split_values[f]) >= 1

    def test_repeated_feature_pools_split_values(self):
        # A single very informative feature should be split repeatedly on
        # one path; its split_values must collect multiple thresholds.
        X = np.linspace(0, 1, 800).reshape(-1, 1)
        grad = np.sin(6 * X[:, 0])
        tree = _grow(X, grad, max_depth=3)
        paths = tree.paths()
        assert paths, "expected at least one path"
        assert any(len(p.split_values.get(0, ())) > 1 for p in paths)

    def test_interaction_appears_on_same_path(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(3000, 5))
        grad = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=3)
        assert any(
            {0, 1} <= set(p.features) for p in tree.paths()
        ), "interacting features should co-occur on a path"


class TestFeatureGains:
    def test_gains_positive_and_counted(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(500, 3))
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        tree = _grow(X, grad, max_depth=3)
        gains = tree.feature_gains()
        assert 0 in gains
        total, count = gains[0]
        assert total > 0
        assert count >= 1

    def test_empty_for_single_leaf(self):
        tree = _grow(np.ones((50, 2)), np.ones(50))
        assert tree.feature_gains() == {}
