"""Equivalence tests: batched scoring engine vs the scalar references.

The batched kernels (``metrics.batched``, ``core.scoring``) must be
numerically indistinguishable (≤ 1e-9) from the scalar implementations
they replace, across the awkward column types the pipeline actually
produces: NaN-bearing, constant, all-missing, ±inf, heavy-duplicate, and
single-split-value features.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generation import Combination, rank_combinations
from repro.core.scoring import IntervalCodeCache, score_combinations
from repro.core.selection import information_values_safe
from repro.exceptions import ConfigurationError, DataError
from repro.metrics.batched import (
    gain_ratio_from_cells,
    information_values_matrix,
)
from repro.metrics.information import (
    cells_from_split_values,
    information_gain_ratio,
    information_value,
    information_values,
)

TOL = 1e-9


def awkward_matrix(n: int = 900, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """A matrix exercising every guard: NaN, constant, inf, duplicates."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 10))
    X[:, 2] = np.round(X[:, 2] * 2)  # heavy duplicates
    X[:, 3] = 5.0  # constant
    X[:, 4] = np.nan  # all missing
    X[rng.random(size=n) < 0.15, 5] = np.nan  # sprinkled NaN
    X[0, 7] = np.inf
    X[1, 7] = -np.inf
    X[:, 8] = rng.integers(0, 3, size=n).astype(float)  # tiny cardinality
    y = (X[:, 0] + X[:, 1] > 0).astype(float)
    return X, y


def scalar_safe_ivs(X: np.ndarray, y: np.ndarray, n_bins: int) -> np.ndarray:
    """The pre-batching per-column loop: guard, then scalar IV."""
    ivs = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        col = X[:, j]
        finite = col[np.isfinite(col)]
        if finite.size == 0 or np.all(finite == finite[0]):
            continue
        ivs[j] = information_value(col, y, n_bins=n_bins)
    return ivs


def random_combinations(
    rng: np.random.Generator, n_features: int, n_combos: int
) -> list[Combination]:
    combos = []
    for __ in range(n_combos):
        k = int(rng.integers(1, 4))
        feats = tuple(
            sorted(rng.choice(n_features, size=k, replace=False).tolist())
        )
        split_values = tuple(
            tuple(
                sorted(
                    set(
                        np.round(
                            rng.normal(size=int(rng.integers(1, 7))), 2
                        ).tolist()
                    )
                )
            )
            for __ in feats
        )
        combos.append(Combination(features=feats, split_values=split_values))
    return combos


class TestBatchedIV:
    @pytest.mark.parametrize("n_bins", [2, 5, 10])
    def test_matches_scalar_on_awkward_columns(self, n_bins):
        X, y = awkward_matrix()
        ref = scalar_safe_ivs(X, y, n_bins)
        got = information_values_matrix(X, y, n_bins=n_bins)
        assert np.abs(ref - got).max() <= TOL

    def test_shared_implementation_used_by_both_call_sites(self):
        X, y = awkward_matrix(seed=11)
        matrix = information_values_matrix(X, y, n_bins=10)
        assert np.array_equal(information_values(X, y, n_bins=10), matrix)
        assert np.array_equal(information_values_safe(X, y, 10), matrix)

    def test_unscorable_columns_are_zero(self):
        X, y = awkward_matrix()
        ivs = information_values_matrix(X, y, n_bins=10)
        assert ivs[3] == 0.0  # constant
        assert ivs[4] == 0.0  # all-NaN

    def test_requires_both_classes(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        with pytest.raises(DataError):
            information_values_matrix(X, np.ones(50), n_bins=10)

    def test_empty_matrix(self):
        assert information_values_matrix(np.ones((4, 0)), np.array([0, 1, 0, 1])).size == 0

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            information_values_matrix(np.ones((4, 2)), np.array([0, 1]))


class TestIntervalCodeCache:
    def test_cells_match_scalar_reference(self):
        X, y = awkward_matrix()
        rng = np.random.default_rng(3)
        combos = random_combinations(rng, X.shape[1], 40)
        # Include the degenerate shapes the miner can emit: a single
        # split value, a duplicated split value, and a constant feature.
        combos.append(Combination(features=(5,), split_values=((0.0,),)))
        combos.append(Combination(features=(3, 5), split_values=((5.0,), (0.0, 1.0))))
        cache = IntervalCodeCache(X, combos)
        labeled_cache = IntervalCodeCache(
            X, combos, label=(y == 1).astype(np.int64)
        )
        for combo in combos:
            ref = cells_from_split_values(
                X,
                list(combo.features),
                [np.asarray(v) for v in combo.split_values],
            )
            for c in (cache, labeled_cache):
                got, n_cells = c.cells(combo.features, combo.split_values)
                assert np.array_equal(ref, got)
                assert got.max() < n_cells

    def test_duplicate_split_values_collapse(self):
        X = np.arange(12.0).reshape(-1, 1)
        cache = IntervalCodeCache(
            X, [Combination(features=(0,), split_values=((3.0, 3.0),))]
        )
        codes, n_values = cache.interval_codes(0, (3.0, 3.0))
        assert n_values == 1
        # side="left" semantics: a row equal to the split value stays in
        # the left interval.
        assert np.array_equal(codes, (X[:, 0] > 3.0).astype(np.int64))

    def test_rejects_mismatched_lengths(self):
        X = np.ones((4, 2))
        cache = IntervalCodeCache(X, [])
        with pytest.raises(ConfigurationError):
            cache.cells((0, 1), ((1.0,),))
        with pytest.raises(ConfigurationError):
            cache.cells((), ())

    def test_rejects_values_outside_pooled_union(self):
        X = np.array([[0.5], [1.5], [2.5]])
        cache = IntervalCodeCache(
            X, [Combination(features=(0,), split_values=((1.0,),))]
        )
        with pytest.raises(ConfigurationError):
            cache.interval_codes(0, (2.0,))  # same size as union, not equal
        with pytest.raises(ConfigurationError):
            cache.interval_codes(0, (1.0, 2.0))  # not a subset


class TestBatchedGainRatio:
    def test_matches_scalar_reference(self):
        X, y = awkward_matrix()
        rng = np.random.default_rng(5)
        combos = random_combinations(rng, X.shape[1], 50)
        ratios = score_combinations(X, y, combos)
        for combo, got in zip(combos, ratios):
            cells = cells_from_split_values(
                X,
                list(combo.features),
                [np.asarray(v) for v in combo.split_values],
            )
            assert abs(information_gain_ratio(y, cells) - got) <= TOL

    def test_dense_and_sparse_paths_agree(self):
        rng = np.random.default_rng(9)
        y = rng.integers(0, 2, size=400).astype(float)
        cells = rng.integers(0, 17, size=400)
        dense = gain_ratio_from_cells(y, cells, n_cells=17)
        sparse = gain_ratio_from_cells(y, cells, n_cells=None)
        assert dense == pytest.approx(sparse, abs=TOL)
        assert dense == pytest.approx(information_gain_ratio(y, cells), abs=TOL)

    def test_single_cell_partition_scores_zero(self):
        y = np.array([0.0, 1.0, 1.0, 0.0])
        assert gain_ratio_from_cells(y, np.zeros(4, dtype=np.int64), n_cells=1) == 0.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            gain_ratio_from_cells(np.zeros(3), np.zeros(2, dtype=np.int64))


class TestParallelRankingParity:
    def test_n_jobs_2_equals_serial(self):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(600, 8))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
        combos = random_combinations(rng, 8, 24)
        serial = rank_combinations(X, y, combos, gamma=10)
        parallel = rank_combinations(X, y, combos, gamma=10, n_jobs=2)
        assert [
            (r.combination.features, r.combination.split_values, r.gain_ratio)
            for r in serial
        ] == [
            (r.combination.features, r.combination.split_values, r.gain_ratio)
            for r in parallel
        ]
