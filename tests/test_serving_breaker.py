"""Circuit breaker state machine: closed → open → half-open → closed."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make(threshold=3, cooldown=10.0) -> CircuitBreaker:
    return CircuitBreaker("x0", failure_threshold=threshold, cooldown=cooldown)


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make(threshold=0)

    def test_cooldown_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            make(cooldown=-1.0)


class TestTrip:
    def test_stays_closed_below_threshold(self):
        breaker = make(threshold=3)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.state == CLOSED
        assert breaker.allow(2.0)

    def test_trips_open_at_threshold(self):
        breaker = make(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)  # the trip is reported once
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = make(threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_open_refuses_before_cooldown(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert not breaker.allow(5.0)
        assert not breaker.allow(9.999)


class TestHalfOpen:
    def test_cooldown_elapsed_admits_one_probe(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(10.1)  # probe outstanding: refuse

    def test_probe_success_closes(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(11.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(11.1)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = make(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(11.0)
        assert breaker.record_failure(11.0)  # re-trip
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow(20.0)   # cooldown restarted at t=11
        assert breaker.allow(21.0)


class TestZeroCooldown:
    def test_zero_cooldown_probes_immediately(self):
        breaker = make(threshold=1, cooldown=0.0)
        breaker.record_failure(5.0)
        assert breaker.allow(5.0)
        assert breaker.state == HALF_OPEN
