"""Catalogue-wide operator contract sweep.

Every registered operator — present and future — must satisfy the same
contract: fit on training columns, apply to fresh columns of any length,
produce finite-or-nan float output of the right shape, and carry only
JSON-serializable state. This sweep is what makes the registry safely
extensible (the §III "new operators should be easily added" requirement).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.operators import available_operators, get_operator

#: Operators whose output may legitimately contain non-finite values on
#: arbitrary real input (none currently — all are protected).
ALLOW_NONFINITE: frozenset = frozenset()


@pytest.fixture(scope="module")
def train_columns():
    rng = np.random.default_rng(77)
    return [rng.normal(size=300) for __ in range(4)]


@pytest.fixture(scope="module")
def serve_columns():
    rng = np.random.default_rng(78)
    return [rng.normal(size=7) for __ in range(4)]


@pytest.mark.parametrize("name", available_operators())
class TestOperatorContract:
    def test_fit_apply_shape_and_dtype(self, name, train_columns, serve_columns):
        op = get_operator(name)
        train_args = train_columns[: op.arity]
        serve_args = serve_columns[: op.arity]
        state = op.fit(*train_args)
        out = np.asarray(op.apply(state, *serve_args), dtype=np.float64)
        assert out.shape == (7,), f"{name} returned shape {out.shape}"

    def test_output_finite_on_gaussian_input(self, name, train_columns):
        op = get_operator(name)
        args = train_columns[: op.arity]
        state = op.fit(*args)
        out = np.asarray(op.apply(state, *args), dtype=np.float64)
        if name not in ALLOW_NONFINITE:
            assert np.isfinite(out).all(), f"{name} produced non-finite values"

    def test_state_json_serializable(self, name, train_columns):
        op = get_operator(name)
        state = op.fit(*train_columns[: op.arity])
        json.dumps(state)  # must not raise

    def test_apply_deterministic(self, name, train_columns):
        op = get_operator(name)
        args = train_columns[: op.arity]
        state = op.fit(*args)
        a = np.asarray(op.apply(state, *args))
        b = np.asarray(op.apply(state, *args))
        assert np.array_equal(a, b, equal_nan=True)

    def test_format_produces_string(self, name):
        op = get_operator(name)
        rendered = op.format(*[f"c{i}" for i in range(op.arity)])
        assert isinstance(rendered, str) and rendered
        assert "c0" in rendered

    def test_commutative_ops_are_order_invariant(self, name, train_columns):
        op = get_operator(name)
        if not op.commutative or op.arity != 2:
            pytest.skip("non-commutative or non-binary")
        a, b = train_columns[:2]
        state = op.fit(a, b)
        x = np.asarray(op.apply(state, a, b))
        y = np.asarray(op.apply(state, b, a))
        assert np.allclose(x, y, equal_nan=True), f"{name} claims commutativity"
