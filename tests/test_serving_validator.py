"""Admission control: categories, coercion policy, counters, typed refusals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AdmissionError, ConfigurationError
from repro.runtime.checkpoint import schema_fingerprint
from repro.runtime.failpoints import FAILPOINTS, active
from repro.serving.validator import (
    COERCED,
    EXACT,
    REJECTED,
    Admission,
    CoercionPolicy,
    RequestValidator,
)
from repro.tabular import Dataset

NAMES = ("amount", "count", "age")

ALL = CoercionPolicy(reorder=True, cast=True, missing="nan", extra="drop")
NONE = CoercionPolicy(reorder=False, cast=False, missing="reject", extra="reject")


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


def make(policy=None) -> RequestValidator:
    return RequestValidator(NAMES, policy=policy)


class TestPolicy:
    def test_from_spec_none_and_all(self):
        assert CoercionPolicy.from_spec("none") == NONE
        assert CoercionPolicy.from_spec("all") == ALL

    def test_from_spec_comma_list(self):
        policy = CoercionPolicy.from_spec("reorder,missing")
        assert policy.reorder and not policy.cast
        assert policy.missing == "nan" and policy.extra == "reject"

    def test_from_spec_unknown_token_rejected(self):
        with pytest.raises(ConfigurationError):
            CoercionPolicy.from_spec("reorder,telepathy")

    def test_invalid_policy_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CoercionPolicy(missing="zero")
        with pytest.raises(ConfigurationError):
            CoercionPolicy(extra="keep")


class TestExact:
    def test_positional_row(self):
        admission = make().admit(np.array([1.0, 2.0, 3.0]))
        assert admission.category == EXACT
        assert admission.single
        assert admission.X.shape == (1, 3)

    def test_positional_batch(self):
        admission = make().admit(np.ones((4, 3)))
        assert admission.category == EXACT and not admission.single

    def test_dataset_in_schema_order(self):
        ds = Dataset(X=np.ones((2, 3)), names=NAMES)
        admission = make().admit(ds)
        assert admission.category == EXACT

    def test_record_in_schema_order(self):
        admission = make().admit({"amount": 1.0, "count": 2.0, "age": 3.0})
        assert admission.category == EXACT
        assert admission.single
        np.testing.assert_array_equal(admission.X, [[1.0, 2.0, 3.0]])

    def test_int_and_bool_arrays_are_exact(self):
        assert make().admit(np.array([1, 2, 3])).category == EXACT
        assert make().admit(np.array([True, False, True])).category == EXACT


class TestCoercible:
    def test_reordered_record(self):
        admission = make().admit({"age": 3.0, "amount": 1.0, "count": 2.0})
        assert admission.category == COERCED
        assert "reordered" in admission.coercions
        np.testing.assert_array_equal(admission.X, [[1.0, 2.0, 3.0]])

    def test_reordered_dataset(self):
        ds = Dataset(X=np.array([[3.0, 1.0, 2.0]]), names=("age", "amount", "count"))
        admission = make().admit(ds)
        assert admission.category == COERCED
        np.testing.assert_array_equal(admission.X, [[1.0, 2.0, 3.0]])

    def test_castable_strings(self):
        admission = make().admit({"amount": "1.5", "count": "2", "age": "3"})
        assert admission.category == COERCED
        assert "cast" in admission.coercions
        np.testing.assert_array_equal(admission.X, [[1.5, 2.0, 3.0]])

    def test_none_value_casts_to_nan(self):
        admission = make().admit({"amount": None, "count": 2.0, "age": 3.0})
        assert admission.category == COERCED
        assert np.isnan(admission.X[0, 0])

    def test_missing_as_nan_under_policy(self):
        admission = make(ALL).admit({"amount": 1.0, "age": 3.0})
        assert admission.category == COERCED
        assert "missing:count" in admission.coercions
        assert np.isnan(admission.X[0, 1])
        np.testing.assert_array_equal(admission.X[0, [0, 2]], [1.0, 3.0])

    def test_extra_dropped_under_policy(self):
        admission = make(ALL).admit(
            {"amount": 1.0, "count": 2.0, "age": 3.0, "debt": 9.0}
        )
        assert admission.category == COERCED
        assert "extra:debt" in admission.coercions
        np.testing.assert_array_equal(admission.X, [[1.0, 2.0, 3.0]])


class TestRejected:
    def test_width_mismatch(self):
        admission = make().admit(np.ones((2, 5)))
        assert admission.category == REJECTED
        assert isinstance(admission.error, AdmissionError)
        assert "5 columns" in str(admission.error)

    def test_missing_rejected_by_default(self):
        admission = make().admit({"amount": 1.0, "age": 3.0})
        assert admission.category == REJECTED
        assert "count" in str(admission.error)

    def test_extra_rejected_by_default(self):
        admission = make().admit(
            {"amount": 1.0, "count": 2.0, "age": 3.0, "debt": 9.0}
        )
        assert admission.category == REJECTED
        assert "debt" in str(admission.error)

    def test_renamed_column_is_missing_plus_extra(self):
        # The canonical upstream drift: a renamed column never binds
        # positionally — it surfaces as missing+extra, not silent garbage.
        admission = make().admit({"amount": 1.0, "count": 2.0, "years": 3.0})
        assert admission.category == REJECTED

    def test_reorder_refused_when_policy_forbids(self):
        admission = make(NONE).admit({"age": 3.0, "amount": 1.0, "count": 2.0})
        assert admission.category == REJECTED
        assert "order" in str(admission.error)

    def test_cast_refused_when_policy_forbids(self):
        admission = make(NONE).admit({"amount": "1.5", "count": "2", "age": "3"})
        assert admission.category == REJECTED

    def test_uncastable_value(self):
        admission = make().admit({"amount": "lots", "count": 2.0, "age": 3.0})
        assert admission.category == REJECTED
        assert "uncastable" in str(admission.error)

    def test_duplicate_names(self):
        with pytest.raises(AdmissionError):
            make()._classify_named(
                ("amount", "amount", "age"), np.ones((1, 3)), single=True
            )

    def test_3d_request(self):
        admission = make().admit(np.ones((2, 2, 2)))
        assert admission.category == REJECTED

    def test_admit_never_raises_on_weird_payloads(self):
        for payload in ("garbage", object(), [[[1]]], {"a": object()}):
            admission = make().admit(payload)
            assert admission.category == REJECTED
            assert admission.error is not None


class TestCountersAndFingerprints:
    def test_counters_track_categories(self):
        validator = make(ALL)
        validator.admit(np.ones(3))                      # exact
        validator.admit({"age": 1.0, "amount": 0.0, "count": 0.0})  # coerced
        validator.admit(np.ones(7))                      # rejected
        assert validator.counters == {EXACT: 1, COERCED: 1, REJECTED: 1}

    def test_tampered_schema_hash_refused(self):
        with pytest.raises(AdmissionError):
            RequestValidator(NAMES, schema_hash="not-the-real-hash")

    def test_matching_schema_hash_accepted(self):
        validator = RequestValidator(NAMES, schema_hash=schema_fingerprint(NAMES))
        assert validator.schema_hash == schema_fingerprint(NAMES)

    def test_admit_failpoint_is_a_counted_rejection(self):
        validator = make()
        with active("serve.admit"):
            admission = validator.admit(np.ones(3))
        assert admission.category == REJECTED
        assert validator.counters[REJECTED] == 1
        # disarmed again: the same request is admitted
        assert validator.admit(np.ones(3)).category == EXACT


class TestAdmissionObject:
    def test_is_frozen(self):
        admission = Admission(EXACT, None)
        with pytest.raises(AttributeError):
            admission.category = COERCED
