"""Tests for ternary and n-ary operators."""

from __future__ import annotations

import numpy as np

from repro.operators import get_operator


class TestConditional:
    def test_selects_by_condition(self):
        op = get_operator("cond")
        a = np.array([1.0, 0.0, 2.0])
        b = np.array([10.0, 10.0, 10.0])
        c = np.array([-1.0, -1.0, -1.0])
        out = op.apply(None, a, b, c)
        assert out.tolist() == [10.0, -1.0, 10.0]

    def test_format(self):
        assert get_operator("cond").format("a", "b", "c") == "(a ? b : c)"


class TestNaryReduce:
    def test_max3(self):
        op = get_operator("max3")
        out = op.apply(None, np.array([1.0]), np.array([5.0]), np.array([3.0]))
        assert out[0] == 5.0

    def test_min3(self):
        op = get_operator("min3")
        out = op.apply(None, np.array([1.0]), np.array([5.0]), np.array([3.0]))
        assert out[0] == 1.0

    def test_mean4(self):
        op = get_operator("mean4")
        cols = [np.array([v]) for v in (1.0, 2.0, 3.0, 6.0)]
        assert op.apply(None, *cols)[0] == 3.0

    def test_different_arities_are_distinct_operators(self):
        # The paper: "we divide them into different categories when they
        # accept a different number of inputs".
        assert get_operator("max3").arity == 3
        assert get_operator("max4").arity == 4
        assert get_operator("max3") is not get_operator("max4")

    def test_commutative(self):
        op = get_operator("mean3")
        a, b, c = (np.array([x]) for x in (1.0, 2.0, 4.0))
        assert op.apply(None, a, b, c)[0] == op.apply(None, c, a, b)[0]
