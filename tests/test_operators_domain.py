"""Tests for domain-specific (time-series) operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.operators import get_operator


def apply1(name, x, fit_on=None):
    op = get_operator(name)
    arr = np.asarray(x, dtype=np.float64)
    state = op.fit(np.asarray(fit_on, dtype=np.float64) if fit_on is not None else arr)
    return op.apply(state, arr)


class TestLag:
    def test_lag1_shifts(self):
        out = apply1("lag1", [1.0, 2.0, 3.0])
        assert out[1] == 1.0 and out[2] == 2.0

    def test_lag1_pads_with_training_mean(self):
        out = apply1("lag1", [10.0, 20.0, 30.0])
        assert out[0] == pytest.approx(20.0)  # mean of the column

    def test_lag2(self):
        out = apply1("lag2", [1.0, 2.0, 3.0, 4.0])
        assert out[2] == 1.0 and out[3] == 2.0

    def test_lag_on_short_series(self):
        out = apply1("lag2", [5.0])
        assert out.shape == (1,)


class TestDiff:
    def test_first_difference(self):
        out = apply1("diff1", [1.0, 4.0, 9.0])
        assert out[1] == 3.0 and out[2] == 5.0

    def test_constant_series_diffs_to_zero(self):
        out = apply1("diff1", [2.0, 2.0, 2.0])
        assert np.allclose(out[1:], 0.0)
        assert out[0] == pytest.approx(0.0)  # 2 - mean(2)


class TestRolling:
    def test_rolling_mean_converges_on_constant(self):
        out = apply1("rolling_mean5", [3.0] * 10)
        assert np.allclose(out, 3.0)

    def test_rolling_mean_trailing_window(self):
        x = np.arange(10.0)
        out = apply1("rolling_mean5", x)
        # Row 9 averages rows 5..9.
        assert out[9] == pytest.approx(np.mean(x[5:10]))

    def test_rolling_std_zero_on_constant(self):
        out = apply1("rolling_std5", [4.0] * 8)
        assert np.allclose(out, 0.0)

    def test_rolling_std_positive_on_varying(self):
        out = apply1("rolling_std5", np.arange(20.0))
        assert out[-1] > 0


class TestEwm:
    def test_tracks_level_shift(self):
        x = np.r_[np.zeros(20), np.ones(20)]
        out = apply1("ewm", x)
        assert out[19] < 0.2
        assert out[-1] > 0.8

    def test_smoother_than_input(self, rng):
        x = rng.normal(size=200)
        out = apply1("ewm", x)
        assert np.std(np.diff(out)) < np.std(np.diff(x))

    def test_nan_rows_hold_level(self):
        out = apply1("ewm", [1.0, np.nan, np.nan], fit_on=[1.0, 1.0])
        assert out[1] == out[0]
        assert np.isfinite(out).all()
