"""Tests for repro.metrics.divergence (KLD, JSD, feature stability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import feature_stability, js_divergence, kl_divergence


class TestKLD:
    def test_identical_is_zero(self):
        p = np.array([0.25, 0.25, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        for __ in range(10):
            p = rng.random(6)
            q = rng.random(6) + 0.1
            assert kl_divergence(p, q) >= -1e-12

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_normalizes_inputs(self):
        p = np.array([2.0, 2.0])
        q = np.array([1.0, 1.0])
        assert kl_divergence(p, q) == pytest.approx(0.0)

    def test_zero_in_p_allowed(self):
        assert np.isfinite(kl_divergence([0.0, 1.0], [0.5, 0.5]))

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_negative_mass_rejected(self):
        with pytest.raises(DataError):
            kl_divergence([-0.1, 1.1], [0.5, 0.5])

    def test_zero_total_mass_rejected(self):
        with pytest.raises(DataError):
            kl_divergence([0.0, 0.0], [0.5, 0.5])


class TestJSD:
    def test_symmetric(self):
        p = np.array([0.8, 0.2])
        q = np.array([0.3, 0.7])
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_bounded_by_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(np.log(2))

    def test_identical_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert js_divergence(p, p) == pytest.approx(0.0)


class TestFeatureStability:
    def test_perfectly_stable_runs_score_zero(self):
        runs = [["f1", "f2", "f3"]] * 10
        assert feature_stability(runs) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_runs_score_high(self):
        runs = [[f"r{t}_f{i}" for i in range(4)] for t in range(10)]
        unstable = feature_stability(runs)
        stable = feature_stability([["a", "b", "c", "d"]] * 10)
        assert unstable > stable + 0.3

    def test_partial_overlap_in_between(self):
        stable = [["a", "b"]] * 8
        partial = [["a", f"x{t}"] for t in range(8)]
        disjoint = [[f"y{t}", f"z{t}"] for t in range(8)]
        s1 = feature_stability(stable)
        s2 = feature_stability(partial)
        s3 = feature_stability(disjoint)
        assert s1 < s2 < s3

    def test_duplicates_within_run_counted_once(self):
        a = feature_stability([["f", "f", "g"], ["f", "g"]], n_features_per_run=2)
        b = feature_stability([["f", "g"], ["f", "g"]], n_features_per_run=2)
        assert a == pytest.approx(b)

    def test_empty_runs_rejected(self):
        with pytest.raises(DataError):
            feature_stability([])

    def test_runs_with_no_features_rejected(self):
        with pytest.raises(DataError):
            feature_stability([[], []])
