"""Shared fixtures: small deterministic datasets used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular import Dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def linear_data(rng) -> Dataset:
    """800 rows, 6 columns; label depends linearly on x0, x1."""
    X = rng.normal(size=(800, 6))
    logit = 1.5 * X[:, 0] - 1.0 * X[:, 1] + 0.3 * rng.normal(size=800)
    y = (logit > 0).astype(float)
    return Dataset.from_arrays(X, y)


@pytest.fixture
def interaction_data(rng) -> Dataset:
    """1200 rows, 8 columns; label driven by x0*x1 and x2-x3 interactions.

    Linear models fail on this; feature engineering with {+,−,×,÷}
    recovers it — the canonical SAFE test case.
    """
    X = rng.normal(size=(1200, 8))
    logit = (
        2.0 * X[:, 0] * X[:, 1]
        + 1.5 * (X[:, 2] - X[:, 3])
        + 0.4 * rng.normal(size=1200)
    )
    y = (logit > 0).astype(float)
    return Dataset.from_arrays(X, y)


@pytest.fixture
def redundant_data(rng) -> Dataset:
    """Columns 2/3 are near-copies of 0/1; column 4 is pure noise."""
    n = 600
    X = np.empty((n, 5))
    X[:, 0] = rng.normal(size=n)
    X[:, 1] = rng.normal(size=n)
    X[:, 2] = 2.0 * X[:, 0] + 0.01 * rng.normal(size=n)
    X[:, 3] = -X[:, 1] + 0.01 * rng.normal(size=n)
    X[:, 4] = rng.normal(size=n)
    y = (X[:, 0] + X[:, 1] + 0.2 * rng.normal(size=n) > 0).astype(float)
    return Dataset.from_arrays(X, y)


@pytest.fixture
def tiny_labeled() -> Dataset:
    """Deterministic 8-row dataset for exact-value assertions."""
    X = np.array(
        [
            [0.0, 10.0],
            [1.0, 9.0],
            [2.0, 8.0],
            [3.0, 7.0],
            [4.0, 6.0],
            [5.0, 5.0],
            [6.0, 4.0],
            [7.0, 3.0],
        ]
    )
    y = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=float)
    return Dataset(X=X, names=("a", "b"), y=y)


def split_train_test(data: Dataset, n_train: int) -> tuple[Dataset, Dataset]:
    """Deterministic prefix/suffix split helper for tests."""
    idx = np.arange(data.n_rows)
    return data.take_rows(idx[:n_train]), data.take_rows(idx[n_train:])
