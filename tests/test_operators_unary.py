"""Tests for unary operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.operators import get_operator


def apply(name: str, x, fit_on=None):
    op = get_operator(name)
    arr = np.asarray(x, dtype=np.float64)
    state = op.fit(np.asarray(fit_on, dtype=np.float64) if fit_on is not None else arr)
    return op.apply(state, arr)


class TestMathTransforms:
    def test_log_signed_and_finite_everywhere(self):
        out = apply("log", [-np.e + 1 - 1e-12, 0.0, np.e - 1])
        assert out[1] == 0.0
        assert out[0] == pytest.approx(-1.0, rel=1e-6)
        assert out[2] == pytest.approx(1.0, rel=1e-6)

    def test_log_monotone(self):
        x = np.linspace(-10, 10, 101)
        out = apply("log", x)
        assert (np.diff(out) > 0).all()

    def test_sqrt_signed(self):
        out = apply("sqrt", [-4.0, 0.0, 9.0])
        assert out.tolist() == [-2.0, 0.0, 3.0]

    def test_square(self):
        assert apply("square", [-3.0, 2.0]).tolist() == [9.0, 4.0]

    def test_sigmoid_range(self):
        out = apply("sigmoid", [-100.0, 0.0, 100.0])
        assert out[0] < 0.01 and out[1] == 0.5 and out[2] > 0.99

    def test_tanh(self):
        assert apply("tanh", [0.0])[0] == 0.0

    def test_round(self):
        assert apply("round", [1.4, 1.6]).tolist() == [1.0, 2.0]

    def test_abs_and_neg(self):
        assert apply("abs", [-2.0])[0] == 2.0
        assert apply("neg", [-2.0])[0] == 2.0

    def test_reciprocal_protected(self):
        out = apply("reciprocal", [0.0, 2.0, -0.5])
        assert out.tolist() == [0.0, 0.5, -2.0]


class TestStatefulNormalizers:
    def test_zscore_standardizes_training_column(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=1000)
        out = apply("zscore", x)
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0, abs=1e-9)

    def test_zscore_applies_training_stats_to_new_data(self):
        op = get_operator("zscore")
        state = op.fit(np.array([0.0, 10.0]))
        out = op.apply(state, np.array([5.0]))
        assert out[0] == pytest.approx(0.0)

    def test_zscore_constant_column_safe(self):
        out = apply("zscore", np.full(5, 7.0))
        assert np.isfinite(out).all()

    def test_minmax_range(self):
        out = apply("minmax", [2.0, 4.0, 6.0])
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_minmax_extrapolates_outside_training_range(self):
        op = get_operator("minmax")
        state = op.fit(np.array([0.0, 10.0]))
        assert op.apply(state, np.array([20.0]))[0] == pytest.approx(2.0)

    def test_stateless_apply_with_none_state(self):
        # Serving robustness: a missing state falls back to identity-ish.
        op = get_operator("zscore")
        out = op.apply(None, np.array([1.0, 2.0]))
        assert np.isfinite(out).all()


class TestDiscretizers:
    def test_eqfreq_codes_are_integers(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        out = apply("disc_eqfreq", x)
        assert np.array_equal(out, np.round(out))
        assert len(np.unique(out)) > 1

    def test_eqfreq_balanced(self):
        x = np.arange(100.0)
        out = apply("disc_eqfreq", x)
        __, counts = np.unique(out, return_counts=True)
        assert counts.max() - counts.min() <= 2

    def test_eqwidth_boundaries(self):
        x = np.linspace(0, 1, 100)
        out = apply("disc_eqwidth", x)
        assert out.min() == 0
        assert len(np.unique(out)) >= 5

    def test_state_serializable(self):
        import json

        op = get_operator("disc_eqfreq")
        state = op.fit(np.arange(50.0))
        json.dumps(state)  # must not raise


class TestZScoreNoiseFloor:
    """Regression: numerically constant columns must not explode.

    ``np.full(n, 0.1)`` has std ~1e-17 — pure summation rounding, not
    spread. Dividing by it used to turn a constant feature into ±1e16
    garbage; the fit now floors std at the float-cancellation noise
    level (the ``pearson_matrix`` recipe) and treats the column as
    constant.
    """

    def test_numerically_constant_column_is_treated_as_constant(self):
        x = np.full(100, 0.1)
        assert 0.0 < x.std() < 1e-15  # the hazard exists on this input
        op = get_operator("zscore")
        state = op.fit(x)
        assert state["std"] == 1.0
        out = op.apply(state, x)
        assert np.abs(out).max() < 1e-12

    def test_large_magnitude_constant_column(self):
        x = np.full(333, 1e6 + 0.1)
        state = get_operator("zscore").fit(x)
        assert state["std"] == 1.0
        assert np.abs(get_operator("zscore").apply(state, x)).max() < 1e-6

    def test_genuine_spread_is_untouched(self):
        rng = np.random.default_rng(7)
        x = rng.normal(scale=0.5, size=200)
        state = get_operator("zscore").fit(x)
        assert state["std"] == pytest.approx(x.std())
        out = get_operator("zscore").apply(state, x)
        assert out.std() == pytest.approx(1.0)
