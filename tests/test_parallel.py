"""Tests for the parallel execution helpers (§IV-E.2)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.selection import information_values_safe
from repro.exceptions import ConfigurationError
from repro.parallel import (
    chunk_indices,
    parallel_information_gains,
    parallel_information_values,
    parallel_map,
    resolve_n_jobs,
)


def square(x: float) -> float:  # module-level: picklable for the pool
    return x * x


class TestResolveNJobs:
    def test_none_is_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_minus_one_uses_cores(self):
        assert resolve_n_jobs(-1) >= 1

    def test_explicit(self):
        assert resolve_n_jobs(3) == 3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(-2)


class TestChunkIndices:
    def test_covers_range_in_order(self):
        chunks = chunk_indices(10, 3)
        flat = np.concatenate(chunks)
        assert flat.tolist() == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(2, 8)
        assert len(chunks) == 2

    def test_empty(self):
        assert chunk_indices(0, 4) == []


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], n_jobs=1) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        assert parallel_map(square, items, n_jobs=2) == [i * i for i in items]

    def test_order_preserved(self):
        out = parallel_map(square, [5, 3, 1], n_jobs=2)
        assert out == [25, 9, 1]


class TestParallelIV:
    def test_matches_serial_exactly(self, rng):
        X = rng.normal(size=(2000, 12))
        y = (X[:, 0] > 0).astype(float)
        serial = information_values_safe(X, y, 10)
        parallel = parallel_information_values(X, y, 10, n_jobs=3)
        assert np.allclose(serial, parallel)

    def test_single_column(self, rng):
        X = rng.normal(size=(200, 1))
        y = (X[:, 0] > 0).astype(float)
        out = parallel_information_values(X, y, 10, n_jobs=4)
        assert out.shape == (1,)

    def test_safe_config_integration(self, interaction_data):
        from repro.core import SAFE, SAFEConfig

        serial = SAFE(SAFEConfig(gamma=15, n_jobs=1)).fit(interaction_data)
        parallel = SAFE(SAFEConfig(gamma=15, n_jobs=2)).fit(interaction_data)
        assert serial.feature_keys == parallel.feature_keys

    def test_invalid_n_jobs_in_config(self):
        from repro.core import SAFEConfig

        with pytest.raises(ConfigurationError):
            SAFEConfig(n_jobs=0)


class TestParallelRedundancy:
    def test_blocked_greedy_matches_serial(self, rng):
        n_groups = 5
        factors = rng.normal(size=(300, n_groups))
        X = factors[:, rng.integers(0, n_groups, size=24)]
        X = X + 0.3 * rng.normal(size=(300, 24))
        ivs = rng.uniform(0, 1, size=24)
        from repro.core import remove_redundant_features

        serial = remove_redundant_features(X, ivs, theta=0.8, block_size=8)
        parallel = remove_redundant_features(
            X, ivs, theta=0.8, block_size=8, n_jobs=2
        )
        assert parallel.tolist() == serial.tolist()

    def test_max_abs_correlation_chunked_matches(self, rng):
        from repro.core.redundancy import max_abs_correlation, standardize_columns
        from repro.parallel import parallel_max_abs_correlation

        Z, z_const = standardize_columns(rng.normal(size=(100, 9)))
        panel, p_const = standardize_columns(rng.normal(size=(100, 5)))
        serial = max_abs_correlation(Z, panel, z_const, p_const)
        parallel = parallel_max_abs_correlation(
            Z, panel, cand_constant=z_const, kept_constant=p_const, n_jobs=3
        )
        assert np.allclose(serial, parallel)


class TestParallelIG:
    def test_matches_serial(self, rng):
        X = rng.normal(size=(800, 8))
        y = (X[:, 1] > 0).astype(float)
        serial = parallel_information_gains(X, y, 10, n_jobs=1)
        parallel = parallel_information_gains(X, y, 10, n_jobs=2)
        assert np.allclose(serial, parallel)
        assert np.argmax(serial) == 1


def raise_value_error(x: float) -> float:  # module-level: picklable
    raise ValueError(f"bad item {x}")


class TestPoolFaultTolerance:
    """_run_pool: retries, serial fallback, and pool-less environments."""

    @pytest.fixture(autouse=True)
    def _clean_runtime(self):
        from repro.parallel import _reset_pool_state, set_retry_policy
        from repro.runtime.failpoints import FAILPOINTS

        FAILPOINTS.reset()
        set_retry_policy(None)
        _reset_pool_state()
        yield
        FAILPOINTS.reset()
        set_retry_policy(None)
        _reset_pool_state()

    def test_transient_fault_is_retried_without_warning(self, recwarn):
        from repro.parallel import set_retry_policy
        from repro.runtime.failpoints import active
        from repro.runtime.retry import RetryPolicy

        set_retry_policy(RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0))
        with active("parallel.pool", mode="once"):
            out = parallel_map(square, [1.0, 2.0, 3.0], n_jobs=2)
        assert out == [1.0, 4.0, 9.0]
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_exhausted_retries_fall_back_to_serial_with_warning(self):
        from repro.parallel import set_retry_policy
        from repro.runtime.failpoints import active
        from repro.runtime.retry import RetryPolicy

        set_retry_policy(RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0))
        with active("parallel.pool", mode="always"):
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                out = parallel_map(square, [1.0, 2.0, 3.0], n_jobs=2)
        assert out == [1.0, 4.0, 9.0]

    def test_pool_less_environment_degrades_once(self, monkeypatch, rng):
        import repro.parallel as par

        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no semaphores here")

        monkeypatch.setattr(par, "ProcessPoolExecutor", NoPool)
        with pytest.warns(RuntimeWarning, match="unavailable"):
            out = parallel_map(square, [1.0, 2.0], n_jobs=2)
        assert out == [1.0, 4.0]
        # The verdict is remembered: later calls go straight to serial
        # without warning again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            X = rng.normal(size=(60, 4))
            y = (X[:, 0] > 0).astype(float)
            serial = parallel_information_values(X, y, 5, n_jobs=1)
            degraded = parallel_information_values(X, y, 5, n_jobs=2)
        assert np.allclose(serial, degraded)

    def test_worker_data_errors_propagate_unretried(self):
        from repro.parallel import set_retry_policy
        from repro.runtime.retry import RetryPolicy

        set_retry_policy(RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
        with pytest.raises(ValueError, match="bad item"):
            parallel_map(raise_value_error, [1.0, 2.0], n_jobs=2)
