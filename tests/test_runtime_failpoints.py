"""The fault-injection substrate: registry, modes, env specs, plant audit."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.exceptions import ConfigurationError, InjectedFault
from repro.runtime.failpoints import (
    ENV_VAR,
    FAILPOINTS,
    KNOWN_SITES,
    Activation,
    active,
    failpoint,
    parse_spec,
)

SRC_ROOT = Path(repro.__file__).resolve().parent


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


class TestRegistry:
    def test_disarmed_site_is_a_noop(self):
        failpoint("parallel.pool")  # must not raise

    def test_unknown_site_rejected_on_activation(self):
        with pytest.raises(ConfigurationError):
            FAILPOINTS.activate("no.such.site")

    def test_unknown_site_rejected_at_the_planted_call(self):
        with pytest.raises(ConfigurationError):
            failpoint("no.such.site")

    def test_activate_and_deactivate(self):
        FAILPOINTS.activate("checkpoint.read")
        with pytest.raises(InjectedFault):
            failpoint("checkpoint.read")
        FAILPOINTS.deactivate("checkpoint.read")
        failpoint("checkpoint.read")

    def test_context_manager_disarms_on_exit(self):
        with active("transform.evaluate"):
            with pytest.raises(InjectedFault):
                failpoint("transform.evaluate")
        failpoint("transform.evaluate")
        assert "transform.evaluate" not in FAILPOINTS.active_sites()

    def test_custom_exception_type(self):
        with active("parallel.pool", raises=OSError):
            with pytest.raises(OSError):
                failpoint("parallel.pool")

    def test_reset_disarms_everything(self):
        FAILPOINTS.activate("parallel.pool")
        FAILPOINTS.activate("checkpoint.write")
        FAILPOINTS.reset()
        assert FAILPOINTS.active_sites() == {}


class TestModes:
    def test_always_fires_every_hit(self):
        with active("generation.operator", mode="always") as act:
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    failpoint("generation.operator")
        assert act.hits == 3 and act.fired == 3

    def test_once_fires_only_the_first_hit(self):
        with active("generation.operator", mode="once") as act:
            with pytest.raises(InjectedFault):
                failpoint("generation.operator")
            failpoint("generation.operator")
            failpoint("generation.operator")
        assert act.fired == 1

    def test_nth_fires_exactly_the_nth_hit(self):
        with active("generation.operator", mode="nth", nth=3) as act:
            failpoint("generation.operator")
            failpoint("generation.operator")
            with pytest.raises(InjectedFault):
                failpoint("generation.operator")
            failpoint("generation.operator")
        assert act.fired == 1 and act.hits == 4

    def test_prob_is_deterministic_given_seed(self):
        def pattern(seed):
            fired = []
            with active(
                "generation.operator", mode="prob", probability=0.5, seed=seed
            ):
                for _ in range(20):
                    try:
                        failpoint("generation.operator")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        assert pattern(42) == pattern(42)
        assert any(pattern(42)) and not all(pattern(42))

    def test_invalid_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            Activation("parallel.pool", mode="sometimes")
        with pytest.raises(ConfigurationError):
            Activation("parallel.pool", mode="nth", nth=0)
        with pytest.raises(ConfigurationError):
            Activation("parallel.pool", mode="prob", probability=1.5)


class TestSpecParsing:
    def test_always_and_once(self):
        assert parse_spec("parallel.pool", "always").mode == "always"
        assert parse_spec("parallel.pool", "once").mode == "once"

    def test_nth(self):
        act = parse_spec("parallel.pool", "nth:4")
        assert act.mode == "nth" and act.nth == 4

    def test_prob_with_and_without_seed(self):
        act = parse_spec("parallel.pool", "prob:0.25")
        assert act.mode == "prob" and act.probability == 0.25 and act.seed == 0
        act = parse_spec("parallel.pool", "prob:0.25:7")
        assert act.seed == 7

    @pytest.mark.parametrize(
        "spec", ["", "nth", "nth:x", "prob", "prob:x", "maybe", "always:2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_spec("parallel.pool", spec)


class TestEnvActivation:
    def test_load_env_arms_sites(self):
        FAILPOINTS.load_env("checkpoint.read=once, transform.evaluate=nth:2")
        sites = FAILPOINTS.active_sites()
        assert sites["checkpoint.read"].mode == "once"
        assert sites["transform.evaluate"].nth == 2

    def test_env_is_read_lazily_on_first_evaluation(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "checkpoint.read=always")
        FAILPOINTS._env_loaded = False
        with pytest.raises(InjectedFault):
            failpoint("checkpoint.read")

    def test_bad_env_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            FAILPOINTS.load_env("checkpoint.read")
        with pytest.raises(ConfigurationError):
            FAILPOINTS.load_env("no.such.site=always")


class TestPlantedSiteAudit:
    """KNOWN_SITES is honest: every name is planted, every plant is known."""

    def test_every_known_site_is_planted_and_vice_versa(self):
        pattern = re.compile(r"""failpoint\(\s*["']([^"']+)["']\s*\)""")
        planted = set()
        for path in SRC_ROOT.rglob("*.py"):
            if "__pycache__" in path.parts or path.name == "failpoints.py":
                continue  # the registry's own docstring shows the syntax
            planted.update(pattern.findall(path.read_text(encoding="utf-8")))
        assert planted == set(KNOWN_SITES)


class TestSiteDocs:
    """Every registered site carries a real docstring, and vice versa."""

    def test_registry_is_backed_by_site_docs(self):
        from repro.runtime.failpoints import SITE_DOCS

        assert set(SITE_DOCS) == set(KNOWN_SITES)

    def test_every_site_doc_is_non_empty_prose(self):
        from repro.runtime.failpoints import SITE_DOCS

        for name, doc in sorted(SITE_DOCS.items()):
            assert isinstance(doc, str) and len(doc.strip()) >= 20, (
                f"site {name!r} needs a meaningful docstring"
            )


class TestKillMode:
    """kill takes the process down only when it is a marked worker."""

    def test_kill_spec_parses(self):
        activation = parse_spec("stream.shard.run", "kill")
        assert activation.mode == "kill" and activation.nth is None
        activation = parse_spec("stream.shard.run", "kill:3")
        assert activation.mode == "kill" and activation.nth == 3

    def test_kill_degrades_to_raise_outside_workers(self):
        # The driver (and the test process) must never be os._exit'd:
        # unmarked processes surface the fault as an InjectedFault, which
        # the shard reducer's retry machinery treats like any crash.
        with active("stream.shard.run", "kill"):
            with pytest.raises(InjectedFault):
                failpoint("stream.shard.run")
        with active("stream.shard.run", "kill", nth=2):
            failpoint("stream.shard.run")  # first hit survives
            with pytest.raises(InjectedFault):
                failpoint("stream.shard.run")

    def test_kill_exits_hard_in_a_marked_worker_process(self):
        import os
        import subprocess
        import sys

        code = (
            "from repro.runtime.failpoints import ("
            "FAILPOINTS, failpoint, mark_worker_process)\n"
            "FAILPOINTS.activate('stream.shard.run', 'kill')\n"
            "mark_worker_process()\n"
            "failpoint('stream.shard.run')\n"
            "print('unreachable')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT.parent)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 86
        assert "unreachable" not in result.stdout


class TestSpecErrors:
    """Malformed specs fail loudly, with the offending entry named."""

    @pytest.mark.parametrize(
        "spec", ["", "nth", "nth:x", "nth:0", "prob:2.0", "maybe", "always:2"]
    )
    def test_typed_error_names_the_offending_spec(self, spec):
        from repro.exceptions import FailpointSpecError

        with pytest.raises(FailpointSpecError) as excinfo:
            parse_spec("parallel.pool", spec)
        message = str(excinfo.value)
        assert "parallel.pool" in message
        assert repr(spec) in message

    def test_spec_error_is_a_configuration_error(self):
        from repro.exceptions import FailpointSpecError

        # callers catching ConfigurationError keep working
        assert issubclass(FailpointSpecError, ConfigurationError)

    def test_env_entry_without_equals_names_the_entry(self):
        from repro.exceptions import FailpointSpecError

        with pytest.raises(FailpointSpecError, match="checkpoint.read"):
            FAILPOINTS.load_env("checkpoint.read")

    def test_load_env_is_atomic_on_bad_entry(self):
        """A bad entry arms *nothing* — no partially-applied fault plans."""
        from repro.exceptions import FailpointSpecError

        with pytest.raises(FailpointSpecError):
            FAILPOINTS.load_env("checkpoint.read=once, transform.evaluate=nth:x")
        assert FAILPOINTS.active_sites() == {}
        failpoint("checkpoint.read")  # must not raise

    def test_load_env_atomic_on_unknown_site_too(self):
        with pytest.raises(ConfigurationError):
            FAILPOINTS.load_env("checkpoint.read=once, no.such.site=always")
        assert FAILPOINTS.active_sites() == {}
