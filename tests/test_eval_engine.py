"""Tests for the CSE-cached forest-evaluation engine.

The engine (``repro.operators.engine``) must be *bit-identical* to the
audited scalar reference (``Expression.evaluate`` /
``evaluate_expressions``) — these tests assert exact equality, not
closeness — while computing every distinct subtree once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generation import Combination, RankedCombination, generate_features
from repro.exceptions import SchemaError
from repro.operators import (
    Applied,
    EvalCache,
    Operator,
    Var,
    evaluate_expressions,
    evaluate_forest,
    fit_applied,
    get_operator,
    register_operator,
)
from repro.operators.base import _REGISTRY


def identical(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(a, b, equal_nan=True)


@pytest.fixture
def X(rng):
    X = rng.normal(size=(120, 6))
    X[3, 1] = np.nan
    X[5, 2] = np.inf
    X[9, 3] = -np.inf
    return X


def build_forest(X):
    """A forest mixing stateless, stateful, learned, and domain operators
    with heavily shared subtrees."""
    shared = Applied("mul", (Var(0), Var(1)))
    logx2 = Applied("log", (Var(2),))
    forest = [
        Var(0),
        shared,
        Applied("add", (shared, logx2)),
        Applied("div", (shared, Var(3))),
        Applied("div", (Var(3), shared)),
        Applied("max3", (shared, logx2, Var(4))),
        Applied("cond", (Var(5), shared, logx2)),
        fit_applied("zscore", (shared,), X),
        fit_applied("minmax", (logx2,), X),
        fit_applied("disc_eqfreq", (Var(4),), X),
        fit_applied("groupby_avg", (Var(0), Var(1)), X),
        fit_applied("groupby_std", (shared, Var(2)), X),
        fit_applied("groupby_count", (Var(3), shared), X),
        fit_applied("ridge", (Var(0), Var(4)), X),
        fit_applied("ridge_residual", (shared, Var(4)), X),
        fit_applied("kernel_ridge", (Var(1), Var(5)), X),
        fit_applied("lag1", (shared,), X),
        fit_applied("diff1", (logx2,), X),
        fit_applied("rolling_mean5", (Var(2),), X),
        fit_applied("ewm", (shared,), X),
    ]
    return forest


class TestForestEquivalence:
    def test_bit_identical_to_scalar_reference(self, X):
        forest = build_forest(X)
        assert identical(evaluate_forest(forest, X), evaluate_expressions(forest, X))

    def test_fresh_matrix_with_nans(self, X, rng):
        forest = build_forest(X)
        X_new = rng.normal(size=(40, 6))
        X_new[0, 0] = np.nan
        assert identical(
            evaluate_forest(forest, X_new), evaluate_expressions(forest, X_new)
        )

    def test_single_row_serving(self, X):
        forest = build_forest(X)
        row = X[7]
        out = evaluate_forest(forest, row)
        assert out.shape == (1, len(forest))
        assert identical(out, evaluate_expressions(forest, row))

    def test_empty_forest(self, X):
        assert evaluate_forest([], X).shape == (X.shape[0], 0)

    def test_schema_error_on_missing_column(self, X):
        with pytest.raises(SchemaError):
            evaluate_forest([Var(99)], X)

    def test_requires_matrix_or_cache(self):
        with pytest.raises(ValueError):
            evaluate_forest([Var(0)])


class TestEvalCache:
    def test_duplicate_subtrees_computed_once(self, X):
        shared = Applied("mul", (Var(0), Var(1)))
        forest = [
            Applied("add", (shared, Var(2))),
            Applied("sub", (shared, Var(3))),
            Applied("log", (shared,)),
            Applied("div", (shared, Applied("mul", (Var(0), Var(1))))),
        ]
        cache = EvalCache(X)
        evaluate_forest(forest, cache=cache)
        # Distinct keys: shared, x0..x3, and the 4 roots — nothing more,
        # even though `shared` appears five times (once as a fresh object).
        assert len(cache) == 1 + 4 + 4

    def test_float64_cast_done_once(self):
        X32 = np.arange(12, dtype=np.float32).reshape(4, 3)
        cache = EvalCache(X32)
        assert cache.X.dtype == np.float64
        assert identical(cache.column(Var(2)), X32[:, 2].astype(np.float64))

    def test_state_mismatch_recomputes(self, rng):
        X_a = rng.normal(size=(50, 2))
        X_b = X_a + 10.0
        e_a = fit_applied("zscore", (Var(0),), X_a)
        e_b = fit_applied("zscore", (Var(0),), X_b)
        assert e_a.key == e_b.key and e_a.state != e_b.state
        cache = EvalCache(X_a)
        col_a = cache.column(e_a).copy()
        col_b = cache.column(e_b)
        assert identical(col_a, e_a.evaluate(X_a))
        assert identical(col_b, e_b.evaluate(X_a))
        assert not identical(col_a, col_b)

    def test_descendant_state_mismatch_recomputes(self, rng):
        # The guard must cover fitted state anywhere in the tree, not
        # just at the root: these two trees share key and root state.
        X_a = rng.normal(size=(50, 2))
        X_b = X_a + 10.0
        e_a = Applied("add", (fit_applied("zscore", (Var(0),), X_a), Var(1)))
        e_b = Applied("add", (fit_applied("zscore", (Var(0),), X_b), Var(1)))
        assert e_a.key == e_b.key and e_a.state == e_b.state
        cache = EvalCache(X_a)
        block = evaluate_forest([e_a, e_b], cache=cache)
        assert identical(block[:, 0], e_a.evaluate(X_a))
        assert identical(block[:, 1], e_b.evaluate(X_a))
        assert not identical(block[:, 0], block[:, 1])

    def test_rejects_matrix_and_cache_together(self, X):
        with pytest.raises(ValueError):
            evaluate_forest([Var(0)], X, cache=EvalCache(X))

    def test_retain_prunes_unreachable(self, X):
        keep = Applied("add", (Var(0), Var(1)))
        drop = Applied("mul", (Var(2), Var(3)))
        cache = EvalCache(X)
        evaluate_forest([keep, drop], cache=cache)
        cache.retain([keep])
        assert keep in cache and drop not in cache
        assert Var(0) in cache and Var(2) not in cache

    def test_third_party_expression_subclass_falls_back(self, X):
        from repro.operators import Expression

        class Constant(Expression):  # minimal exotic node: ignores the matrix
            def evaluate(self, M):
                M = np.asarray(M, dtype=np.float64)
                if M.ndim == 1:
                    M = M.reshape(1, -1)
                return np.full(M.shape[0], 7.0)

            def name(self, column_names=None):
                return "const7"

            def to_dict(self):
                return {"type": "const7"}

            def original_indices(self):
                return frozenset()

            def depth(self):
                return 0

        forest = [Applied("add", (Constant(), Var(1)))]
        assert identical(
            evaluate_forest(forest, X), evaluate_expressions(forest, X)
        )


class TestKeyCaching:
    def test_key_precomputed_at_construction(self):
        expr = Applied("div", (Var(0), Applied("log", (Var(1),))))
        assert expr.__dict__["_key"] == "(x0 / log(x1))"
        assert expr.key == "(x0 / log(x1))"

    def test_key_matches_name_rendering(self, X):
        expr = fit_applied("groupby_avg", (Var(0), Var(1)), X)
        assert expr.key == expr.name(None)

    def test_roundtrip_preserves_key(self):
        from repro.operators import expression_from_dict

        expr = Applied("sub", (Applied("sqrt", (Var(3),)), Var(0)))
        assert expression_from_dict(expr.to_dict()).key == expr.key


def _ranked(*feature_tuples):
    return [
        RankedCombination(
            combination=Combination(
                features=f, split_values=tuple(() for _ in f)
            ),
            gain_ratio=1.0 - 0.01 * i,
        )
        for i, f in enumerate(feature_tuples)
    ]


OPS = ("add", "sub", "mul", "div", "log", "zscore", "groupby_avg", "ridge")


def scalar_generate(ranked, operator_names, base, X, existing):
    """The seed's per-arrangement fit_applied loop, kept as the oracle."""
    from repro.core.generation import _arrangements
    from repro.operators import resolve_operators

    by_arity: dict[int, list] = {}
    for op in resolve_operators(operator_names):
        by_arity.setdefault(op.arity, []).append(op)
    seen = set(existing)
    out = []
    for item in ranked:
        combo = item.combination
        for op in by_arity.get(combo.size, []):
            for arrangement in _arrangements(combo.features, op):
                children = tuple(base[f] for f in arrangement)
                expr = fit_applied(op, children, X)
                if expr.key in seen:
                    continue
                seen.add(expr.key)
                out.append(expr)
    return out


class TestBatchedGeneration:
    def test_matches_scalar_reference_exactly(self, X):
        base = [Var(i) for i in range(6)]
        ranked = _ranked((0, 1), (2,), (2, 3), (4, 5), (1,))
        expected = scalar_generate(ranked, OPS, base, X, set())
        cache = EvalCache(X)
        got = generate_features(ranked, OPS, base, X, set(), cache=cache)
        assert [e.key for e in got] == [e.key for e in expected]
        assert [e.state for e in got] == [e.state for e in expected]
        assert identical(
            evaluate_forest(got, cache=cache), evaluate_expressions(expected, X)
        )

    def test_deep_base_expressions(self, X):
        # Iteration >= 1: bases are composed trees sharing subtrees.
        shared = Applied("mul", (Var(0), Var(1)))
        base = [
            Applied("add", (shared, Var(2))),
            Applied("log", (shared,)),
            fit_applied("zscore", (Var(3),), X),
            Var(4),
        ]
        ranked = _ranked((0, 1), (1, 2), (3,))
        expected = scalar_generate(ranked, OPS, base, X, set())
        got = generate_features(ranked, OPS, base, X, set())
        assert [e.key for e in got] == [e.key for e in expected]
        assert [e.state for e in got] == [e.state for e in expected]
        assert identical(
            evaluate_forest(got, X), evaluate_expressions(expected, X)
        )

    def test_dedup_against_existing_keys(self, X):
        base = [Var(i) for i in range(6)]
        ranked = _ranked((0, 1))
        got = generate_features(
            ranked, ("add", "mul"), base, X, existing_keys={"(x0 + x1)"}
        )
        assert [e.key for e in got] == ["(x0 * x1)"]

    def test_generated_columns_land_in_cache(self, X):
        base = [Var(i) for i in range(6)]
        cache = EvalCache(X)
        got = generate_features(_ranked((0, 1)), ("add", "div"), base, X, set(),
                                cache=cache)
        for expr in got:
            assert expr in cache
            assert identical(cache.column(expr), expr.evaluate(X))

    def test_non_batchable_stateless_operator_falls_back(self, X):
        class ShareOfTotalOp(Operator):
            """Row-aggregating stateless op: NOT columnwise-batchable.

            Relies on the conservative ``batchable = False`` default —
            an extension that never heard of batching must stay correct.
            """

            name = "share_of_total_test"
            arity = 1
            symbol = "share_of_total_test"

            def apply(self, state, x):
                total = np.nansum(np.abs(x))
                return x / total if total else np.zeros_like(x)

        try:
            register_operator(ShareOfTotalOp())
            base = [Var(i) for i in range(6)]
            ranked = _ranked((0,), (4,))
            ops = ("share_of_total_test", "log")
            expected = scalar_generate(ranked, ops, base, X, set())
            got = generate_features(ranked, ops, base, X, set())
            assert [e.key for e in got] == [e.key for e in expected]
            assert identical(
                evaluate_forest(got, X), evaluate_expressions(expected, X)
            )
        finally:
            _REGISTRY.pop("share_of_total_test", None)

    def test_n_jobs_2_parity(self, X):
        base = [Var(i) for i in range(6)]
        ranked = _ranked((0, 1), (2,), (2, 3), (4, 5), (1,), (0, 5), (3,))
        serial = generate_features(ranked, OPS, base, X, set())
        par = generate_features(ranked, OPS, base, X, set(), n_jobs=2)
        assert [e.key for e in par] == [e.key for e in serial]
        assert [e.state for e in par] == [e.state for e in serial]
        assert identical(
            evaluate_forest(par, X), evaluate_forest(serial, X)
        )

    def test_n_jobs_2_repopulates_supplied_cache(self, X):
        # The parent's cache must hold batched columns after a parallel
        # run, so downstream forest evaluation stays vectorized.
        base = [Var(i) for i in range(6)]
        ranked = _ranked((0, 1), (2, 3), (4,))
        cache = EvalCache(X)
        par = generate_features(ranked, OPS, base, X, set(),
                                cache=cache, n_jobs=2)
        stateless = [e for e in par if e.state is None
                     and not e.operator.is_stateful]
        assert stateless
        for expr in stateless:
            assert expr in cache
            assert identical(cache.column(expr), expr.evaluate(X))


class TestOperatorIntrospection:
    def test_is_stateful_flags(self):
        assert not get_operator("add").is_stateful
        assert not get_operator("cond").is_stateful
        assert get_operator("zscore").is_stateful
        assert get_operator("groupby_avg").is_stateful
        assert get_operator("ridge").is_stateful
        assert get_operator("lag1").is_stateful

    def test_builtin_stateless_ops_are_2d_safe(self, X):
        # The batchable=True contract: apply on an (n, m) block equals m
        # independent 1-D applies, for every registered stateless op.
        from repro.operators import available_operators

        n = X.shape[0]
        for name in available_operators():
            op = get_operator(name)
            if op.is_stateful or not op.batchable:
                continue
            cols = [np.ascontiguousarray(X[:, a % 6]) for a in range(op.arity)]
            blocks = [np.stack([c, c[::-1]], axis=1) for c in cols]
            batch = np.asarray(op.apply(None, *blocks), dtype=np.float64)
            assert batch.shape == (n, 2), name
            one = np.asarray(op.apply(None, *cols), dtype=np.float64)
            rev = np.asarray(
                op.apply(None, *[c[::-1] for c in cols]), dtype=np.float64
            )
            assert identical(batch[:, 0], one), name
            assert identical(batch[:, 1], rev), name
