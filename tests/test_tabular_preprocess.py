"""Tests for repro.tabular.preprocess."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.tabular import MeanImputer, MinMaxScaler, StandardScaler, clean_matrix


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(3.0, 2.0, size=(500, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.column_stack([np.full(10, 5.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[5.0]]))
        assert out[0, 0] == pytest.approx(0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range_01(self):
        X = np.random.default_rng(0).uniform(-5, 7, size=(100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0
        assert Z.max() <= 1.0

    def test_constant_column_safe(self):
        Z = MinMaxScaler().fit_transform(np.full((5, 1), 2.0))
        assert np.allclose(Z, 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestMeanImputer:
    def test_fills_with_column_mean(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 6.0]])
        out = MeanImputer().fit_transform(X)
        assert out[2, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(5.0)

    def test_all_nan_column_fills_zero(self):
        X = np.array([[np.nan], [np.nan]])
        out = MeanImputer().fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_inf_treated_as_missing(self):
        X = np.array([[np.inf], [2.0], [4.0]])
        out = MeanImputer().fit_transform(X)
        assert out[0, 0] == pytest.approx(3.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MeanImputer().transform(np.ones((2, 2)))


class TestCleanMatrix:
    def test_replaces_nonfinite(self):
        X = np.array([[np.nan, np.inf], [-np.inf, 1.0]])
        out = clean_matrix(X)
        assert np.isfinite(out).all()
        assert out[1, 1] == 1.0

    def test_clips_extremes(self):
        out = clean_matrix(np.array([[1e300, -1e300]]))
        assert out.max() <= 1e12
        assert out.min() >= -1e12

    def test_does_not_mutate_input(self):
        X = np.array([[np.nan, 1.0]])
        clean_matrix(X)
        assert np.isnan(X[0, 0])

    def test_copy_false_sanitizes_in_place(self):
        X = np.asfortranarray([[np.nan, 1e300], [2.0, -np.inf]])
        out = clean_matrix(X, copy=False)
        assert out is X  # no copy: same buffer, layout preserved
        assert np.isfinite(X).all()
        assert X[0, 1] == 1e12 and X[0, 0] == 0.0

    def test_copy_false_on_non_float_input_still_converts(self):
        X = np.array([[1, 2], [3, 4]], dtype=np.int64)
        out = clean_matrix(X, copy=False)
        assert out.dtype == np.float64
        assert X[0, 0] == 1  # original untouched by the dtype conversion
