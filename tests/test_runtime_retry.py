"""RetryPolicy: validation, deterministic schedules, call semantics."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, RetryExhaustedError
from repro.runtime.retry import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -0.1},
            {"backoff": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"per_attempt_timeout": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestDelays:
    def test_first_attempt_has_no_delay(self):
        assert next(iter(RetryPolicy().delays())) == 0.0

    def test_one_delay_per_attempt(self):
        assert len(list(RetryPolicy(max_attempts=5).delays())) == 5

    def test_geometric_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, backoff=2.0, max_delay=10.0, jitter=0.0
        )
        assert list(policy.delays()) == [0.0, 0.1, 0.2, 0.4]

    def test_max_delay_clamps_before_jitter(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, backoff=10.0, max_delay=2.0, jitter=0.25
        )
        for delay in policy.delays():
            assert delay <= 2.0 * 1.25 + 1e-12

    def test_schedule_is_deterministic_given_seed(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert list(policy.delays()) == list(policy.delays())

    def test_different_seeds_give_different_jitter(self):
        a = list(RetryPolicy(max_attempts=6, seed=1).delays())
        b = list(RetryPolicy(max_attempts=6, seed=2).delays())
        assert a != b


class TestCall:
    def test_success_on_first_attempt(self):
        calls = []
        policy = RetryPolicy(max_attempts=3)
        result = policy.call(lambda: calls.append(1) or "ok", sleep=lambda s: None)
        assert result == "ok" and len(calls) == 1

    def test_retries_then_succeeds(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "recovered"

        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        slept = []
        assert policy.call(flaky, sleep=slept.append) == "recovered"
        assert attempts["n"] == 3
        assert slept == [0.01, 0.02]

    def test_exhaustion_raises_with_cause(self):
        def always_fails():
            raise OSError("down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always_fails, sleep=lambda s: None)
        assert isinstance(excinfo.value.__cause__, OSError)
        assert "2 attempt(s)" in str(excinfo.value)

    def test_non_retryable_exception_propagates_immediately(self):
        attempts = {"n": 0}

        def data_error():
            attempts["n"] += 1
            raise ValueError("bad data")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        with pytest.raises(ValueError):
            policy.call(data_error, retry_on=(OSError,), sleep=lambda s: None)
        assert attempts["n"] == 1

    def test_single_attempt_policy_never_retries(self):
        attempts = {"n": 0}

        def fails():
            attempts["n"] += 1
            raise OSError("boom")

        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=1).call(fails, sleep=lambda s: None)
        assert attempts["n"] == 1

    def test_arguments_are_forwarded(self):
        policy = RetryPolicy(max_attempts=1)
        assert policy.call(lambda a, b=0: a + b, 2, b=3, sleep=lambda s: None) == 5
