"""Tests for the classification tree (DT and the forests' base learner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.metrics import roc_auc_score
from repro.models import ClassificationTree, DecisionTreeClassifier


class TestFit:
    def test_axis_aligned_boundary(self, rng):
        X = rng.normal(size=(500, 3))
        y = (X[:, 1] > 0.3).astype(float)
        tree = ClassificationTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert (pred == y).mean() > 0.95

    def test_entropy_criterion(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(float)
        tree = ClassificationTree(criterion="entropy", max_depth=3).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.9

    def test_unknown_criterion(self):
        with pytest.raises(ConfigurationError):
            ClassificationTree(criterion="mse")

    def test_unknown_splitter(self):
        with pytest.raises(ConfigurationError):
            ClassificationTree(splitter="bogus")

    def test_single_class_rejected(self, rng):
        X = rng.normal(size=(20, 2))
        with pytest.raises(DataError):
            ClassificationTree().fit(X, np.ones(20))

    def test_max_depth_one_is_stump(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] > 0).astype(float)
        tree = ClassificationTree(max_depth=1).fit(X, y)
        assert tree.n_leaves == 2

    def test_min_samples_leaf_bounds_leaves(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + 0.5 * rng.normal(size=200) > 0).astype(float)
        tree = ClassificationTree(min_samples_leaf=50).fit(X, y)
        assert tree.n_leaves <= 4

    def test_unbounded_depth_fits_training_set(self, rng):
        X = rng.normal(size=(300, 5))
        y = (rng.random(300) < 0.5).astype(float)
        tree = DecisionTreeClassifier().fit(X, y)  # default: no depth cap
        # Random labels on continuous features: deep tree should fit well.
        assert (tree.predict(X) == y).mean() > 0.9


class TestSampleWeights:
    def test_weights_shift_the_boundary(self, rng):
        X = np.linspace(-1, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0).astype(float)
        # Weight the positive class heavily: the root proba of a stump's
        # positive leaf stays 1, but weighted fit must still split at 0.
        w = np.where(y == 1, 10.0, 1.0)
        tree = ClassificationTree(max_depth=1).fit(X, y, sample_weight=w)
        proba = tree.predict_proba(np.array([[0.5], [-0.5]]))[:, 1]
        assert proba[0] > 0.9
        assert proba[1] < 0.5

    def test_zero_weight_rows_ignored(self, rng):
        X = rng.normal(size=(300, 1))
        y_true = (X[:, 0] > 0).astype(float)
        y = y_true.copy()
        # Corrupt half the labels but give corrupted rows zero weight.
        corrupt = rng.random(300) < 0.5
        y[corrupt] = 1 - y[corrupt]
        w = np.where(corrupt, 0.0, 1.0)
        tree = ClassificationTree(max_depth=2).fit(X, y, sample_weight=w)
        pred = tree.predict(X)
        assert (pred == y_true).mean() > 0.9

    def test_weight_length_checked(self, rng):
        X = rng.normal(size=(10, 1))
        y = (X[:, 0] > 0).astype(float)
        with pytest.raises(ConfigurationError):
            ClassificationTree().fit(X, y, sample_weight=np.ones(5))


class TestRandomSplitter:
    def test_still_learns(self, rng):
        X = rng.normal(size=(800, 3))
        y = (X[:, 2] > 0).astype(float)
        tree = ClassificationTree(splitter="random", max_depth=6, random_state=0).fit(X, y)
        auc = roc_auc_score(y, tree.predict_proba(X)[:, 1])
        assert auc > 0.85

    def test_seed_controls_structure(self, rng):
        X = rng.normal(size=(400, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        t1 = ClassificationTree(splitter="random", random_state=1, max_depth=4).fit(X, y)
        t2 = ClassificationTree(splitter="random", random_state=1, max_depth=4).fit(X, y)
        assert np.array_equal(t1.feature_, t2.feature_)


class TestMaxFeatures:
    @pytest.mark.parametrize("mf,expected", [("sqrt", 4), ("log2", 4), (5, 5), (0.5, 8), (None, 16)])
    def test_resolution(self, mf, expected):
        from repro.models.tree import _resolve_max_features

        assert _resolve_max_features(mf, 16) == expected

    def test_invalid_string(self):
        from repro.models.tree import _resolve_max_features

        with pytest.raises(ConfigurationError):
            _resolve_max_features("cube", 10)

    def test_invalid_fraction(self):
        from repro.models.tree import _resolve_max_features

        with pytest.raises(ConfigurationError):
            _resolve_max_features(1.5, 10)


class TestPredict:
    def test_proba_in_range(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(float)
        tree = ClassificationTree(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (200, 2)
        assert (proba >= 0).all() and (proba <= 1).all()
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ClassificationTree().predict(np.ones((2, 2)))

    def test_width_mismatch(self, rng):
        X = rng.normal(size=(50, 3))
        y = (X[:, 0] > 0).astype(float)
        tree = ClassificationTree(max_depth=2).fit(X, y)
        with pytest.raises(DataError):
            tree.predict(X[:, :2])

    def test_importances_sum_to_one(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] - X[:, 2] > 0).astype(float)
        tree = ClassificationTree(max_depth=4).fit(X, y)
        imp = tree.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert imp[1] <= max(imp[0], imp[2])
