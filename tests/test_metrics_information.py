"""Tests for repro.metrics.information (IV, Pearson, entropy, gain ratio)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.metrics import (
    DEFAULT_IV_THRESHOLD,
    DEFAULT_PEARSON_THRESHOLD,
    cells_from_split_values,
    entropy,
    information_gain,
    information_gain_ratio,
    information_value,
    information_values,
    iv_predictive_power,
    partition_entropy,
    pearson_correlation,
    pearson_matrix,
)


class TestInformationValue:
    def test_strong_predictor_has_high_iv(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        y = (x + 0.3 * rng.normal(size=5000) > 0).astype(float)
        assert information_value(x, y) > 0.5

    def test_noise_has_low_iv(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=5000)
        y = rng.integers(0, 2, size=5000).astype(float)
        assert information_value(x, y) < 0.05

    def test_iv_nonnegative_in_practice(self):
        rng = np.random.default_rng(2)
        for __ in range(5):
            x = rng.normal(size=300)
            y = rng.integers(0, 2, size=300).astype(float)
            assert information_value(x, y) >= 0.0

    def test_monotone_transform_invariance(self):
        # Equal-frequency binning is rank-based, so IV is invariant to
        # strictly monotone transforms.
        rng = np.random.default_rng(3)
        x = rng.normal(size=2000)
        y = (x > 0.5).astype(float)
        a = information_value(x, y, n_bins=8)
        b = information_value(np.exp(x), y, n_bins=8)
        assert a == pytest.approx(b, rel=1e-9)

    def test_single_class_raises(self):
        with pytest.raises(DataError):
            information_value(np.arange(10.0), np.ones(10))

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            information_value(np.arange(5.0), np.zeros(4))

    def test_paper_thresholds(self):
        assert DEFAULT_IV_THRESHOLD == 0.1
        assert DEFAULT_PEARSON_THRESHOLD == 0.8


class TestIvBands:
    @pytest.mark.parametrize(
        "iv,label",
        [
            (0.01, "useless"),
            (0.05, "weak"),
            (0.2, "medium"),
            (0.4, "strong"),
            (0.9, "extremely strong"),
        ],
    )
    def test_table1_bands(self, iv, label):
        assert iv_predictive_power(iv) == label

    def test_negative_raises(self):
        with pytest.raises(DataError):
            iv_predictive_power(-0.1)


class TestInformationValues:
    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(500, 3))
        y = (X[:, 0] > 0).astype(float)
        vec = information_values(X, y)
        for j in range(3):
            assert vec[j] == pytest.approx(information_value(X[:, j], y))

    def test_informative_column_ranks_first(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(2000, 3))
        y = (X[:, 1] > 0).astype(float)
        vec = information_values(X, y)
        assert np.argmax(vec) == 1


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=100), rng.normal(size=100)
        assert pearson_correlation(a, b) == pytest.approx(pearson_correlation(b, a))

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            pearson_correlation([1.0], [2.0])

    def test_matrix_matches_pairwise(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(200, 4))
        X[:, 3] = X[:, 0] * 2 + 0.01 * rng.normal(size=200)
        corr = pearson_matrix(X)
        assert corr.shape == (4, 4)
        assert np.allclose(np.diag(corr), 1.0)
        assert corr[0, 3] == pytest.approx(
            pearson_correlation(X[:, 0], X[:, 3]), abs=1e-9
        )
        assert corr[0, 3] > 0.99

    def test_matrix_constant_column_zeroed(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        corr = pearson_matrix(X)
        assert corr[0, 1] == 0.0
        assert corr[1, 0] == 0.0  # zeroing is symmetric
        # The diagonal is restored to 1.0 *after* the constant zeroing.
        assert corr[0, 0] == 1.0 and corr[1, 1] == 1.0

    def test_near_constant_scalar_matches_matrix(self):
        # A column whose spread is pure float-cancellation noise: the
        # matrix path zeroes it via the noise floor; the scalar path must
        # agree instead of returning summation-order noise.
        rng = np.random.default_rng(8)
        near_constant = 1e8 + 1e-7 * rng.normal(size=100)
        other = rng.normal(size=100)
        assert near_constant.std() > 0  # not exactly constant
        X = np.column_stack([near_constant, other])
        assert pearson_matrix(X)[0, 1] == 0.0
        assert pearson_correlation(near_constant, other) == 0.0

    def test_scalar_matrix_parity_on_regular_data(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(150, 3))
        corr = pearson_matrix(X)
        for i in range(3):
            for j in range(3):
                assert corr[i, j] == pytest.approx(
                    pearson_correlation(X[:, i], X[:, j]), abs=1e-9
                )


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.zeros(10)) == 0.0

    def test_balanced_binary_is_ln2(self):
        y = np.array([0, 1] * 50)
        assert entropy(y) == pytest.approx(np.log(2))

    def test_empty_is_zero(self):
        assert entropy(np.empty(0)) == 0.0

    def test_uniform_k_classes(self):
        y = np.repeat(np.arange(4), 25)
        assert entropy(y) == pytest.approx(np.log(4))


class TestPartitionEntropy:
    def test_perfect_partition_zero(self):
        y = np.array([0, 0, 1, 1], dtype=float)
        cells = np.array([0, 0, 1, 1])
        assert partition_entropy(y, cells) == pytest.approx(0.0)

    def test_useless_partition_keeps_entropy(self):
        y = np.array([0, 1, 0, 1], dtype=float)
        cells = np.array([0, 0, 1, 1])
        assert partition_entropy(y, cells) == pytest.approx(np.log(2))

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            partition_entropy(np.zeros(3), np.zeros(2))


class TestCellsFromSplitValues:
    def test_single_feature_intervals(self):
        X = np.array([[0.0], [1.5], [3.0]])
        cells = cells_from_split_values(X, [0], [np.array([1.0, 2.0])])
        assert cells.tolist() == [0, 1, 2]

    def test_two_features_cross_product(self):
        X = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
        cells = cells_from_split_values(
            X, [0, 1], [np.array([1.0]), np.array([1.0])]
        )
        assert len(np.unique(cells)) == 4

    def test_duplicate_split_values_deduped(self):
        X = np.array([[0.0], [2.0]])
        a = cells_from_split_values(X, [0], [np.array([1.0, 1.0])])
        b = cells_from_split_values(X, [0], [np.array([1.0])])
        assert np.array_equal(a, b)

    def test_mismatched_args_raise(self):
        with pytest.raises(ConfigurationError):
            cells_from_split_values(np.ones((2, 2)), [0, 1], [np.array([1.0])])

    def test_empty_features_raise(self):
        with pytest.raises(ConfigurationError):
            cells_from_split_values(np.ones((2, 2)), [], [])


class TestGainRatio:
    def test_informative_partition_has_positive_gain(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=1000)
        y = (x > 0).astype(float)
        cells = (x > 0).astype(int)
        assert information_gain(y, cells) > 0.5
        assert information_gain_ratio(y, cells) > 0.5

    def test_gain_ratio_penalizes_fragmentation(self):
        # A partition into n singleton cells has gain == entropy but a huge
        # split info, so the ratio must be well below 1.
        rng = np.random.default_rng(9)
        y = rng.integers(0, 2, size=256).astype(float)
        fragmented = np.arange(256)
        assert information_gain_ratio(y, fragmented) < 0.2

    def test_trivial_partition_zero_ratio(self):
        y = np.array([0, 1, 0, 1], dtype=float)
        assert information_gain_ratio(y, np.zeros(4, dtype=int)) == 0.0

    def test_gain_never_negative(self):
        rng = np.random.default_rng(10)
        y = rng.integers(0, 2, size=100).astype(float)
        cells = rng.integers(0, 5, size=100)
        assert information_gain(y, cells) >= 0.0
