"""Tests for repro.boosting.histogram split finding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import best_split_for_feature, feature_histogram, split_gain
from repro.exceptions import DataError


class TestFeatureHistogram:
    def test_sums_match(self):
        codes = np.array([0, 1, 1, 2])
        grad = np.array([1.0, 2.0, 3.0, 4.0])
        hess = np.ones(4)
        g, h, c = feature_histogram(codes, grad, hess, n_bins=4)
        assert g.tolist() == [1.0, 5.0, 4.0, 0.0]
        assert h.tolist() == [1.0, 2.0, 1.0, 0.0]
        assert c.tolist() == [1, 2, 1, 0]

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            feature_histogram(np.zeros(3, dtype=int), np.zeros(2), np.zeros(3), 2)


class TestSplitGain:
    def test_zero_gain_for_homogeneous_gradient(self):
        # If left/right have proportional grad/hess the gain is ~0.
        gl = np.array([5.0])
        hl = np.array([5.0])
        gain = split_gain(gl, hl, g_total=10.0, h_total=10.0, reg_lambda=0.0, gamma=0.0)
        assert gain[0] == pytest.approx(0.0, abs=1e-12)

    def test_opposite_gradients_give_positive_gain(self):
        gain = split_gain(
            np.array([-5.0]), np.array([5.0]),
            g_total=0.0, h_total=10.0, reg_lambda=1.0, gamma=0.0,
        )
        assert gain[0] > 0

    def test_gamma_subtracts(self):
        args = (np.array([-5.0]), np.array([5.0]), 0.0, 10.0, 1.0)
        g0 = split_gain(*args, gamma=0.0)[0]
        g1 = split_gain(*args, gamma=1.0)[0]
        assert g1 == pytest.approx(g0 - 1.0)


class TestBestSplitForFeature:
    def test_finds_informative_boundary(self):
        # Gradients flip sign exactly between code 4 and 5.
        codes = np.repeat(np.arange(10), 20)
        grad = np.where(codes < 5, -1.0, 1.0)
        hess = np.ones_like(grad)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=11,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is not None
        assert cand.bin_index == 4
        assert cand.n_left == 100
        assert cand.n_right == 100

    def test_no_split_when_pure(self):
        codes = np.repeat(np.arange(4), 10)
        grad = np.ones(40)
        hess = np.ones(40)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=5,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_min_samples_leaf_respected(self):
        codes = np.array([0] * 2 + [1] * 98)
        grad = np.where(codes == 0, -10.0, 1.0)
        hess = np.ones(100)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=3,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=5,
        )
        assert cand is None  # the only useful split isolates 2 < 5 rows

    def test_min_child_weight_respected(self):
        codes = np.array([0] * 50 + [1] * 50)
        grad = np.where(codes == 0, -1.0, 1.0)
        hess = np.full(100, 0.001)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=3,
            reg_lambda=1.0, gamma=0.0, min_child_weight=1.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_single_bin_returns_none(self):
        cand = best_split_for_feature(
            np.zeros(10, dtype=int), np.ones(10), np.ones(10), n_bins=1,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_child_stats_add_up(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 8, size=200)
        grad = rng.normal(size=200)
        hess = np.abs(rng.normal(size=200)) + 0.1
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=9,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        if cand is not None:
            assert cand.grad_left + cand.grad_right == pytest.approx(grad.sum())
            assert cand.hess_left + cand.hess_right == pytest.approx(hess.sum())
            assert cand.n_left + cand.n_right == 200


class TestNodeHistogramBuilder:
    def _setup(self, rng, n=300, n_cols=4, n_bins=8):
        from repro.tabular.binning import quantile_codes_matrix

        X = rng.normal(size=(n, n_cols))
        codes, edges = quantile_codes_matrix(X, max_bins=n_bins)
        stride = max(len(e) for e in edges) + 2
        grad = rng.normal(size=n)
        hess = rng.random(n) + 0.5
        return codes, stride, grad, hess

    def test_build_level_matches_per_node_bincounts(self):
        from repro.boosting.histogram import NodeHistogramBuilder

        rng = np.random.default_rng(0)
        codes, stride, grad, hess = self._setup(rng)
        builder = NodeHistogramBuilder(codes, stride, grad, hess)
        idx_a = np.arange(0, 150)
        idx_b = np.arange(150, 300)
        block = builder.build_level([idx_a, idx_b])
        assert block.shape == (3, 2, codes.shape[1], stride)
        for pos, idx in enumerate([idx_a, idx_b]):
            for j in range(codes.shape[1]):
                col = np.asarray(codes[idx, j], dtype=np.int64)
                g, h, c = feature_histogram(col, grad[idx], hess[idx], stride)
                assert np.array_equal(block[0, pos, j], g)
                assert np.array_equal(block[1, pos, j], h)
                assert np.array_equal(block[2, pos, j], c)

    def test_subtraction_recovers_counts_exactly(self):
        from repro.boosting.histogram import NodeHistogramBuilder

        rng = np.random.default_rng(1)
        codes, stride, grad, hess = self._setup(rng)
        builder = NodeHistogramBuilder(codes, stride, grad, hess)
        parent = np.arange(300)
        left = np.arange(0, 120)
        right = np.arange(120, 300)
        blocks = builder.build_level([parent, left, right])
        # Count channel: parent - left == right bit-exactly (integer floats).
        assert np.array_equal(blocks[2, 0] - blocks[2, 1], blocks[2, 2])

    def test_without_counts_channel(self):
        from repro.boosting.histogram import NodeHistogramBuilder

        rng = np.random.default_rng(2)
        codes, stride, grad, hess = self._setup(rng)
        builder = NodeHistogramBuilder(codes, stride, grad, hess, with_counts=False)
        block = builder.build_level([np.arange(300)])
        assert block.shape == (2, 1, codes.shape[1], stride)

    def test_shape_validation(self):
        from repro.boosting.histogram import NodeHistogramBuilder

        with pytest.raises(DataError):
            NodeHistogramBuilder(np.zeros(5, dtype=np.int64), 4, np.zeros(5), np.zeros(5))
        with pytest.raises(DataError):
            NodeHistogramBuilder(
                np.zeros((5, 2), dtype=np.int64), 4, np.zeros(4), np.zeros(4)
            )
