"""Tests for repro.boosting.histogram split finding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import best_split_for_feature, feature_histogram, split_gain
from repro.exceptions import DataError


class TestFeatureHistogram:
    def test_sums_match(self):
        codes = np.array([0, 1, 1, 2])
        grad = np.array([1.0, 2.0, 3.0, 4.0])
        hess = np.ones(4)
        g, h, c = feature_histogram(codes, grad, hess, n_bins=4)
        assert g.tolist() == [1.0, 5.0, 4.0, 0.0]
        assert h.tolist() == [1.0, 2.0, 1.0, 0.0]
        assert c.tolist() == [1, 2, 1, 0]

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            feature_histogram(np.zeros(3, dtype=int), np.zeros(2), np.zeros(3), 2)


class TestSplitGain:
    def test_zero_gain_for_homogeneous_gradient(self):
        # If left/right have proportional grad/hess the gain is ~0.
        gl = np.array([5.0])
        hl = np.array([5.0])
        gain = split_gain(gl, hl, g_total=10.0, h_total=10.0, reg_lambda=0.0, gamma=0.0)
        assert gain[0] == pytest.approx(0.0, abs=1e-12)

    def test_opposite_gradients_give_positive_gain(self):
        gain = split_gain(
            np.array([-5.0]), np.array([5.0]),
            g_total=0.0, h_total=10.0, reg_lambda=1.0, gamma=0.0,
        )
        assert gain[0] > 0

    def test_gamma_subtracts(self):
        args = (np.array([-5.0]), np.array([5.0]), 0.0, 10.0, 1.0)
        g0 = split_gain(*args, gamma=0.0)[0]
        g1 = split_gain(*args, gamma=1.0)[0]
        assert g1 == pytest.approx(g0 - 1.0)


class TestBestSplitForFeature:
    def test_finds_informative_boundary(self):
        # Gradients flip sign exactly between code 4 and 5.
        codes = np.repeat(np.arange(10), 20)
        grad = np.where(codes < 5, -1.0, 1.0)
        hess = np.ones_like(grad)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=11,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is not None
        assert cand.bin_index == 4
        assert cand.n_left == 100
        assert cand.n_right == 100

    def test_no_split_when_pure(self):
        codes = np.repeat(np.arange(4), 10)
        grad = np.ones(40)
        hess = np.ones(40)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=5,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_min_samples_leaf_respected(self):
        codes = np.array([0] * 2 + [1] * 98)
        grad = np.where(codes == 0, -10.0, 1.0)
        hess = np.ones(100)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=3,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=5,
        )
        assert cand is None  # the only useful split isolates 2 < 5 rows

    def test_min_child_weight_respected(self):
        codes = np.array([0] * 50 + [1] * 50)
        grad = np.where(codes == 0, -1.0, 1.0)
        hess = np.full(100, 0.001)
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=3,
            reg_lambda=1.0, gamma=0.0, min_child_weight=1.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_single_bin_returns_none(self):
        cand = best_split_for_feature(
            np.zeros(10, dtype=int), np.ones(10), np.ones(10), n_bins=1,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        assert cand is None

    def test_child_stats_add_up(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 8, size=200)
        grad = rng.normal(size=200)
        hess = np.abs(rng.normal(size=200)) + 0.1
        cand = best_split_for_feature(
            codes, grad, hess, n_bins=9,
            reg_lambda=1.0, gamma=0.0, min_child_weight=0.0, min_samples_leaf=1,
        )
        if cand is not None:
            assert cand.grad_left + cand.grad_right == pytest.approx(grad.sum())
            assert cand.hess_left + cand.hess_right == pytest.approx(hess.sum())
            assert cand.n_left + cand.n_right == 200
