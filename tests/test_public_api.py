"""Public API surface tests: imports, __all__, and version."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.boosting",
            "repro.models",
            "repro.operators",
            "repro.baselines",
            "repro.datasets",
            "repro.metrics",
            "repro.tabular",
            "repro.experiments",
            "repro.parallel",
            "repro.cli",
            "repro.exceptions",
            "repro.utils",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.experiments.table3",
            "repro.experiments.table5",
            "repro.experiments.table6",
            "repro.experiments.table8",
            "repro.experiments.fig3",
            "repro.experiments.fig4",
            "repro.experiments.assumptions",
            "repro.experiments.search_space",
            "repro.experiments.complexity",
        ],
    )
    def test_experiment_modules_expose_run_and_main(self, module):
        mod = importlib.import_module(module)
        assert callable(mod.run)
        assert callable(mod.main)

    def test_subpackage_all_exports_exist(self):
        for module in ("repro.core", "repro.models", "repro.metrics",
                       "repro.operators", "repro.tabular", "repro.baselines",
                       "repro.datasets", "repro.boosting"):
            mod = importlib.import_module(module)
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj_path",
        [
            "repro.core.SAFE",
            "repro.core.SAFEConfig",
            "repro.core.FeatureTransformer",
            "repro.boosting.GradientBoostingClassifier",
            "repro.models.RandomForestClassifier",
            "repro.operators.Operator",
            "repro.baselines.TFC",
            "repro.baselines.FCTree",
            "repro.baselines.AutoLearn",
            "repro.datasets.SyntheticTaskSpec",
        ],
    )
    def test_public_classes_documented(self, obj_path):
        module_path, name = obj_path.rsplit(".", 1)
        obj = getattr(importlib.import_module(module_path), name)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20
