"""Tests for the feature generation stage (§IV-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting.tree import TreePath
from repro.core import (
    Combination,
    combinations_from_paths,
    fit_mining_model,
    generate_features,
    mined_search_space_size,
    rank_combinations,
    search_space_size,
)
from repro.operators import Var


def make_path(features, values=None):
    values = values or {f: (0.0,) for f in features}
    return TreePath(features=tuple(features), split_values=values)


class TestCombinationsFromPaths:
    def test_singletons_and_pairs(self):
        combos = combinations_from_paths([make_path([0, 1])], max_size=2)
        keys = {c.features for c in combos}
        assert keys == {(0,), (1,), (0, 1)}

    def test_merges_duplicate_combos_across_paths(self):
        p1 = make_path([0, 1], {0: (1.0,), 1: (2.0,)})
        p2 = make_path([1, 0], {0: (3.0,), 1: (2.0,)})
        combos = combinations_from_paths([p1, p2], max_size=2)
        pair = next(c for c in combos if c.features == (0, 1))
        # Split values for feature 0 pooled from both paths.
        assert set(pair.split_values[0]) == {1.0, 3.0}
        assert set(pair.split_values[1]) == {2.0}

    def test_max_size_limits_subsets(self):
        combos = combinations_from_paths([make_path([0, 1, 2])], max_size=2)
        assert max(c.size for c in combos) == 2
        combos3 = combinations_from_paths([make_path([0, 1, 2])], max_size=3)
        assert max(c.size for c in combos3) == 3

    def test_empty_paths(self):
        assert combinations_from_paths([], max_size=2) == []

    def test_deterministic_order(self):
        paths = [make_path([2, 0]), make_path([1])]
        a = combinations_from_paths(paths, 2)
        b = combinations_from_paths(paths, 2)
        assert [c.features for c in a] == [c.features for c in b]


class TestRankCombinations:
    def test_informative_combo_ranks_first(self, rng):
        X = rng.normal(size=(2000, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)  # pure XOR
        combos = [
            Combination(features=(0, 1), split_values=((0.0,), (0.0,))),
            Combination(features=(2, 3), split_values=((0.0,), (0.0,))),
            Combination(features=(2,), split_values=((0.0,),)),
        ]
        ranked = rank_combinations(X, y, combos, gamma=3)
        assert ranked[0].combination.features == (0, 1)
        assert ranked[0].gain_ratio > ranked[1].gain_ratio

    def test_gamma_truncates(self, rng):
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] > 0).astype(float)
        combos = [
            Combination(features=(i,), split_values=((0.0,),)) for i in range(5)
        ]
        ranked = rank_combinations(X, y, combos, gamma=2)
        assert len(ranked) == 2

    def test_empty_input(self, rng):
        X = rng.normal(size=(10, 2))
        y = (X[:, 0] > 0).astype(float)
        assert rank_combinations(X, y, [], gamma=5) == []


class TestGenerateFeatures:
    def _ranked_pair(self):
        from repro.core.generation import RankedCombination

        return [
            RankedCombination(
                combination=Combination(features=(0, 1), split_values=((), ())),
                gain_ratio=1.0,
            )
        ]

    def test_commutative_ops_generate_once(self, rng):
        X = rng.normal(size=(50, 3))
        base = [Var(i) for i in range(3)]
        out = generate_features(self._ranked_pair(), ("add",), base, X, set())
        assert len(out) == 1
        assert out[0].key == "(x0 + x1)"

    def test_noncommutative_ops_generate_both_orders(self, rng):
        X = rng.normal(size=(50, 3))
        base = [Var(i) for i in range(3)]
        out = generate_features(self._ranked_pair(), ("div",), base, X, set())
        keys = {e.key for e in out}
        assert keys == {"(x0 / x1)", "(x1 / x0)"}

    def test_paper_set_generates_six_per_pair(self, rng):
        X = rng.normal(size=(50, 3))
        base = [Var(i) for i in range(3)]
        out = generate_features(
            self._ranked_pair(), ("add", "sub", "mul", "div"), base, X, set()
        )
        assert len(out) == 6  # add, mul, 2×sub, 2×div

    def test_existing_keys_deduped(self, rng):
        X = rng.normal(size=(50, 3))
        base = [Var(i) for i in range(3)]
        out = generate_features(
            self._ranked_pair(), ("add",), base, X, existing_keys={"(x0 + x1)"}
        )
        assert out == []

    def test_unary_ops_on_singletons(self, rng):
        from repro.core.generation import RankedCombination

        X = rng.normal(size=(50, 2))
        base = [Var(i) for i in range(2)]
        ranked = [
            RankedCombination(
                combination=Combination(features=(1,), split_values=((),)),
                gain_ratio=0.5,
            )
        ]
        out = generate_features(ranked, ("log", "square"), base, X, set())
        assert {e.key for e in out} == {"log(x1)", "square(x1)"}

    def test_composes_over_prior_expressions(self, rng):
        # Iteration >= 2: base expressions are themselves generated features.
        from repro.core.generation import RankedCombination
        from repro.operators import Applied

        X = rng.normal(size=(50, 3))
        base = [Applied("mul", (Var(0), Var(1))), Var(2)]
        ranked = [
            RankedCombination(
                combination=Combination(features=(0, 1), split_values=((), ())),
                gain_ratio=1.0,
            )
        ]
        out = generate_features(ranked, ("add",), base, X, set())
        assert out[0].key == "((x0 * x1) + x2)"
        assert out[0].original_indices() == frozenset({0, 1, 2})


class TestSearchSpaceFormulas:
    def test_eq3_pairwise(self):
        # A^2_M * |O2| = M(M-1) * 4
        assert search_space_size(10, {2: 4}) == 10 * 9 * 4

    def test_eq3_arity_exceeding_features(self):
        assert search_space_size(1, {2: 4}) == 0

    def test_eq5_sums_over_paths(self):
        paths = [make_path([0, 1]), make_path([2, 3, 4])]
        expected = (2 * 1 * 4) + (3 * 2 * 4)
        assert mined_search_space_size(paths, {2: 4}) == expected

    def test_mined_much_smaller_on_wide_data(self, rng):
        # T* << T when M is large relative to tree usage (Eq. 13's point).
        X = rng.normal(size=(1500, 60))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)
        model = fit_mining_model(X, y, None, n_estimators=5, max_depth=3,
                                 learning_rate=0.3, random_state=0)
        t = search_space_size(60, {2: 4})
        combos = combinations_from_paths(model.paths(), 2)
        realized = 4 * sum(1 for c in combos if c.size == 2)
        assert realized < t / 5


class TestMiningModel:
    def test_mines_interacting_features_on_same_path(self, rng):
        X = rng.normal(size=(3000, 6))
        y = ((X[:, 2] * X[:, 4]) > 0).astype(float)
        model = fit_mining_model(X, y, None, n_estimators=10, max_depth=3,
                                 learning_rate=0.3, random_state=0)
        combos = combinations_from_paths(model.paths(), 2)
        assert any(c.features == (2, 4) for c in combos)
