"""Tests for repro.boosting.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boosting import LogisticLoss, SquaredLoss, get_loss
from repro.exceptions import DataError


class TestLogisticLoss:
    loss = LogisticLoss()

    def test_base_score_is_logodds(self):
        y = np.array([1, 1, 1, 0], dtype=float)
        assert self.loss.base_score(y) == pytest.approx(np.log(3.0))

    def test_base_score_clipped_for_pure_labels(self):
        assert np.isfinite(self.loss.base_score(np.ones(5)))
        assert np.isfinite(self.loss.base_score(np.zeros(5)))

    def test_grad_is_p_minus_y(self):
        y = np.array([0.0, 1.0])
        margin = np.zeros(2)
        grad, hess = self.loss.grad_hess(y, margin)
        assert np.allclose(grad, [0.5, -0.5])
        assert np.allclose(hess, 0.25)

    def test_hess_positive(self):
        y = np.array([1.0, 0.0])
        margin = np.array([100.0, -100.0])
        __, hess = self.loss.grad_hess(y, margin)
        assert (hess > 0).all()

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=50).astype(float)
        margin = rng.normal(size=50)
        grad, __ = self.loss.grad_hess(y, margin)
        eps = 1e-6
        for k in (0, 17, 49):
            up = margin.copy(); up[k] += eps
            dn = margin.copy(); dn[k] -= eps
            fd = (self.loss.loss(y, up) - self.loss.loss(y, dn)) / (2 * eps) * y.size
            assert grad[k] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_transform_is_probability(self):
        p = self.loss.transform(np.array([-50.0, 0.0, 50.0]))
        assert p[0] < 0.01 and p[1] == pytest.approx(0.5) and p[2] > 0.99


class TestSquaredLoss:
    loss = SquaredLoss()

    def test_base_score_is_mean(self):
        assert self.loss.base_score(np.array([1.0, 3.0])) == 2.0

    def test_grad_hess(self):
        grad, hess = self.loss.grad_hess(np.array([1.0]), np.array([3.0]))
        assert grad[0] == 2.0
        assert hess[0] == 1.0

    def test_transform_identity(self):
        z = np.array([1.0, -2.0])
        assert np.array_equal(self.loss.transform(z), z)


class TestGetLoss:
    def test_lookup(self):
        assert get_loss("logistic").name == "logistic"
        assert get_loss("squared").name == "squared"

    def test_unknown_raises(self):
        with pytest.raises(DataError):
            get_loss("hinge")
