"""Tests for the command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import FeatureTransformer
from repro.datasets import load_benchmark
from repro.tabular import load_csv, save_csv


@pytest.fixture
def csv_dataset(tmp_path):
    train, __, test = load_benchmark("wind", scale=0.06)
    train_path = tmp_path / "train.csv"
    test_path = tmp_path / "test.csv"
    save_csv(train, train_path)
    save_csv(test, test_path)
    return train_path, test_path, tmp_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fit_defaults(self):
        args = build_parser().parse_args(
            ["fit", "--train", "a.csv", "--plan", "p.json"]
        )
        assert args.method == "SAFE"
        assert args.gamma == 50

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fit", "--train", "a.csv", "--plan", "p.json",
                 "--method", "LFE"]
            )


class TestCommands:
    def test_fit_transform_evaluate_inspect(self, csv_dataset, capsys):
        train_path, test_path, tmp = csv_dataset
        plan = tmp / "plan.json"

        rc = main(["fit", "--train", str(train_path), "--plan", str(plan),
                   "--gamma", "15", "--show", "2"])
        assert rc == 0
        assert plan.exists()
        out = capsys.readouterr().out
        assert "fitted SAFE" in out

        out_csv = tmp / "out.csv"
        rc = main(["transform", "--plan", str(plan),
                   "--input", str(test_path), "--output", str(out_csv)])
        assert rc == 0
        transformed = load_csv(out_csv)
        assert transformed.n_rows == load_csv(test_path).n_rows

        rc = main(["evaluate", "--train", str(train_path),
                   "--test", str(test_path), "--plan", str(plan),
                   "--classifier", "lr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ORIG" in out and "PLAN" in out

        rc = main(["inspect", "--plan", str(plan)])
        assert rc == 0
        assert "FeatureTransformer" in capsys.readouterr().out

    def test_evaluate_without_plan(self, csv_dataset, capsys):
        train_path, test_path, __ = csv_dataset
        rc = main(["evaluate", "--train", str(train_path),
                   "--test", str(test_path), "--classifier", "lr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ORIG" in out and "PLAN" not in out

    def test_fit_with_rand_method(self, csv_dataset, capsys):
        train_path, __, tmp = csv_dataset
        plan = tmp / "rand.json"
        rc = main(["fit", "--train", str(train_path), "--plan", str(plan),
                   "--method", "RAND", "--gamma", "10"])
        assert rc == 0
        assert "fitted RAND" in capsys.readouterr().out

    def test_transform_realigns_column_order(self, csv_dataset, tmp_path):
        train_path, test_path, tmp = csv_dataset
        plan = tmp / "plan2.json"
        main(["fit", "--train", str(train_path), "--plan", str(plan),
              "--gamma", "10"])
        # Shuffle the input's column order; transform must realign by name.
        data = load_csv(test_path)
        shuffled = data.select(list(reversed(data.names)))
        shuffled_path = tmp_path / "shuffled.csv"
        save_csv(shuffled, shuffled_path)
        out_csv = tmp_path / "aligned.csv"
        rc = main(["transform", "--plan", str(plan),
                   "--input", str(shuffled_path), "--output", str(out_csv)])
        assert rc == 0
        straight = tmp_path / "straight.csv"
        main(["transform", "--plan", str(plan),
              "--input", str(test_path), "--output", str(straight)])
        assert np.allclose(load_csv(out_csv).X, load_csv(straight).X)


class TestLintCommand:
    def test_lint_is_clean_on_the_repo(self, capsys):
        rc = main(["lint"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no findings" in out

    def test_lint_json_output(self, capsys):
        rc = main(["lint", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out) == []

    def test_lint_custom_src_with_defect(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a, b):\n    return a / b\n")
        rc = main(["lint", "--src", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "div-guard" in out


class TestValidatePlanCommand:
    def _saved_plan(self, tmp_path) -> str:
        from repro.core.transform import FeatureTransformer
        from repro.operators import Applied, Var

        ft = FeatureTransformer(
            expressions=(Applied("add", (Var(0), Var(1))),),
            original_names=("a", "b"),
        )
        path = tmp_path / "psi.json"
        ft.save(path)
        return str(path)

    def test_valid_plan_accepted(self, tmp_path, capsys):
        rc = main(["validate-plan", "--plan", self._saved_plan(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan OK" in out

    def test_corrupt_plan_rejected(self, tmp_path, capsys):
        path = self._saved_plan(tmp_path)
        payload = json.loads(Path(path).read_text())
        payload["expressions"][0]["op"] = "frobnicate"
        Path(path).write_text(json.dumps(payload))
        rc = main(["validate-plan", "--plan", path])
        out = capsys.readouterr().out
        assert rc == 1
        assert "unknown-operator" in out

    def test_json_report(self, tmp_path, capsys):
        rc = main(["validate-plan", "--plan", self._saved_plan(tmp_path), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["ok"] is True


class TestErrorExitCodes:
    """Satellite: ReproError subclasses exit 2 with one stderr line."""

    def test_missing_plan_file_exits_2(self, tmp_path, capsys):
        rc = main(["inspect", "--plan", str(tmp_path / "missing.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: DataError:")
        assert len(err.strip().splitlines()) == 1

    def test_corrupt_plan_json_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "broken.json"
        plan.write_text("{not json")
        rc = main(["transform", "--plan", str(plan),
                   "--input", str(tmp_path / "in.csv"),
                   "--output", str(tmp_path / "out.csv")])
        assert rc == 2
        assert "error: DataError:" in capsys.readouterr().err

    def test_malformed_plan_payload_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "partial.json"
        plan.write_text(json.dumps({"original_names": ["a"]}))
        rc = main(["inspect", "--plan", str(plan)])
        assert rc == 2
        assert "error: SchemaError:" in capsys.readouterr().err

    def test_finding_exits_stay_at_1(self, tmp_path, capsys):
        # Exit 1 still means "ran fine, rejected the input", not a fault.
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("def f(a, b):\n    return a / b\n")
        rc = main(["lint", "--src", str(src)])
        assert rc == 1


class TestCheckpointFlag:
    def test_fit_writes_and_resumes_from_checkpoints(self, csv_dataset, capsys):
        train_path, __, tmp = csv_dataset
        plan = tmp / "plan.json"
        ckpt = tmp / "ckpt"
        rc = main(["fit", "--train", str(train_path), "--plan", str(plan),
                   "--gamma", "10", "--show", "0",
                   "--checkpoint-dir", str(ckpt)])
        assert rc == 0
        checkpoints = sorted(ckpt.glob("iter_*.json"))
        assert checkpoints, "fit left no checkpoint files"
        first = FeatureTransformer.load(plan)

        # A re-run against the same directory resumes (and, with every
        # iteration already checkpointed, reproduces the same plan).
        rc = main(["fit", "--train", str(train_path), "--plan", str(plan),
                   "--gamma", "10", "--show", "0",
                   "--checkpoint-dir", str(ckpt)])
        assert rc == 0
        assert FeatureTransformer.load(plan).feature_keys == first.feature_keys


class TestTransformErrorsFlag:
    def test_errors_null_accepted(self, csv_dataset):
        train_path, test_path, tmp = csv_dataset
        plan = tmp / "plan.json"
        assert main(["fit", "--train", str(train_path), "--plan", str(plan),
                     "--gamma", "10", "--show", "0"]) == 0
        out_csv = tmp / "out.csv"
        rc = main(["transform", "--plan", str(plan),
                   "--input", str(test_path), "--output", str(out_csv),
                   "--errors", "null"])
        assert rc == 0
        assert out_csv.exists()

    def test_unknown_errors_value_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["transform", "--plan", "p.json", "--input", "a.csv",
                 "--output", "b.csv", "--errors", "ignore"]
            )


class TestServeCommand:
    def _fit(self, csv_dataset):
        train_path, test_path, tmp = csv_dataset
        plan = tmp / "plan.json"
        assert main(["fit", "--train", str(train_path), "--plan", str(plan),
                     "--gamma", "10", "--show", "0"]) == 0
        return plan, test_path, tmp

    def test_serve_clean_traffic_exits_0(self, csv_dataset, capsys):
        plan, test_path, tmp = self._fit(csv_dataset)
        out_csv = tmp / "served.csv"
        report = tmp / "report.json"
        rc = main(["serve", str(plan), "--input", str(test_path),
                   "--output", str(out_csv), "--report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served" in out and "health: ok" in out

        n_rows = load_csv(test_path).n_rows
        assert load_csv(out_csv, label_column=None).n_rows == n_rows
        summary = json.loads(report.read_text())
        assert summary["requests_total"] == n_rows
        assert summary["rejected"] == 0

    def test_serve_matches_transform_output(self, csv_dataset, tmp_path):
        plan, test_path, tmp = self._fit(csv_dataset)
        served_csv = tmp / "served.csv"
        transformed_csv = tmp / "transformed.csv"
        assert main(["serve", str(plan), "--input", str(test_path),
                     "--output", str(served_csv)]) == 0
        assert main(["transform", "--plan", str(plan), "--input",
                     str(test_path), "--output", str(transformed_csv)]) == 0
        served = load_csv(served_csv, label_column=None)
        # transform keeps the label column in its output; serve does not
        transformed = load_csv(transformed_csv)
        np.testing.assert_array_equal(served.X, transformed.X)

    def test_drifted_input_rejected_exits_1(self, csv_dataset, capsys):
        plan, test_path, tmp = self._fit(csv_dataset)
        # upstream drops a feature column: under the default policy every
        # request is refused, loudly
        from repro.tabular import Dataset

        data = load_csv(test_path)
        drifted = tmp / "drifted.csv"
        save_csv(
            Dataset(X=data.X[:, 1:], names=data.names[1:], y=data.y),
            drifted,
        )
        rc = main(["serve", str(plan), "--input", str(drifted)])
        assert rc == 1
        assert "rejected" in capsys.readouterr().out

    def test_drifted_input_coerced_under_policy(self, csv_dataset, capsys):
        plan, test_path, tmp = self._fit(csv_dataset)
        from repro.tabular import Dataset

        data = load_csv(test_path)
        drifted = tmp / "drifted.csv"
        save_csv(
            Dataset(X=data.X[:, 1:], names=data.names[1:], y=data.y),
            drifted,
        )
        rc = main(["serve", str(plan), "--input", str(drifted),
                   "--coerce", "all"])
        assert rc == 0
        assert "coerced" in capsys.readouterr().out

    def test_corrupt_swap_plan_rolls_back(self, csv_dataset, capsys):
        plan, test_path, tmp = self._fit(csv_dataset)
        bad = tmp / "bad_plan.json"
        bad.write_text("{not json")
        rc = main(["serve", str(plan), "--input", str(test_path),
                   "--swap-plan", str(bad)])
        assert rc == 0  # traffic itself stays clean on the rolled-back plan
        captured = capsys.readouterr()
        assert "hot-swap rolled back" in captured.err
        assert "1 rolled back" in captured.out

    def test_good_swap_plan_switches(self, csv_dataset, capsys):
        plan, test_path, tmp = self._fit(csv_dataset)
        candidate = tmp / "candidate.json"
        candidate.write_text(Path(plan).read_text())
        rc = main(["serve", str(plan), "--input", str(test_path),
                   "--swap-plan", str(candidate)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "hot-swapped plan" in captured.out
        assert "1 ok" in captured.out

    def test_missing_plan_exits_2(self, tmp_path, csv_dataset, capsys):
        __, test_path, __tmp = csv_dataset
        rc = main(["serve", str(tmp_path / "missing.json"),
                   "--input", str(test_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_coerce_spec_exits_2(self, csv_dataset, capsys):
        plan, test_path, __ = self._fit(csv_dataset)
        rc = main(["serve", str(plan), "--input", str(test_path),
                   "--coerce", "telepathy"])
        assert rc == 2
