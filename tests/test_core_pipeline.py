"""Tests for the full SAFE pipeline (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SAFE, SAFEConfig
from repro.exceptions import DataError
from repro.metrics import roc_auc_score
from repro.models import LogisticRegression
from repro.tabular import Dataset


class TestFit:
    def test_finds_planted_interaction(self, interaction_data):
        safe = SAFE(SAFEConfig(gamma=30))
        psi = safe.fit(interaction_data)
        keys = set(psi.feature_keys)
        assert "(x0 * x1)" in keys or "(x1 * x0)" in keys

    def test_improves_linear_model(self, interaction_data):
        train = interaction_data.take_rows(np.arange(800))
        test = interaction_data.take_rows(np.arange(800, 1200))
        psi = SAFE(SAFEConfig(gamma=30)).fit(train)
        base = LogisticRegression().fit(train.X, train.y)
        auc_orig = roc_auc_score(test.y, base.predict_proba(test.X)[:, 1])
        tr2, te2 = psi.transform(train), psi.transform(test)
        enriched = LogisticRegression().fit(tr2.X, tr2.require_labels())
        auc_safe = roc_auc_score(te2.y, enriched.predict_proba(te2.X)[:, 1])
        assert auc_safe > auc_orig + 0.1

    def test_output_budget_is_2m_by_default(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=30)).fit(interaction_data)
        assert psi.n_output_features <= 2 * interaction_data.n_cols

    def test_explicit_output_budget(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=30, max_output_features=5)).fit(interaction_data)
        assert psi.n_output_features <= 5

    def test_requires_labels(self, interaction_data):
        with pytest.raises(DataError):
            SAFE().fit(interaction_data.without_labels())

    def test_requires_both_classes(self, rng):
        data = Dataset.from_arrays(rng.normal(size=(50, 3)), np.ones(50))
        with pytest.raises(DataError):
            SAFE().fit(data)

    def test_deterministic_given_seed(self, interaction_data):
        a = SAFE(SAFEConfig(gamma=20, random_state=5)).fit(interaction_data)
        b = SAFE(SAFEConfig(gamma=20, random_state=5)).fit(interaction_data)
        assert a.feature_keys == b.feature_keys

    def test_validation_set_used(self, interaction_data):
        train = interaction_data.take_rows(np.arange(800))
        valid = interaction_data.take_rows(np.arange(800, 1000))
        psi = SAFE(SAFEConfig(gamma=20)).fit(train, valid)
        assert psi.n_output_features >= 1


class TestTraces:
    def test_trace_recorded_per_iteration(self, interaction_data):
        safe = SAFE(SAFEConfig(gamma=20, n_iterations=2))
        safe.fit(interaction_data)
        assert 1 <= len(safe.traces_) <= 2
        t = safe.traces_[0]
        assert t.n_paths > 0
        assert t.n_combinations > 0
        assert t.n_candidates >= t.n_generated
        assert t.elapsed_seconds > 0

    def test_time_budget_limits_iterations(self, interaction_data):
        safe = SAFE(SAFEConfig(gamma=20, n_iterations=50, time_budget_seconds=1e-9))
        psi = safe.fit(interaction_data)
        # Budget exhausted before the first iteration: identity transform.
        assert len(safe.traces_) == 0
        assert psi.n_output_features == interaction_data.n_cols


class TestIterations:
    def test_second_iteration_composes_features(self, rng):
        # Target needs a depth-2 expression: (x0*x1) + (x2*x3).
        X = rng.normal(size=(3000, 6))
        target = X[:, 0] * X[:, 1] + X[:, 2] * X[:, 3]
        y = (target + 0.2 * rng.normal(size=3000) > 0).astype(float)
        data = Dataset.from_arrays(X, y)
        safe = SAFE(SAFEConfig(gamma=30, n_iterations=2))
        psi = safe.fit(data)
        assert any(e.depth() >= 2 for e in psi.expressions)

    def test_metadata_reports_iterations(self, interaction_data):
        safe = SAFE(SAFEConfig(gamma=20, n_iterations=3))
        psi = safe.fit(interaction_data)
        assert psi.metadata["n_iterations_run"] == len(safe.traces_)
        assert psi.metadata["method"] == "SAFE"
        assert psi.metadata["operators"] == ["add", "sub", "mul", "div"]


class TestTransformerOutput:
    def test_transform_roundtrip(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=20)).fit(interaction_data)
        out = psi.transform(interaction_data)
        assert out.n_rows == interaction_data.n_rows
        assert out.n_cols == psi.n_output_features
        assert out.y is not None

    def test_single_row_inference(self, interaction_data):
        psi = SAFE(SAFEConfig(gamma=20)).fit(interaction_data)
        row = psi.transform_matrix(interaction_data.X[0])
        assert row.shape == (psi.n_output_features,)

    def test_serialization_roundtrip(self, interaction_data, tmp_path):
        from repro.core import FeatureTransformer

        psi = SAFE(SAFEConfig(gamma=20)).fit(interaction_data)
        path = tmp_path / "plan.json"
        psi.save(path)
        back = FeatureTransformer.load(path)
        assert back.feature_keys == psi.feature_keys
        assert np.allclose(
            back.transform_matrix(interaction_data.X),
            psi.transform_matrix(interaction_data.X),
        )

    def test_keep_originals_false_still_works(self, interaction_data):
        cfg = SAFEConfig(gamma=20, keep_originals=False)
        psi = SAFE(cfg).fit(interaction_data)
        assert psi.n_output_features >= 1
