"""Checkpoint persistence: fingerprints, atomic writes, corruption handling."""

from __future__ import annotations

import json

import pytest

from repro.core import SAFEConfig
from repro.exceptions import CheckpointError, InjectedFault
from repro.operators.expressions import Applied, Var
from repro.runtime.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointManager,
    config_fingerprint,
    schema_fingerprint,
)
from repro.runtime.failpoints import FAILPOINTS, active


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.reset()
    yield
    FAILPOINTS.reset()


NAMES = ("a", "b", "c")
EXPRS = [Var(0), Var(2), Applied("add", (Var(0), Var(1)), None)]


class TestFingerprints:
    def test_schema_fingerprint_is_stable(self):
        assert schema_fingerprint(NAMES) == schema_fingerprint(list(NAMES))

    def test_schema_fingerprint_is_order_sensitive(self):
        assert schema_fingerprint(("a", "b")) != schema_fingerprint(("b", "a"))

    def test_config_fingerprint_tracks_config_changes(self):
        a = config_fingerprint(SAFEConfig(), NAMES)
        b = config_fingerprint(SAFEConfig(gamma=7), NAMES)
        assert a != b

    def test_config_fingerprint_tracks_schema_changes(self):
        cfg = SAFEConfig()
        assert config_fingerprint(cfg, NAMES) != config_fingerprint(cfg, ("x",))

    def test_config_fingerprint_is_reproducible(self):
        assert config_fingerprint(SAFEConfig(), NAMES) == config_fingerprint(
            SAFEConfig(), NAMES
        )


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        traces = [{"iteration": 0, "n_generated": 4}]
        path = manager.save(0, EXPRS, "cfg-hash", traces=traces)
        assert path.exists()
        state = manager.load(path)
        assert state.iteration == 0
        assert state.config_hash == "cfg-hash"
        assert [e.key for e in state.expressions] == [e.key for e in EXPRS]
        assert state.traces == ({"iteration": 0, "n_generated": 4},)

    def test_expected_config_hash_gates_the_load(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, EXPRS, "cfg-hash")
        manager.load(path, expected_config_hash="cfg-hash")
        with pytest.raises(CheckpointError):
            manager.load(path, expected_config_hash="other-hash")

    def test_missing_file_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError):
            manager.load(tmp_path / "iter_00099.json")

    def test_no_temp_file_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS, "cfg-hash")
        assert not list(tmp_path.glob(".*tmp"))


class TestCrashSafety:
    def test_interrupted_write_preserves_previous_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS, "cfg-hash")
        with active("checkpoint.write"):
            with pytest.raises(InjectedFault):
                manager.save(1, EXPRS, "cfg-hash")
        # The interrupted iteration-1 file must not exist, its temp must
        # be gone, and the iteration-0 checkpoint must still load.
        assert not manager.path_for(1).exists()
        assert not list(tmp_path.glob(".*tmp"))
        state, skipped = manager.latest(expected_config_hash="cfg-hash")
        assert state is not None and state.iteration == 0
        assert skipped == []

    def test_read_failpoint_is_recorded_as_a_skip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS, "cfg-hash")
        with active("checkpoint.read"):
            state, skipped = manager.latest()
        assert state is None and len(skipped) == 1


class TestLatest:
    def test_empty_directory(self, tmp_path):
        state, skipped = CheckpointManager(tmp_path).latest()
        assert state is None and skipped == []

    def test_picks_newest_iteration(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS[:1], "cfg-hash")
        manager.save(1, EXPRS, "cfg-hash")
        state, _ = manager.latest()
        assert state.iteration == 1 and len(state.expressions) == len(EXPRS)

    def test_truncated_newest_falls_back_to_previous(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS, "cfg-hash")
        path = manager.save(1, EXPRS, "cfg-hash")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        state, skipped = manager.latest(expected_config_hash="cfg-hash")
        assert state is not None and state.iteration == 0
        assert len(skipped) == 1 and "JSON" in skipped[0]

    def test_checksum_tampering_is_detected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, EXPRS, "cfg-hash")
        record = json.loads(path.read_text())
        record["payload"]["iteration"] = 99
        path.write_text(json.dumps(record))
        state, skipped = manager.latest()
        assert state is None
        assert len(skipped) == 1 and "checksum" in skipped[0]

    def test_unknown_format_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, EXPRS, "cfg-hash")
        record = json.loads(path.read_text())
        record["payload"]["format"] = "repro-checkpoint-v999"
        body = json.dumps(record["payload"], sort_keys=True)
        import hashlib

        record["checksum"] = hashlib.sha256(body.encode()).hexdigest()
        path.write_text(json.dumps(record))
        state, skipped = manager.latest()
        assert state is None
        assert CHECKPOINT_FORMAT in skipped[0]

    def test_mismatched_config_hash_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, EXPRS, "old-config")
        state, skipped = manager.latest(expected_config_hash="new-config")
        assert state is None
        assert len(skipped) == 1 and "fingerprint" in skipped[0]


class TestStatsCheckpointStore:
    """Sufficient-statistic snapshots: bit-exact, checksummed, guarded."""

    def _store(self, tmp_path, config_hash="cfg"):
        from repro.runtime.checkpoint import StatsCheckpointStore

        return StatsCheckpointStore(tmp_path / "stats", config_hash)

    def test_state_round_trips_bit_exactly(self, tmp_path):
        import numpy as np

        store = self._store(tmp_path)
        state = {
            "none": None,
            "flag": True,
            "count": 7,
            "tiny": 2.0 ** -1074,  # denormal: survives hex encoding
            "nan": float("nan"),
            "text": "Ψ",
            "arr": np.arange(6, dtype=np.int64).reshape(2, 3),
            "nested": [(1.5, np.array([0.1, 0.2])), {"k": None}],
        }
        store.save("stage", state)
        back = store.load("stage")
        assert back["none"] is None and back["flag"] is True
        assert back["count"] == 7
        assert back["tiny"].hex() == state["tiny"].hex()
        assert np.isnan(back["nan"])
        assert back["text"] == "Ψ"
        assert back["arr"].dtype == np.int64
        assert np.array_equal(back["arr"], state["arr"])
        assert back["nested"][0][1].dtype == np.float64
        assert store.resumed == ["stage"]

    def test_missing_stage_returns_sentinel_without_a_skip(self, tmp_path):
        from repro.runtime.checkpoint import MISSING

        store = self._store(tmp_path)
        assert store.load("never-saved") is MISSING
        assert store.skipped == []

    def test_corrupt_snapshot_is_skipped_with_reason(self, tmp_path):
        from repro.runtime.checkpoint import MISSING

        store = self._store(tmp_path)
        path = store.save("stage", {"x": 1})
        path.write_bytes(b"not a zip at all")  # repro: ignore comment n/a in tests
        assert store.load("stage") is MISSING
        assert any("stage" in reason for reason in store.skipped)

    def test_config_hash_mismatch_is_skipped(self, tmp_path):
        from repro.runtime.checkpoint import MISSING

        self._store(tmp_path, "cfg-a").save("stage", {"x": 1})
        other = self._store(tmp_path, "cfg-b")
        assert other.load("stage") is MISSING
        assert len(other.skipped) == 1

    def test_crash_mid_checkpoint_leaves_no_snapshot(self, tmp_path):
        from repro.runtime.checkpoint import MISSING

        store = self._store(tmp_path)
        with active("stream.stats.checkpoint", mode="once"):
            with pytest.raises(InjectedFault):
                store.save("stage", {"x": 1})
        assert store.load("stage") is MISSING
        assert store.skipped == []  # absence, not corruption
        # the interrupted temp file must not linger as a valid-looking npz
        assert list((tmp_path / "stats").glob("*.npz")) == []

    def test_run_computes_once_then_resumes(self, tmp_path):
        store = self._store(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"v": 41}

        assert store.run("stage", compute)["v"] == 41
        assert store.run("stage", compute)["v"] == 41
        assert len(calls) == 1
        assert store.written == 1 and store.resumed == ["stage"]

    def test_scoped_view_prefixes_keys_and_shares_counters(self, tmp_path):
        store = self._store(tmp_path)
        scoped = store.scoped("it00000").scoped("mine-gbm")
        scoped.save("edges", {"x": 1})
        assert store.load("it00000/mine-gbm/edges")["x"] == 1
        assert store.written == 1
        scoped.note_skip("oops")
        assert store.skipped == ["it00000/mine-gbm/oops"]

    def test_clear_drops_snapshots_and_scratch(self, tmp_path):
        from repro.runtime.checkpoint import MISSING

        store = self._store(tmp_path)
        store.save("stage", {"x": 1})
        scratch = store.scratch_dir("gbm")
        (tmp_path / "stats").joinpath("marker").write_text("x")  # repro: ignore n/a
        store.clear()
        assert store.load("stage") is MISSING
        import os

        assert not os.path.exists(scratch)

    def test_object_dtype_arrays_are_rejected(self, tmp_path):
        import numpy as np

        store = self._store(tmp_path)
        with pytest.raises(CheckpointError):
            store.save("stage", {"bad": np.array([object()])})
