"""Quickstart: fit SAFE on a benchmark surrogate and measure the lift.

Run:  python examples/quickstart.py

This is the smallest end-to-end use of the public API:

1. load a dataset (the ``magic`` surrogate from Table IV),
2. fit SAFE to learn a feature-generation function Ψ,
3. transform train/test and compare a downstream classifier's AUC
   against the original feature space,
4. inspect the generated features (they are readable formulas).
"""

from __future__ import annotations

from repro import SAFE, SAFEConfig, load_benchmark, make_classifier, roc_auc_score


def main() -> None:
    train, valid, test = load_benchmark("magic", scale=0.3)
    print(f"magic surrogate: {train.n_rows} train rows, {train.n_cols} features")

    safe = SAFE(SAFEConfig(n_iterations=1, gamma=40))
    psi = safe.fit(train, valid)
    print(f"\nSAFE produced {psi.n_output_features} features; the generated ones:")
    for name in psi.feature_names:
        if "(" in name:  # generated features render as formulas
            print(f"  {name}")

    train_new, test_new = psi.transform(train), psi.transform(test)
    print()
    for clf_name in ("lr", "knn", "xgb"):
        line = []
        for label, (tr, te) in (("ORIG", (train, test)), ("SAFE", (train_new, test_new))):
            clf = make_classifier(clf_name)
            clf.fit(tr.X, tr.require_labels())
            auc = roc_auc_score(te.y, clf.predict_proba(te.X)[:, 1])
            line.append(f"{label}={auc:.4f}")
        print(f"{clf_name.upper():4s} test AUC: " + "  ".join(line))

    # Real-time inference: Ψ maps a single raw row to the new features.
    row = psi.transform_matrix(test.X[0])
    print(f"\nsingle-row inference -> vector of {row.shape[0]} generated values")


if __name__ == "__main__":
    main()
