"""Extending SAFE with domain-specific operators.

Run:  python examples/custom_operators.py

Section III requires that "new operators should be easily added". This
example registers two custom operators — a log-ratio (a staple of
transaction monitoring) and a stateful per-key z-score (deviation from a
group's norm) — then runs SAFE with them in the operator set and shows
that the resulting plan, including the custom fitted state, survives a
JSON round-trip.
"""

from __future__ import annotations

import numpy as np

from repro import SAFE, SAFEConfig, load_benchmark, register_operator, roc_auc_score
from repro.core import FeatureTransformer
from repro.models import make_classifier
from repro.operators import Operator


class LogRatioOp(Operator):
    """log(|a| + 1) - log(|b| + 1): a scale-robust ratio signal."""

    name = "logratio"
    arity = 2
    commutative = False
    symbol = "logratio"

    def apply(self, state, a, b):
        return np.log1p(np.abs(a)) - np.log1p(np.abs(b))


class GroupZScoreOp(Operator):
    """Per-key z-score of a value column (deviation from the group norm).

    Stateful: bin the key into deciles at fit time, remember each group's
    mean/std, and standardize new values against their group at serving.
    """

    name = "group_zscore"
    arity = 2
    commutative = False
    symbol = "group_zscore"
    n_key_bins = 10

    def fit(self, key, value):
        from repro.tabular.binning import codes_from_edges, equal_frequency_edges

        edges = equal_frequency_edges(key, self.n_key_bins)
        codes = codes_from_edges(key, edges)
        groups = {}
        for code in np.unique(codes):
            vals = value[codes == code]
            std = float(vals.std())
            groups[str(int(code))] = {
                "mean": float(vals.mean()),
                "std": std if std > 0 else 1.0,
            }
        return {"edges": edges.tolist(), "groups": groups}

    def apply(self, state, key, value):
        from repro.tabular.binning import codes_from_edges

        state = state or {"edges": [], "groups": {}}
        codes = codes_from_edges(
            np.asarray(key, dtype=np.float64),
            np.asarray(state["edges"], dtype=np.float64),
        )
        out = np.empty(codes.size)
        default = {"mean": 0.0, "std": 1.0}
        for i, code in enumerate(codes):
            stats = state["groups"].get(str(int(code)), default)
            out[i] = (value[i] - stats["mean"]) / stats["std"]
        return out


def main() -> None:
    for op_cls in (LogRatioOp, GroupZScoreOp):
        try:
            register_operator(op_cls())
        except Exception:
            pass  # already registered on a second run in the same process

    train, valid, test = load_benchmark("wind", scale=0.3)
    cfg = SAFEConfig(
        operators=("mul", "div", "logratio", "group_zscore"),
        gamma=40,
    )
    psi = SAFE(cfg).fit(train, valid)
    print(f"SAFE with custom operators produced {psi.n_output_features} features:")
    for name in psi.feature_names:
        if "logratio" in name or "group_zscore" in name:
            print(f"  [custom] {name}")

    train_new, test_new = psi.transform(train), psi.transform(test)
    clf = make_classifier("xgb").fit(train_new.X, train_new.require_labels())
    auc = roc_auc_score(test_new.y, clf.predict_proba(test_new.X)[:, 1])
    clf0 = make_classifier("xgb").fit(train.X, train.require_labels())
    auc0 = roc_auc_score(test.y, clf0.predict_proba(test.X)[:, 1])
    print(f"\nXGB AUC original={auc0:.4f} custom-operator SAFE={auc:.4f}")

    # Custom fitted state must survive serialization for serving.
    payload = psi.to_dict()
    restored = FeatureTransformer.from_dict(payload)
    assert np.allclose(
        restored.transform_matrix(test.X[:3]),
        psi.transform_matrix(test.X[:3]),
        equal_nan=True,
    )
    print("plan (with custom operator state) survives JSON round-trip ✓")


if __name__ == "__main__":
    main()
