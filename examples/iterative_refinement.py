"""Iterative SAFE: higher-order features across Algorithm 1 rounds.

Run:  python examples/iterative_refinement.py

Figure 4's setting: SAFE is run with increasing iteration budgets on a
task whose signal needs *composed* features — the label depends on
(x0 * x1) + (x2 * x3), which no single binary feature captures. One
iteration discovers the products; a second iteration combines them.
The example prints the AUC trajectory and the deepest expressions found.
"""

from __future__ import annotations

import numpy as np

from repro import SAFE, Dataset, SAFEConfig, make_classifier, roc_auc_score


def make_compositional_task(n: int, seed: int = 0) -> tuple[Dataset, Dataset]:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 8))
    signal = X[:, 0] * X[:, 1] + X[:, 2] * X[:, 3]
    y = (signal + 0.3 * rng.normal(size=n) > 0).astype(float)
    data = Dataset.from_arrays(X, y)
    cut = int(0.7 * n)
    return data.take_rows(np.arange(cut)), data.take_rows(np.arange(cut, n))


def main() -> None:
    train, test = make_compositional_task(6000)
    print("task: y ~ (x0 * x1) + (x2 * x3); linear baseline first\n")

    baseline = make_classifier("lr").fit(train.X, train.require_labels())
    auc0 = roc_auc_score(test.y, baseline.predict_proba(test.X)[:, 1])
    print(f"iterations=0 (ORIG)  LR AUC = {auc0:.4f}")

    deepest = None
    for n_iter in (1, 2, 3):
        safe = SAFE(SAFEConfig(n_iterations=n_iter, gamma=30))
        psi = safe.fit(train)
        tr, te = psi.transform(train), psi.transform(test)
        clf = make_classifier("lr").fit(tr.X, tr.require_labels())
        auc = roc_auc_score(te.y, clf.predict_proba(te.X)[:, 1])
        max_depth = max(e.depth() for e in psi.expressions)
        print(f"iterations={n_iter}        LR AUC = {auc:.4f} "
              f"(ran {len(safe.traces_)}, deepest expression depth {max_depth})")
        deepest = max(psi.expressions, key=lambda e: e.depth())

    print(f"\ndeepest feature found: {deepest.name(train.names)}")
    print("depth-2 features combine the products discovered in round 1 —")
    print("exactly the compositionality Algorithm 1's iteration provides.")


if __name__ == "__main__":
    main()
