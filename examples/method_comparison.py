"""Head-to-head: SAFE vs. every baseline on one dataset (mini Table III).

Run:  python examples/method_comparison.py [--dataset magic] [--scale 0.2]

Fits all six methods of the paper's evaluation (ORIG, FCTree, TFC, RAND,
IMP, SAFE) on one benchmark surrogate and prints a Table III-style row
block: AUC of each downstream classifier under each method's features,
plus each method's fit time (the Table V view of the same run).
"""

from __future__ import annotations

import argparse

from repro.datasets import BENCHMARK_NAMES, load_benchmark
from repro.experiments import METHOD_ORDER, evaluate_transformer, fit_method
from repro.experiments.reporting import format_table

CLASSIFIERS = ("lr", "knn", "rf", "xgb")


def main(dataset: str, scale: float) -> None:
    train, valid, test = load_benchmark(dataset, scale=scale)
    print(f"{dataset}: {train.n_rows} train rows, {train.n_cols} features\n")

    scores: dict[str, dict[str, float]] = {}
    times: dict[str, float] = {}
    for method in METHOD_ORDER:
        run = fit_method(method, train, valid, gamma=40)
        times[method] = run.fit_seconds
        scores[method] = evaluate_transformer(run.transformer, train, test, CLASSIFIERS)

    rows = [
        [clf.upper()] + [scores[m][clf] for m in METHOD_ORDER]
        for clf in CLASSIFIERS
    ]
    print(format_table(["CLF"] + list(METHOD_ORDER), rows))
    print()
    print(format_table(
        ["fit seconds"] + list(METHOD_ORDER),
        [[""] + [times[m] for m in METHOD_ORDER]],
    ))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", type=str, default="magic",
                        choices=list(BENCHMARK_NAMES))
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()
    main(args.dataset, args.scale)
