"""Fraud detection at business scale — the paper's motivating workload.

Run:  python examples/fraud_detection.py [--scale 0.005]

Reproduces the Table VIII setting on the ``data1`` surrogate (81 features,
~1.5% fraud rate): fit SAFE on heavily imbalanced transaction-style data,
then compare the three production classifiers (LR, RF, XGB) on original
vs. SAFE features. Also demonstrates the deployment flow the paper's
"real-time inference" requirement implies: the fitted plan is saved to
JSON, reloaded, and used to score single transactions.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import (
    SAFE,
    FeatureTransformer,
    SAFEConfig,
    load_business,
    make_classifier,
    roc_auc_score,
)


def main(scale: float) -> None:
    train, valid, test = load_business("data1", scale=scale)
    pos_rate = 100 * float(train.y.mean())
    print(f"data1 surrogate: {train.n_rows} train rows, {train.n_cols} features, "
          f"{pos_rate:.2f}% fraud")

    safe = SAFE(SAFEConfig(n_iterations=1, gamma=40))
    psi = safe.fit(train, valid)
    trace = safe.traces_[0]
    print(f"SAFE: {trace.n_paths} tree paths -> {trace.n_combinations} combinations "
          f"-> {trace.n_generated} generated -> {psi.n_output_features} selected")

    train_new, test_new = psi.transform(train), psi.transform(test)
    print(f"\n{'CLF':4s}  {'ORIG':>7s}  {'SAFE':>7s}")
    for clf_name in ("lr", "rf", "xgb"):
        aucs = {}
        for label, (tr, te) in (("ORIG", (train, test)), ("SAFE", (train_new, test_new))):
            clf = make_classifier(clf_name)
            clf.fit(tr.X, tr.require_labels())
            aucs[label] = 100 * roc_auc_score(te.y, clf.predict_proba(te.X)[:, 1])
        print(f"{clf_name.upper():4s}  {aucs['ORIG']:7.2f}  {aucs['SAFE']:7.2f}")

    # Deployment: persist the plan, reload it "in the serving process",
    # and transform one transaction at a time.
    with tempfile.TemporaryDirectory() as tmp:
        plan = Path(tmp) / "fraud_features.json"
        psi.save(plan)
        serving = FeatureTransformer.load(plan)
        clf = make_classifier("xgb")
        clf.fit(train_new.X, train_new.require_labels())
        transaction = test.X[0]
        features = serving.transform_matrix(transaction)
        score = clf.predict_proba(features.reshape(1, -1))[0, 1]
        print(f"\nserved one transaction -> fraud score {score:.4f}")
        print("top generated signals:")
        for name in serving.feature_names[:5]:
            print(f"  {name}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.005,
                        help="fraction of Table VII row counts (1.0 = paper scale)")
    args = parser.parse_args()
    main(args.scale)
