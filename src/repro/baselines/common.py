"""Shared machinery for the comparison methods of Section V.

RAND and IMP "follow the same feature selection process as SAFE"
(§V-A.1), so the selection pass lives here; the methods differ only in
*which* feature combinations they feed to the operators.
"""

from __future__ import annotations

from itertools import combinations as iter_combinations

import numpy as np

from ..core.generation import Combination, RankedCombination, generate_features
from ..core.selection import select_features
from ..core.transform import FeatureTransformer
from ..exceptions import DataError
from ..operators.engine import EvalCache, evaluate_forest
from ..operators.expressions import Expression, Var
from ..tabular.dataset import Dataset
from ..tabular.preprocess import clean_matrix


def pairs_to_combinations(pairs: "list[tuple[int, ...]]") -> list[RankedCombination]:
    """Wrap raw index tuples as unranked combinations (no split values)."""
    out = []
    for features in pairs:
        features = tuple(sorted(features))
        out.append(
            RankedCombination(
                combination=Combination(
                    features=features,
                    split_values=tuple(() for _ in features),
                ),
                gain_ratio=0.0,
            )
        )
    return out


def sample_combinations(
    feature_pool: "list[int]",
    size: int,
    gamma: int,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Draw up to ``gamma`` distinct size-``size`` combinations uniformly."""
    if len(feature_pool) < size:
        raise DataError(
            f"cannot form size-{size} combinations from {len(feature_pool)} features"
        )
    all_combos = list(iter_combinations(sorted(feature_pool), size))
    if gamma >= len(all_combos):
        return all_combos
    picks = rng.choice(len(all_combos), size=gamma, replace=False)
    return [all_combos[i] for i in picks]


def run_generation_and_selection(
    ranked: "list[RankedCombination]",
    operator_names: tuple[str, ...],
    train: Dataset,
    valid: "Dataset | None",
    max_output: "int | None",
    iv_threshold: float,
    iv_bins: int,
    pearson_threshold: float,
    ranking_n_estimators: int,
    ranking_max_depth: int,
    random_state: "int | None",
    method_name: str,
    n_jobs: int = 1,
) -> FeatureTransformer:
    """Apply operators to ``ranked`` combos, then SAFE's selection pass."""
    y = train.require_labels()
    base = [Var(i) for i in range(train.n_cols)]
    train_cache = EvalCache(train.X)
    new_exprs = generate_features(
        ranked,
        operator_names,
        base,
        train.X,
        existing_keys={e.key for e in base},
        cache=train_cache,
        n_jobs=n_jobs,
    )
    candidates: list[Expression] = base + new_exprs
    # Both evaluate_forest blocks are freshly allocated (cache columns are
    # copied into them), so clean_matrix may sanitize in place.
    X_cand = clean_matrix(evaluate_forest(candidates, cache=train_cache), copy=False)
    eval_cand = None
    if valid is not None and valid.y is not None:
        eval_cand = (
            clean_matrix(evaluate_forest(candidates, valid.X), copy=False),
            valid.y,
        )
    if max_output is None:
        max_output = 2 * train.n_cols
    report = select_features(
        X_cand,
        y,
        eval_cand,
        alpha=iv_threshold,
        iv_bins=iv_bins,
        theta=pearson_threshold,
        ranking_n_estimators=ranking_n_estimators,
        ranking_max_depth=ranking_max_depth,
        max_output=max_output,
        random_state=random_state,
        n_jobs=n_jobs,
    )
    chosen = [candidates[i] for i in report.final_order]
    if not chosen:
        chosen = base
    return FeatureTransformer(
        expressions=tuple(chosen),
        original_names=train.names,
        metadata={"method": method_name, "n_generated": len(new_exprs)},
    )
