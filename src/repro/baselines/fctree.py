"""FCTree baseline (Fan et al., SDM 2010) — feature-constructing decision tree.

FCTree grows a decision tree in which every node chooses its split among
the original features *plus* ``ne`` freshly constructed candidate features
(a random operator applied to random parents — the paper's "sequential
transformations"). Constructed features that win an internal-node split
are the generated output. Selection-by-information-gain happens *at every
node*, which is what makes the method heuristic-free but also what gives
it the ``O(ne · N · (log N)²)`` cost of Eq. (9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.interface import AutoFeatureEngineer
from ..core.transform import FeatureTransformer
from ..exceptions import ConfigurationError
from ..metrics.information import entropy
from ..operators.base import resolve_operators
from ..operators.expressions import Expression, Var, fit_applied
from ..tabular.binning import equal_frequency_edges
from ..tabular.dataset import Dataset
from ..tabular.preprocess import clean_matrix
from ..utils import check_random_state
from .tfc import _binned_information_gain

_EPS = 1e-12


def _best_threshold_gain(col: np.ndarray, y: np.ndarray, n_bins: int) -> float:
    """Best single-threshold information gain for one column on one node."""
    finite = col[np.isfinite(col)]
    if finite.size < 2 or np.all(finite == finite[0]):
        return 0.0
    edges = equal_frequency_edges(col, n_bins)
    if edges.size == 0:
        return 0.0
    parent = entropy(y)
    n = y.size
    best = 0.0
    pos = (y == 1).astype(np.float64)
    for t in edges:
        left = col <= t
        nl = int(left.sum())
        if nl == 0 or nl == n:
            continue
        pl = pos[left].sum() / nl
        pr = (pos.sum() - pos[left].sum()) / (n - nl)
        hl = _binary_entropy(pl)
        hr = _binary_entropy(pr)
        gain = parent - (nl / n) * hl - ((n - nl) / n) * hr
        if gain > best:
            best = gain
    return best


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return float(-(p * np.log(p) + (1 - p) * np.log(1 - p)))


@dataclass
class FCTree(AutoFeatureEngineer):
    """Feature-construction tree: per-node candidate generation + IG splits.

    Parameters
    ----------
    ne:
        Constructed candidates evaluated per node (the paper's ``ne``).
    max_depth, min_samples_split:
        Tree growth bounds.
    """

    operators: tuple[str, ...] = ("add", "sub", "mul", "div")
    ne: int = 20
    max_depth: int = 12
    min_samples_split: int = 10
    n_bins: int = 10
    max_output_features: "int | None" = None
    random_state: "int | None" = 0
    name: str = "FCT"

    #: Constructed expressions chosen at internal nodes in the last fit.
    constructed_: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.ne < 1:
            raise ConfigurationError("ne must be >= 1")
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")

    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        y = train.require_labels()
        rng = check_random_state(self.random_state)
        ops = [op for op in resolve_operators(self.operators) if op.arity == 2]
        if not ops:
            raise ConfigurationError("FCTree needs at least one binary operator")
        n_cols = train.n_cols
        base: list[Expression] = [Var(i) for i in range(n_cols)]
        X = clean_matrix(train.X)
        max_output = self.max_output_features
        if max_output is None:
            max_output = 2 * n_cols

        self.constructed_ = []
        seen_keys = {e.key for e in base}

        def sample_candidate() -> Expression:
            op = ops[rng.integers(0, len(ops))]
            i, j = rng.choice(n_cols, size=2, replace=False)
            return fit_applied(op, (Var(int(i)), Var(int(j))), train.X)

        def build(rows: np.ndarray, depth: int) -> None:
            y_node = y[rows]
            if (
                depth >= self.max_depth
                or rows.size < self.min_samples_split
                or y_node.min() == y_node.max()
            ):
                return
            # Candidates: all originals + ne constructed ones.
            candidates: list[Expression] = list(base)
            for _ in range(self.ne):
                expr = sample_candidate()
                candidates.append(expr)
            best_gain, best_expr, best_col = 0.0, None, None
            for expr in candidates:
                if isinstance(expr, Var):
                    col = X[rows, expr.index]
                else:
                    col = clean_matrix(
                        expr.evaluate(train.X[rows]).reshape(-1, 1)
                    ).ravel()
                gain = _best_threshold_gain(col, y_node, self.n_bins)
                if gain > best_gain + _EPS:
                    best_gain, best_expr, best_col = gain, expr, col
            if best_expr is None:
                return
            if not isinstance(best_expr, Var) and best_expr.key not in seen_keys:
                seen_keys.add(best_expr.key)
                self.constructed_.append(best_expr)
            # Split at the best threshold of the winning feature and recurse.
            edges = equal_frequency_edges(best_col, self.n_bins)
            if edges.size == 0:
                return
            gains = [
                _split_gain_at(best_col, y_node, t) for t in edges
            ]
            t = float(edges[int(np.argmax(gains))])
            left = best_col <= t
            if not left.any() or left.all():
                return
            build(rows[left], depth + 1)
            build(rows[~left], depth + 1)

        build(np.arange(train.n_rows), 0)

        # Output: originals + constructed, reduced to 2M by information gain
        # (the paper reduces FCTree's features "according to information
        # gain" for comparability).
        candidates = base + self.constructed_
        scores = np.empty(len(candidates))
        for k, expr in enumerate(candidates):
            col = clean_matrix(expr.evaluate(train.X).reshape(-1, 1)).ravel()
            scores[k] = _binned_information_gain(col, y, 10)
        order = np.lexsort((np.arange(scores.size), -scores))[:max_output]
        chosen = [candidates[k] for k in order]
        return FeatureTransformer(
            expressions=tuple(chosen),
            original_names=train.names,
            metadata={"method": self.name, "n_constructed": len(self.constructed_)},
        )


def _split_gain_at(col: np.ndarray, y: np.ndarray, t: float) -> float:
    n = y.size
    left = col <= t
    nl = int(left.sum())
    if nl == 0 or nl == n:
        return 0.0
    pos = (y == 1).astype(np.float64)
    pl = pos[left].sum() / nl
    pr = (pos.sum() - pos[left].sum()) / (n - nl)
    return entropy(y) - (nl / n) * _binary_entropy(pl) - ((n - nl) / n) * _binary_entropy(pr)
