"""TFC baseline (Piramuthu & Sikora, 2009) — exhaustive generate-then-select.

One iteration of the TFC framework, matching the paper's comparison
setup: generate *all* legal features (every ordered/unordered feature pair
for every operator of the set — the source of its O(N·M²) cost), then
keep the best ``2M`` candidates by information gain against the label.

A ``max_candidates`` guard (default unlimited) exists so unit tests can
bound runtime; the experiment harness runs it unguarded to reproduce
Table V's blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations as iter_combinations

import numpy as np

from ..core.interface import AutoFeatureEngineer
from ..core.transform import FeatureTransformer
from ..metrics.information import information_gain
from ..operators.base import resolve_operators
from ..operators.expressions import Expression, Var, fit_applied
from ..tabular.binning import Binner
from ..tabular.dataset import Dataset
from ..tabular.preprocess import clean_matrix


@dataclass
class TFC(AutoFeatureEngineer):
    """Exhaustive pairwise feature construction + information-gain ranking."""

    operators: tuple[str, ...] = ("add", "sub", "mul", "div")
    max_output_features: "int | None" = None
    n_bins: int = 10
    max_candidates: "int | None" = None
    name: str = "TFC"

    #: Number of candidate features generated during the last fit.
    n_generated_: int = field(default=0, repr=False)

    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        y = train.require_labels()
        ops = resolve_operators(self.operators)
        base: list[Expression] = [Var(i) for i in range(train.n_cols)]
        max_output = self.max_output_features
        if max_output is None:
            max_output = 2 * train.n_cols

        # --- Generation: all legal features --------------------------
        candidates: list[Expression] = list(base)
        seen = {e.key for e in base}
        budget = self.max_candidates
        for i, j in iter_combinations(range(train.n_cols), 2):
            for op in ops:
                if op.arity != 2:
                    continue
                orders = [(i, j)] if op.commutative else [(i, j), (j, i)]
                for a, b in orders:
                    expr = fit_applied(op, (Var(a), Var(b)), train.X)
                    if expr.key in seen:
                        continue
                    seen.add(expr.key)
                    candidates.append(expr)
            if budget is not None and len(candidates) - len(base) >= budget:
                break
        self.n_generated_ = len(candidates) - len(base)

        # --- Selection: information gain ranking ----------------------
        scores = np.empty(len(candidates))
        for k, expr in enumerate(candidates):
            col = clean_matrix(expr.evaluate(train.X).reshape(-1, 1)).ravel()
            scores[k] = _binned_information_gain(col, y, self.n_bins)
        order = np.lexsort((np.arange(scores.size), -scores))[:max_output]
        chosen = [candidates[k] for k in order]
        if not chosen:
            chosen = base
        return FeatureTransformer(
            expressions=tuple(chosen),
            original_names=train.names,
            metadata={"method": self.name, "n_generated": self.n_generated_},
        )


def _binned_information_gain(col: np.ndarray, y: np.ndarray, n_bins: int) -> float:
    """Information gain of a feature after equal-frequency discretization."""
    finite = col[np.isfinite(col)]
    if finite.size == 0 or np.all(finite == finite[0]):
        return 0.0
    codes = Binner(n_bins=n_bins, strategy="quantile").fit_transform(col)
    return information_gain(y, codes)
