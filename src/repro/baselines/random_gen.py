"""RAND and IMP — the paper's own ablation baselines (§V-A.1).

* **RAND** randomly selects γ feature combinations from *all* original
  features.
* **IMP** (SAFE-Important) randomly selects γ combinations from the
  *split features* of a trained XGBoost model, isolating the value of the
  "split features matter" assumption from the full same-path mining.

Both share SAFE's operator application and three-stage selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import SAFEConfig
from ..core.generation import fit_mining_model
from ..core.transform import FeatureTransformer
from ..exceptions import DataError
from ..tabular.dataset import Dataset
from ..tabular.preprocess import clean_matrix
from ..utils import check_random_state
from .common import pairs_to_combinations, run_generation_and_selection, sample_combinations
from ..core.interface import AutoFeatureEngineer


@dataclass
class RandomGenerator(AutoFeatureEngineer):
    """RAND: γ uniformly random combinations over all original features."""

    config: SAFEConfig = field(default_factory=SAFEConfig)
    name: str = "RAND"

    def _feature_pool(self, train: Dataset, valid: "Dataset | None") -> list[int]:
        return list(range(train.n_cols))

    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        cfg = self.config
        rng = check_random_state(cfg.random_state)
        pool = self._feature_pool(train, valid)
        if not pool:
            raise DataError(f"{self.name}: empty feature pool")
        size = min(2, len(pool))  # binary combinations, as in §V
        pairs = (
            sample_combinations(pool, size=size, gamma=cfg.gamma, rng=rng)
            if size == 2
            else []
        )
        # Unary combinations for any unary operators in the set.
        singles = [(f,) for f in pool]
        ranked = pairs_to_combinations(pairs + singles)
        return run_generation_and_selection(
            ranked,
            cfg.operators,
            train,
            valid,
            max_output=cfg.max_output_features,
            iv_threshold=cfg.iv_threshold,
            iv_bins=cfg.iv_bins,
            pearson_threshold=cfg.pearson_threshold,
            ranking_n_estimators=cfg.ranking_n_estimators,
            ranking_max_depth=cfg.ranking_max_depth,
            random_state=cfg.random_state,
            method_name=self.name,
            n_jobs=cfg.n_jobs,
        )


@dataclass
class ImportantGenerator(RandomGenerator):
    """IMP: like RAND, but the pool is the mining model's split features."""

    name: str = "IMP"

    def _feature_pool(self, train: Dataset, valid: "Dataset | None") -> list[int]:
        cfg = self.config
        y = train.require_labels()
        eval_set = None
        if valid is not None and valid.y is not None:
            eval_set = (clean_matrix(valid.X), valid.y)
        model = fit_mining_model(
            clean_matrix(train.X),
            y,
            eval_set,
            n_estimators=cfg.mining_n_estimators,
            max_depth=cfg.mining_max_depth,
            learning_rate=cfg.mining_learning_rate,
            random_state=cfg.random_state,
        )
        pool = sorted(model.split_features())
        if len(pool) < 2:  # fall back to all features on degenerate models
            pool = list(range(train.n_cols))
        return pool
