"""ORIG: the identity baseline (original feature space, Table III)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.interface import AutoFeatureEngineer
from ..core.transform import FeatureTransformer
from ..operators.expressions import Var
from ..tabular.dataset import Dataset


@dataclass
class OriginalFeatures(AutoFeatureEngineer):
    """Pass-through Ψ returning the original columns unchanged."""

    name: str = "ORIG"

    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        return FeatureTransformer(
            expressions=tuple(Var(i) for i in range(train.n_cols)),
            original_names=train.names,
            metadata={"method": self.name},
        )
