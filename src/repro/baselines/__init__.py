"""Comparison methods of Section V: ORIG, FCTree, TFC, RAND, IMP."""

from .autolearn import AutoLearn
from .fctree import FCTree
from .orig import OriginalFeatures
from .random_gen import ImportantGenerator, RandomGenerator
from .tfc import TFC

__all__ = [
    "AutoLearn",
    "FCTree",
    "ImportantGenerator",
    "OriginalFeatures",
    "RandomGenerator",
    "TFC",
]
