"""AutoLearn baseline (Kaul, Maheshwary & Pudi, ICDM 2017).

The paper's related work (§II) and complexity analysis (§IV-D) treat
AutoLearn as the representative regression-based generation-selection
method; §III adopts its ridge / kernel-ridge constructors as binary
operators. The pipeline, as described in the original paper:

1. **Preprocess** — keep original features with non-trivial information
   gain against the label (discretized IG).
2. **Mine pairwise associations** — distance correlation over the
   surviving feature pairs; pairs above a threshold are *related*.
3. **Generate** — for each related ordered pair, fit ridge and kernel
   ridge regressions of one feature on the other and emit the predicted
   and residual columns (4 features per ordered pair).
4. **Select** — stability selection: resample the training set, score
   every candidate by discretized IG each round, and keep features chosen
   in a majority of rounds; rank survivors by mean IG.

Substitution note (DESIGN.md): the original uses randomized lasso for
stability selection; we use bootstrap-IG stability, which preserves the
"stable and informative" criterion without an L1 solver dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.interface import AutoFeatureEngineer
from ..core.transform import FeatureTransformer
from ..exceptions import ConfigurationError
from ..metrics.dependence import related_pairs
from ..operators.expressions import Expression, Var, fit_applied
from ..tabular.dataset import Dataset
from ..tabular.preprocess import clean_matrix
from ..utils import check_random_state
from .tfc import _binned_information_gain


@dataclass
class AutoLearn(AutoFeatureEngineer):
    """Regression-based automatic feature engineering (AutoLearn)."""

    dcor_threshold: float = 0.2
    ig_threshold: float = 0.01
    n_stability_rounds: int = 8
    stability_fraction: float = 0.6
    max_pairs: int = 200
    max_output_features: "int | None" = None
    random_state: "int | None" = 0
    name: str = "AUTO"

    #: Diagnostics from the last fit.
    n_related_pairs_: int = field(default=0, repr=False)
    n_generated_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.dcor_threshold <= 1:
            raise ConfigurationError("dcor_threshold must be in [0, 1]")
        if self.n_stability_rounds < 1:
            raise ConfigurationError("n_stability_rounds must be >= 1")
        if not 0 < self.stability_fraction <= 1:
            raise ConfigurationError("stability_fraction must be in (0, 1]")

    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        y = train.require_labels()
        rng = check_random_state(self.random_state)
        X = clean_matrix(train.X)
        max_output = self.max_output_features
        if max_output is None:
            max_output = 2 * train.n_cols

        # 1. Preprocess: drop original features with negligible IG.
        base_scores = np.array(
            [_binned_information_gain(X[:, j], y, 10) for j in range(train.n_cols)]
        )
        informative = [
            j for j in range(train.n_cols) if base_scores[j] > self.ig_threshold
        ]
        if len(informative) < 2:
            informative = list(np.argsort(-base_scores)[: max(2, train.n_cols // 4)])

        # 2. Mine related pairs by distance correlation.
        pairs = related_pairs(X[:, informative], threshold=self.dcor_threshold)
        pairs = [(informative[i], informative[j], s) for i, j, s in pairs]
        pairs = pairs[: self.max_pairs]
        self.n_related_pairs_ = len(pairs)

        # 3. Generate ridge / kernel-ridge predicted + residual features.
        generated: list[Expression] = []
        seen: set[str] = {f"x{j}" for j in range(train.n_cols)}
        for i, j, __ in pairs:
            for a, b in ((i, j), (j, i)):
                for op_name in ("ridge", "ridge_residual",
                                "kernel_ridge", "kernel_ridge_residual"):
                    expr = fit_applied(op_name, (Var(a), Var(b)), train.X)
                    if expr.key in seen:
                        continue
                    seen.add(expr.key)
                    generated.append(expr)
        self.n_generated_ = len(generated)

        base: list[Expression] = [Var(j) for j in range(train.n_cols)]
        candidates = base + generated
        cols = clean_matrix(
            np.column_stack([e.evaluate(train.X) for e in candidates])
        )

        # 4. Stability selection: bootstrap-IG votes.
        n = train.n_rows
        votes = np.zeros(len(candidates))
        mean_ig = np.zeros(len(candidates))
        keep_per_round = max(max_output, len(base))
        for __ in range(self.n_stability_rounds):
            idx = rng.integers(0, n, size=n)
            y_boot = y[idx]
            if y_boot.min() == y_boot.max():
                continue
            scores = np.array([
                _binned_information_gain(cols[idx, k], y_boot, 10)
                for k in range(len(candidates))
            ])
            mean_ig += scores
            chosen = np.argsort(-scores)[:keep_per_round]
            votes[chosen] += 1
        mean_ig /= self.n_stability_rounds  # repro: ignore[div-guard] n_stability_rounds is a positive config count
        stable = votes >= self.stability_fraction * self.n_stability_rounds
        if not stable.any():
            stable = np.ones(len(candidates), dtype=bool)
        order = np.lexsort((np.arange(len(candidates)), -mean_ig))
        final = [k for k in order if stable[k]][:max_output]
        chosen_exprs = [candidates[k] for k in final] or base
        return FeatureTransformer(
            expressions=tuple(chosen_exprs),
            original_names=train.names,
            metadata={
                "method": self.name,
                "n_related_pairs": self.n_related_pairs_,
                "n_generated": self.n_generated_,
            },
        )
