"""Parallel execution helpers (the §IV-E.2 distributed-computing story).

The paper's industrial requirements include that "most parts of the
automatic feature engineering algorithm should be able to be calculated
in parallel", calling out per-feature information value and per-pair
Pearson correlation explicitly. This module provides the process-pool
machinery; :func:`parallel_information_values` is the IV stage's
parallel path, :func:`parallel_score_combinations` chunks the
Algorithm 2 ranking over combinations, and
:func:`parallel_generate_features` chunks the operator-application
stage over the surviving combinations, and
:func:`parallel_max_abs_correlation` chunks the redundancy stage's
candidate-vs-kept correlation reductions (all enabled with
``SAFEConfig(n_jobs=...)``). :func:`parallel_stream_iv_counts` is the
row-sharded variant for the out-of-core fit: workers receive contiguous
:class:`~repro.tabular.ChunkedDataset` shards (paths, not rows) and
return mergeable count partials, so the fan-out axis is rows rather
than columns/combinations.

Design notes:

* work is chunked so each worker amortizes the pickle/IPC overhead over
  many columns rather than paying it per column;
* ``n_jobs=1`` short-circuits to the serial path — no pool, no copies —
  so the default configuration has zero overhead;
* workers receive ``(chunk_of_columns, labels)`` and return plain float
  lists, keeping the picklable surface small.

Fault tolerance: every pool execution goes through :func:`_run_pool`,
which (a) retries infrastructure failures — ``BrokenProcessPool``,
pickling errors, per-attempt timeouts — under a
:class:`~repro.runtime.RetryPolicy`, (b) falls back to in-process
serial execution with a warning when the retries are exhausted (a
degraded fit beats a crashed one), and (c) detects environments where a
``ProcessPoolExecutor`` cannot start at all (sandboxed CI without
semaphores / ``/dev/shm``) and switches this process to serial with a
single warning. The ``parallel.pool`` failpoint sits inside each
attempt so chaos tests can kill the pool deterministically. Because the
serial fallback runs the exact same chunk payloads in order, results
are identical to a healthy pool run.

The streaming reducers use :func:`parallel_shard_reduce` instead, which
tracks completion *per row shard*: only failed or lost shards are
re-submitted (under per-shard attempt caps), exhaustion raises a typed
:class:`~repro.exceptions.ShardFailureError` carrying the shard's row
range, merges happen in deterministic shard order, and an optional
sufficient-statistic store persists the merged prefix between rounds so
a killed fit resumes without recounting finished shards. The
``stream.shard.run`` failpoint sits at the top of each shard worker.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from .exceptions import ConfigurationError, InjectedFault, ShardFailureError
from .runtime.failpoints import failpoint, mark_worker_process
from .runtime.retry import RetryPolicy

T = TypeVar("T")
R = TypeVar("R")

#: Default policy for pool attempts; swap via :func:`set_retry_policy`.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=1.0)

#: Infrastructure failures worth retrying (data errors are not).
_RETRYABLE = (
    BrokenProcessPool,
    FuturesTimeoutError,
    pickle.PicklingError,
    InjectedFault,
)

_retry_policy = DEFAULT_RETRY_POLICY

#: Set once this process has proven unable to start a pool.
_pool_unavailable = False


def set_retry_policy(policy: "RetryPolicy | None") -> RetryPolicy:
    """Install the pool retry policy (``None`` restores the default)."""
    global _retry_policy
    _retry_policy = DEFAULT_RETRY_POLICY if policy is None else policy
    return _retry_policy


def _reset_pool_state() -> None:
    """Forget a recorded pool-unavailable verdict (test hook)."""
    global _pool_unavailable
    _pool_unavailable = False


def _serial(worker: Callable[[T], R], payloads: Sequence[T]) -> "list[R]":
    return [worker(payload) for payload in payloads]


def _run_pool(
    worker: Callable[[T], R],
    payloads: Sequence[T],
    max_workers: int,
    label: str,
) -> "list[R]":
    """Execute chunk payloads on a process pool, surviving pool faults.

    Result order always matches ``payloads``. Exceptions raised *by the
    worker about its data* propagate unchanged on the first attempt —
    only infrastructure failures (broken pool, pickling, timeout,
    injected faults) are retried and, on exhaustion, degraded to serial
    in-process execution with a warning.
    """
    global _pool_unavailable
    if _pool_unavailable:
        return _serial(worker, payloads)
    policy = _retry_policy
    last: "BaseException | None" = None
    for delay in policy.delays():
        if delay > 0.0:
            policy_sleep(delay)
        try:
            failpoint("parallel.pool")
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(
                    pool.map(worker, payloads, timeout=policy.per_attempt_timeout)
                )
        except _RETRYABLE as exc:
            last = exc
        except (OSError, ImportError, NotImplementedError) as exc:
            # The executor machinery itself cannot run here (no
            # semaphores, read-only /dev/shm, sandboxed CI): remember the
            # verdict and warn exactly once for the whole process.
            _pool_unavailable = True
            warnings.warn(
                "process pools are unavailable in this environment "
                f"({exc!r}); running all parallel work serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return _serial(worker, payloads)
    warnings.warn(
        f"parallel {label} failed after {policy.max_attempts} attempt(s) "
        f"({last!r}); falling back to serial in-process execution",
        RuntimeWarning,
        stacklevel=3,
    )
    return _serial(worker, payloads)


def policy_sleep(seconds: float) -> None:
    """Indirection over ``time.sleep`` so tests can stub backoff waits."""
    import time

    time.sleep(seconds)


def resolve_n_jobs(n_jobs: "int | None") -> int:
    """Normalize an ``n_jobs`` request: None/1 → 1, -1 → all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be >= 1 or -1 for all cores")
    return int(n_jobs)


def chunk_indices(n_items: int, n_chunks: int) -> list[np.ndarray]:
    """Split ``range(n_items)`` into at most ``n_chunks`` balanced runs."""
    if n_items <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n_items))
    return list(np.array_split(np.arange(n_items), n_chunks))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: "int | None" = None,
) -> list[R]:
    """Map ``fn`` over ``items`` with an optional process pool.

    ``fn`` must be picklable (module-level). Order of results matches the
    order of ``items``.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    return _run_pool(fn, items, jobs, "map")


def _iv_chunk(payload: "tuple[np.ndarray, np.ndarray, int]") -> list[float]:
    """Worker: IVs for a block of columns (module-level for pickling)."""
    block, y, n_bins = payload
    from .core.selection import information_values_safe

    return information_values_safe(block, y, n_bins).tolist()


def parallel_information_values(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Per-column information values, optionally across processes.

    The parallel path partitions columns into one block per worker; each
    block travels to its worker once, matching the paper's "calculate the
    information value of the individual feature ... in parallel".
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.selection import information_values_safe

    if jobs == 1 or X.shape[1] <= 1:
        return information_values_safe(X, y, n_bins)
    chunks = chunk_indices(X.shape[1], jobs)
    payloads = [(np.ascontiguousarray(X[:, idx]), y, n_bins) for idx in chunks]
    results = _run_pool(_iv_chunk, payloads, jobs, "information-value")
    out = np.empty(X.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _rank_chunk(payload: "tuple[np.ndarray, np.ndarray, list]") -> list[float]:
    """Worker: gain ratios for a block of combinations."""
    X, y, combos = payload
    from .core.scoring import score_combinations

    return score_combinations(X, y, combos).tolist()


def parallel_score_combinations(
    X: np.ndarray,
    y: np.ndarray,
    combos: "list",
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Algorithm 2 gain ratios, chunked over *combinations*.

    Each worker gets a block of combinations plus only the columns that
    block references (features are remapped onto the narrowed matrix), so
    the per-feature quantization cache is built once per worker and IPC
    ships the minimum slice of ``X``. Result order matches ``combos``.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.generation import Combination
    from .core.scoring import score_combinations

    if jobs == 1 or len(combos) <= 1:
        return score_combinations(X, y, combos)
    chunks = chunk_indices(len(combos), jobs)
    payloads = []
    for idx in chunks:
        block = [combos[i] for i in idx]
        cols = sorted({f for combo in block for f in combo.features})
        remap = {f: k for k, f in enumerate(cols)}
        narrowed = [
            Combination(
                features=tuple(remap[f] for f in combo.features),
                split_values=combo.split_values,
            )
            for combo in block
        ]
        payloads.append((np.ascontiguousarray(X[:, cols]), y, narrowed))
    results = _run_pool(_rank_chunk, payloads, jobs, "ranking")
    out = np.empty(len(combos))
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _generate_chunk(
    payload: "tuple[list, tuple, list, np.ndarray, set, bool]",
) -> "tuple[list, list]":
    """Worker: generated expressions (+ quarantine) for ranked combinations."""
    ranked, operator_names, base_expressions, X, existing, quarantine_on = payload
    from .core.generation import generate_features

    quarantine: list = [] if quarantine_on else None
    exprs = generate_features(
        ranked,
        operator_names,
        base_expressions,
        X,
        existing_keys=existing,
        quarantine=quarantine,
    )
    return exprs, (quarantine or [])


def parallel_generate_features(
    ranked: "list",
    operator_names: "tuple[str, ...]",
    base_expressions: "list",
    X: np.ndarray,
    existing_keys: "set[str]",
    n_jobs: "int | None" = None,
    quarantine: "list | None" = None,
) -> list:
    """Feature generation (Algorithm 1 line 6), chunked over combinations.

    Each worker runs the batched generation engine on its block of ranked
    combinations with its own per-process :class:`EvalCache`; expression
    trees (with fitted state) travel back over IPC. Because stateful fits
    are deterministic functions of ``X``, merging the chunks in order and
    dropping later duplicates reproduces the serial output exactly.
    ``quarantine`` (a list, or None to disable) receives
    :class:`~repro.runtime.QuarantineRecord` entries collected inside the
    workers, deduplicated by expression key like the expressions
    themselves.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.generation import generate_features

    if jobs == 1 or len(ranked) <= 1:
        return generate_features(
            ranked, operator_names, base_expressions, X, existing_keys,
            quarantine=quarantine,
        )
    chunks = chunk_indices(len(ranked), jobs)
    existing = set(existing_keys)
    payloads = [
        (
            [ranked[i] for i in idx],
            tuple(operator_names),
            list(base_expressions),
            X,
            existing,
            quarantine is not None,
        )
        for idx in chunks
    ]
    results = _run_pool(_generate_chunk, payloads, jobs, "generation")
    out: list = []
    seen = set(existing)
    quarantined_keys: set = set()
    for block, records in results:
        for expr in block:
            if expr.key in seen:
                continue
            seen.add(expr.key)
            out.append(expr)
        if quarantine is None:
            continue
        for record in records:
            if record.key in quarantined_keys:
                continue
            quarantined_keys.add(record.key)
            quarantine.append(record)
    return out


def _corr_chunk(
    payload: "tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]",
) -> list[float]:
    """Worker: candidate-vs-kept max |Pearson| for a block of candidates."""
    Z, panel, cand_constant, kept_constant = payload
    from .core.redundancy import max_abs_correlation

    return max_abs_correlation(
        Z, panel, cand_constant=cand_constant, kept_constant=kept_constant
    ).tolist()


def parallel_max_abs_correlation(
    Z: np.ndarray,
    panel: np.ndarray,
    cand_constant: "np.ndarray | None" = None,
    kept_constant: "np.ndarray | None" = None,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Redundancy-stage candidate-vs-kept correlation, chunked over candidates.

    The paper calls out per-pair Pearson correlation as parallelizable
    (§IV-E.2); in the blocked incremental greedy the parallel unit is one
    chunk of a candidate block's standardized columns, each worker
    reducing its chunk against the (shared) kept panel to per-candidate
    maxima. Result order matches ``Z``'s columns.

    Cost note: every worker receives a pickled copy of the kept panel per
    block, so this pays O(jobs * kept * n) IPC per block where the serial
    path is a single in-process (and BLAS-threaded) GEMM. Worth it only
    when BLAS is pinned to one thread per process or the per-row work is
    heavy; the ``n_jobs=1`` default keeps the zero-copy serial path.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.redundancy import max_abs_correlation

    if jobs == 1 or Z.shape[1] <= 1:
        return max_abs_correlation(
            Z, panel, cand_constant=cand_constant, kept_constant=kept_constant
        )
    chunks = chunk_indices(Z.shape[1], jobs)
    panel = np.asfortranarray(panel)
    payloads = [
        (
            np.asfortranarray(Z[:, idx]),
            panel,
            None if cand_constant is None else cand_constant[idx],
            kept_constant,
        )
        for idx in chunks
    ]
    results = _run_pool(_corr_chunk, payloads, jobs, "redundancy")
    out = np.empty(Z.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _stream_iv_shard(payload) -> "np.ndarray | None":
    """Worker: merged IV bin counts over one dataset row shard.

    The shard is a :class:`~repro.tabular.ChunkedDataset` view — file
    backing ships as paths and re-opens its memory maps in the worker,
    so no rows cross the process boundary. Returns the shard's merged
    ``(2, n_cols, stride)`` counts, or None for an empty shard.
    """
    shard, expressions, edges_per_col, scorable, stride = payload
    from .core.stream import forest_chunks
    from .metrics.batched import iv_bin_counts, merge_counts

    failpoint("stream.shard.run")
    counts = None
    for _, block, y_chunk in forest_chunks(shard, expressions)():
        pos_mask = np.asarray(y_chunk, dtype=np.float64).ravel() == 1
        part = iv_bin_counts(
            np.ascontiguousarray(block.T),
            pos_mask,
            edges_per_col,
            scorable,
            stride,
        )
        counts = part if counts is None else merge_counts(counts, part)
    return counts


#: Placeholder for a shard whose result has not arrived yet.
_SHARD_PENDING = object()


def parallel_shard_reduce(
    worker: "Callable[[T], R | None]",
    payloads: "Sequence[T]",
    shard_ranges: "Sequence[tuple[int, int]]",
    merge: "Callable[[R, R], R]",
    n_jobs: int,
    label: str,
    stats=None,
    stage: str = "shards",
) -> "R | None":
    """Run one worker per row shard, retrying and merging in shard order.

    This is the recovery-aware counterpart of :func:`_run_pool` for the
    streaming reducers: instead of all-or-nothing attempts over the whole
    payload list, each shard is tracked individually. A round submits one
    future per outstanding shard (workers are marked via
    :func:`~repro.runtime.failpoints.mark_worker_process` so ``kill``
    failpoints may take them down); shards whose futures fail with an
    infrastructure error (broken pool, timeout, pickling, injected fault)
    are re-submitted in later rounds while completed shards keep their
    results. Attempts are capped *per shard* by the installed
    :class:`~repro.runtime.RetryPolicy`; a shard's final attempt always
    runs serially in-process (rescuing flaky pool infrastructure, and
    degrading ``kill`` faults to catchable exceptions). When a shard
    exhausts its attempts a :class:`~repro.exceptions.ShardFailureError`
    carrying the shard's row range propagates. Exceptions the worker
    raises about its *data* propagate unchanged on the first failure.

    Results merge strictly in shard-index order (never completion
    order), so the reduction is bit-identical to a serial pass. ``None``
    results (empty shards) are skipped; returns ``None`` only if every
    shard was empty.

    ``stats`` (a :class:`~repro.runtime.StatsCheckpointStore` or scoped
    view) enables merged-prefix snapshots: after each round the longest
    contiguous prefix of merged shard results is persisted under
    ``stage``, and a later call with the same store resumes past those
    shards without recomputing them.
    """
    global _pool_unavailable
    n = len(payloads)
    if n == 0:
        return None
    if len(shard_ranges) != n:
        raise ConfigurationError(
            "parallel_shard_reduce needs one (row_start, row_stop) per payload"
        )
    policy = _retry_policy
    results: list = [_SHARD_PENDING] * n
    merged: "R | None" = None
    next_shard = 0
    if stats is not None:
        from .runtime.checkpoint import MISSING

        snapshot = stats.load(stage)
        if snapshot is not MISSING and int(snapshot.get("n_shards", -1)) == n:
            next_shard = int(snapshot["next_shard"])
            merged = snapshot["state"]

    def advance_prefix() -> None:
        """Fold newly contiguous results into ``merged``; snapshot progress."""
        nonlocal merged, next_shard
        moved = False
        while next_shard < n and results[next_shard] is not _SHARD_PENDING:
            part = results[next_shard]
            if part is not None:
                merged = part if merged is None else merge(merged, part)
            results[next_shard] = None
            next_shard += 1
            moved = True
        if moved and next_shard < n and stats is not None:
            stats.save(
                stage,
                {"n_shards": n, "next_shard": next_shard, "state": merged},
            )

    attempts = [0] * n
    pending = list(range(next_shard, n))
    delay_schedule = policy.delays()
    while pending:
        delay = next(delay_schedule, policy.max_delay)
        if delay > 0.0:
            policy_sleep(delay)
        # Shards on their last permitted attempt run serially in-process.
        last_chance = [i for i in pending if attempts[i] >= policy.max_attempts - 1]
        poolable = [i for i in pending if attempts[i] < policy.max_attempts - 1]
        failures: "dict[int, BaseException]" = {}
        if poolable and n_jobs > 1 and not _pool_unavailable:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(poolable)),
                    initializer=mark_worker_process,
                ) as pool:
                    futures = {
                        i: pool.submit(worker, payloads[i]) for i in poolable
                    }
                    for i, future in futures.items():
                        try:
                            results[i] = future.result(
                                timeout=policy.per_attempt_timeout
                            )
                        except _RETRYABLE as exc:
                            failures[i] = exc
            except (OSError, ImportError, NotImplementedError) as exc:
                _pool_unavailable = True
                warnings.warn(
                    "process pools are unavailable in this environment "
                    f"({exc!r}); running all parallel work serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue  # same shards, same attempt budget, now serial
        else:
            for i in poolable:
                try:
                    results[i] = worker(payloads[i])
                except _RETRYABLE as exc:
                    failures[i] = exc
        for i in last_chance:
            try:
                results[i] = worker(payloads[i])
            except _RETRYABLE as exc:
                failures[i] = exc
        still_pending = []
        for i in sorted(failures):
            attempts[i] += 1
            if attempts[i] >= policy.max_attempts:
                advance_prefix()
                row_start, row_stop = shard_ranges[i]
                raise ShardFailureError(
                    label, i, row_start, row_stop, attempts[i]
                ) from failures[i]
            still_pending.append(i)
        advance_prefix()
        pending = still_pending
    return merged


def parallel_stream_iv_counts(
    data,
    expressions,
    edges_per_col,
    scorable: np.ndarray,
    stride: int,
    n_jobs: "int | None" = None,
    stats=None,
) -> np.ndarray:
    """Row-sharded IV bin counts for the streaming fit, optionally parallel.

    Unlike the column-chunked :func:`parallel_information_values`, this
    fans *rows* out: the dataset splits into contiguous shards
    (``ChunkedDataset.shards``), each worker evaluates the candidate
    expressions over its shard's chunks and accumulates
    :func:`~repro.metrics.batched.iv_bin_counts` partials, and the
    parent merges the shard counts through :func:`parallel_shard_reduce`
    — failed or lost shards are re-submitted individually, and a
    ``stats`` store checkpoints the merged prefix so a crashed fit
    resumes past already-counted shards. Integer merges are exact, so
    the result is bit-identical to the serial single-shard pass
    regardless of worker count or recovery history.
    """
    jobs = resolve_n_jobs(n_jobs)
    shards = data.shards(jobs) if jobs > 1 else [data]
    payloads = [
        (shard, expressions, edges_per_col, scorable, stride)
        for shard in shards
    ]
    shard_ranges = [(shard.start, shard.stop) for shard in shards]
    from .metrics.batched import merge_counts

    counts = parallel_shard_reduce(
        _stream_iv_shard,
        payloads,
        shard_ranges,
        merge_counts,
        jobs,
        "stream-iv",
        stats=stats,
        stage="iv-shards",
    )
    if counts is None:
        raise ConfigurationError("parallel_stream_iv_counts needs a non-empty dataset")
    return counts


def _ig_chunk(payload: "tuple[np.ndarray, np.ndarray, int]") -> list[float]:
    """Worker: binned information gains for a block of columns."""
    block, y, n_bins = payload
    from .baselines.tfc import _binned_information_gain

    return [
        _binned_information_gain(block[:, k], y, n_bins)
        for k in range(block.shape[1])
    ]


def parallel_information_gains(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Per-column discretized information gain, optionally parallel."""
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or X.shape[1] <= 1:
        return np.asarray(_ig_chunk((X, y, n_bins)))
    chunks = chunk_indices(X.shape[1], jobs)
    payloads = [(np.ascontiguousarray(X[:, idx]), y, n_bins) for idx in chunks]
    results = _run_pool(_ig_chunk, payloads, jobs, "information-gain")
    out = np.empty(X.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out
