"""Parallel execution helpers (the §IV-E.2 distributed-computing story).

The paper's industrial requirements include that "most parts of the
automatic feature engineering algorithm should be able to be calculated
in parallel", calling out per-feature information value and per-pair
Pearson correlation explicitly. This module provides the process-pool
machinery; :func:`parallel_information_values` is the IV stage's
parallel path, :func:`parallel_score_combinations` chunks the
Algorithm 2 ranking over combinations, and
:func:`parallel_generate_features` chunks the operator-application
stage over the surviving combinations, and
:func:`parallel_max_abs_correlation` chunks the redundancy stage's
candidate-vs-kept correlation reductions (all enabled with
``SAFEConfig(n_jobs=...)``).

Design notes:

* work is chunked so each worker amortizes the pickle/IPC overhead over
  many columns rather than paying it per column;
* ``n_jobs=1`` short-circuits to the serial path — no pool, no copies —
  so the default configuration has zero overhead;
* workers receive ``(chunk_of_columns, labels)`` and return plain float
  lists, keeping the picklable surface small.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from .exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: "int | None") -> int:
    """Normalize an ``n_jobs`` request: None/1 → 1, -1 → all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ConfigurationError("n_jobs must be >= 1 or -1 for all cores")
    return int(n_jobs)


def chunk_indices(n_items: int, n_chunks: int) -> list[np.ndarray]:
    """Split ``range(n_items)`` into at most ``n_chunks`` balanced runs."""
    if n_items <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n_items))
    return list(np.array_split(np.arange(n_items), n_chunks))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_jobs: "int | None" = None,
) -> list[R]:
    """Map ``fn`` over ``items`` with an optional process pool.

    ``fn`` must be picklable (module-level). Order of results matches the
    order of ``items``.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


def _iv_chunk(payload: "tuple[np.ndarray, np.ndarray, int]") -> list[float]:
    """Worker: IVs for a block of columns (module-level for pickling)."""
    block, y, n_bins = payload
    from .core.selection import information_values_safe

    return information_values_safe(block, y, n_bins).tolist()


def parallel_information_values(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Per-column information values, optionally across processes.

    The parallel path partitions columns into one block per worker; each
    block travels to its worker once, matching the paper's "calculate the
    information value of the individual feature ... in parallel".
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.selection import information_values_safe

    if jobs == 1 or X.shape[1] <= 1:
        return information_values_safe(X, y, n_bins)
    chunks = chunk_indices(X.shape[1], jobs)
    payloads = [(np.ascontiguousarray(X[:, idx]), y, n_bins) for idx in chunks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_iv_chunk, payloads))
    out = np.empty(X.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _rank_chunk(payload: "tuple[np.ndarray, np.ndarray, list]") -> list[float]:
    """Worker: gain ratios for a block of combinations."""
    X, y, combos = payload
    from .core.scoring import score_combinations

    return score_combinations(X, y, combos).tolist()


def parallel_score_combinations(
    X: np.ndarray,
    y: np.ndarray,
    combos: "list",
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Algorithm 2 gain ratios, chunked over *combinations*.

    Each worker gets a block of combinations plus only the columns that
    block references (features are remapped onto the narrowed matrix), so
    the per-feature quantization cache is built once per worker and IPC
    ships the minimum slice of ``X``. Result order matches ``combos``.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.generation import Combination
    from .core.scoring import score_combinations

    if jobs == 1 or len(combos) <= 1:
        return score_combinations(X, y, combos)
    chunks = chunk_indices(len(combos), jobs)
    payloads = []
    for idx in chunks:
        block = [combos[i] for i in idx]
        cols = sorted({f for combo in block for f in combo.features})
        remap = {f: k for k, f in enumerate(cols)}
        narrowed = [
            Combination(
                features=tuple(remap[f] for f in combo.features),
                split_values=combo.split_values,
            )
            for combo in block
        ]
        payloads.append((np.ascontiguousarray(X[:, cols]), y, narrowed))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_rank_chunk, payloads))
    out = np.empty(len(combos))
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _generate_chunk(payload: "tuple[list, tuple, list, np.ndarray, set]") -> list:
    """Worker: generated expressions for a block of ranked combinations."""
    ranked, operator_names, base_expressions, X, existing = payload
    from .core.generation import generate_features

    return generate_features(
        ranked, operator_names, base_expressions, X, existing_keys=existing
    )


def parallel_generate_features(
    ranked: "list",
    operator_names: "tuple[str, ...]",
    base_expressions: "list",
    X: np.ndarray,
    existing_keys: "set[str]",
    n_jobs: "int | None" = None,
) -> list:
    """Feature generation (Algorithm 1 line 6), chunked over combinations.

    Each worker runs the batched generation engine on its block of ranked
    combinations with its own per-process :class:`EvalCache`; expression
    trees (with fitted state) travel back over IPC. Because stateful fits
    are deterministic functions of ``X``, merging the chunks in order and
    dropping later duplicates reproduces the serial output exactly.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.generation import generate_features

    if jobs == 1 or len(ranked) <= 1:
        return generate_features(
            ranked, operator_names, base_expressions, X, existing_keys
        )
    chunks = chunk_indices(len(ranked), jobs)
    existing = set(existing_keys)
    payloads = [
        (
            [ranked[i] for i in idx],
            tuple(operator_names),
            list(base_expressions),
            X,
            existing,
        )
        for idx in chunks
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_generate_chunk, payloads))
    out: list = []
    seen = set(existing)
    for block in results:
        for expr in block:
            if expr.key in seen:
                continue
            seen.add(expr.key)
            out.append(expr)
    return out


def _corr_chunk(
    payload: "tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]",
) -> list[float]:
    """Worker: candidate-vs-kept max |Pearson| for a block of candidates."""
    Z, panel, cand_constant, kept_constant = payload
    from .core.redundancy import max_abs_correlation

    return max_abs_correlation(
        Z, panel, cand_constant=cand_constant, kept_constant=kept_constant
    ).tolist()


def parallel_max_abs_correlation(
    Z: np.ndarray,
    panel: np.ndarray,
    cand_constant: "np.ndarray | None" = None,
    kept_constant: "np.ndarray | None" = None,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Redundancy-stage candidate-vs-kept correlation, chunked over candidates.

    The paper calls out per-pair Pearson correlation as parallelizable
    (§IV-E.2); in the blocked incremental greedy the parallel unit is one
    chunk of a candidate block's standardized columns, each worker
    reducing its chunk against the (shared) kept panel to per-candidate
    maxima. Result order matches ``Z``'s columns.

    Cost note: every worker receives a pickled copy of the kept panel per
    block, so this pays O(jobs * kept * n) IPC per block where the serial
    path is a single in-process (and BLAS-threaded) GEMM. Worth it only
    when BLAS is pinned to one thread per process or the per-row work is
    heavy; the ``n_jobs=1`` default keeps the zero-copy serial path.
    """
    jobs = resolve_n_jobs(n_jobs)
    from .core.redundancy import max_abs_correlation

    if jobs == 1 or Z.shape[1] <= 1:
        return max_abs_correlation(
            Z, panel, cand_constant=cand_constant, kept_constant=kept_constant
        )
    chunks = chunk_indices(Z.shape[1], jobs)
    panel = np.asfortranarray(panel)
    payloads = [
        (
            np.asfortranarray(Z[:, idx]),
            panel,
            None if cand_constant is None else cand_constant[idx],
            kept_constant,
        )
        for idx in chunks
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_corr_chunk, payloads))
    out = np.empty(Z.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out


def _ig_chunk(payload: "tuple[np.ndarray, np.ndarray, int]") -> list[float]:
    """Worker: binned information gains for a block of columns."""
    block, y, n_bins = payload
    from .baselines.tfc import _binned_information_gain

    return [
        _binned_information_gain(block[:, k], y, n_bins)
        for k in range(block.shape[1])
    ]


def parallel_information_gains(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int,
    n_jobs: "int | None" = None,
) -> np.ndarray:
    """Per-column discretized information gain, optionally parallel."""
    jobs = resolve_n_jobs(n_jobs)
    if jobs == 1 or X.shape[1] <= 1:
        return np.asarray(_ig_chunk((X, y, n_bins)))
    chunks = chunk_indices(X.shape[1], jobs)
    payloads = [(np.ascontiguousarray(X[:, idx]), y, n_bins) for idx in chunks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_ig_chunk, payloads))
    out = np.empty(X.shape[1])
    for idx, values in zip(chunks, results):
        out[idx] = values
    return out
