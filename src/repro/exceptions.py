"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination was supplied."""


class DataError(ReproError, ValueError):
    """Input data is malformed (wrong shape, dtype, or empty)."""


class NotFittedError(ReproError, RuntimeError):
    """A transform/predict was attempted before ``fit``."""


class SchemaError(DataError):
    """Column names or feature schema do not match expectations."""


class OperatorError(ReproError, ValueError):
    """An operator was applied with the wrong arity or invalid inputs."""


class CheckpointError(ReproError, RuntimeError):
    """A fit checkpoint is missing, corrupt, or from another config."""


class RetryExhaustedError(ReproError, RuntimeError):
    """Every attempt allowed by a :class:`RetryPolicy` failed."""


class InjectedFault(ReproError, RuntimeError):
    """Raised by an activated failpoint (fault injection; never in production)."""
