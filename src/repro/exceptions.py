"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination was supplied."""


class DataError(ReproError, ValueError):
    """Input data is malformed (wrong shape, dtype, or empty)."""


class NotFittedError(ReproError, RuntimeError):
    """A transform/predict was attempted before ``fit``."""


class SchemaError(DataError):
    """Column names or feature schema do not match expectations."""


class OperatorError(ReproError, ValueError):
    """An operator was applied with the wrong arity or invalid inputs."""


class PlanVersionError(SchemaError):
    """A saved plan's format version is newer than this library supports.

    Forward compatibility is refused loudly: a plan written by a newer
    library may carry fields this version would silently drop, so serving
    it risks a quietly different Ψ. Upgrade the library instead.
    """


class AdmissionError(SchemaError):
    """A serving request was rejected at admission (schema drift beyond
    what the active coercion policy allows)."""


class PlanSwapError(ReproError, RuntimeError):
    """A serving hot-swap was refused or rolled back (incompatible
    fingerprints, or the candidate plan failed its self-test)."""


class DeadlineExceeded(ReproError, RuntimeError):
    """A serving request ran past its deadline budget.

    The serving loop itself never raises this at callers — it degrades
    the response and records the hit — but internal steps use it to
    unwind, and strict wrappers may surface it.
    """


class CheckpointError(ReproError, RuntimeError):
    """A fit checkpoint is missing, corrupt, or from another config."""


class ChunkIntegrityError(DataError):
    """A chunk of an out-of-core table failed its integrity manifest.

    Raised when a memory-mapped ``.npy`` backing file is truncated,
    reshaped, or bit-rotted relative to its sidecar manifest — or when
    the manifest itself is corrupt. Under
    ``ChunkedDataset(on_chunk_error="quarantine")`` the bad chunks are
    excluded and recorded instead of raising, but a corrupt chunk is
    never silently consumed.
    """


class ShardFailureError(ReproError, RuntimeError):
    """One row shard of a streamed reduction exhausted its retry budget.

    Carries the failing shard's contiguous row range so an operator (or
    a resume pass) knows exactly which rows never merged; the partial
    results of the other shards are discarded rather than trusted.
    """

    def __init__(self, label: str, shard_index: int, row_start: int, row_stop: int, attempts: int):
        self.label = label
        self.shard_index = shard_index
        self.row_start = int(row_start)
        self.row_stop = int(row_stop)
        self.attempts = int(attempts)
        super().__init__(
            f"shard {shard_index} of {label} (rows [{row_start}, {row_stop})) "
            f"failed after {attempts} attempt(s)"
        )


class RetryExhaustedError(ReproError, RuntimeError):
    """Every attempt allowed by a :class:`RetryPolicy` failed."""


class FailpointSpecError(ConfigurationError):
    """A ``REPRO_FAILPOINTS``-style activation spec could not be parsed.

    Always names the offending ``site=spec`` entry verbatim, so a typo'd
    chaos configuration fails loudly at the first failpoint evaluation
    instead of silently arming nothing.
    """


class InjectedFault(ReproError, RuntimeError):
    """Raised by an activated failpoint (fault injection; never in production)."""
