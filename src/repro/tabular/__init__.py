"""Tabular data substrate: named datasets, binning, splits, preprocessing."""

from .binning import (
    Binner,
    QuantileSketch,
    chimerge_edges,
    codes_from_edges,
    codes_from_edges_matrix,
    equal_frequency_edges,
    equal_width_edges,
    merge_quantile_sketches,
    quantile_codes_matrix,
    quantile_sketch_partial,
    streamed_quantile_edges,
)
from .dataset import Dataset, default_names
from .io import (
    MANIFEST_FORMAT,
    ChunkedDataset,
    csv_to_npy,
    iter_csv_chunks,
    load_csv,
    load_manifest,
    manifest_path_for,
    save_csv,
    save_npy,
    write_manifest,
)
from .preprocess import MeanImputer, MinMaxScaler, StandardScaler, clean_matrix
from .split import (
    bootstrap_indices,
    fraction_split,
    kfold_indices,
    train_valid_test_split,
)

__all__ = [
    "Binner",
    "ChunkedDataset",
    "Dataset",
    "MeanImputer",
    "MinMaxScaler",
    "QuantileSketch",
    "StandardScaler",
    "bootstrap_indices",
    "chimerge_edges",
    "clean_matrix",
    "codes_from_edges",
    "codes_from_edges_matrix",
    "csv_to_npy",
    "default_names",
    "equal_frequency_edges",
    "equal_width_edges",
    "fraction_split",
    "iter_csv_chunks",
    "kfold_indices",
    "load_csv",
    "load_manifest",
    "MANIFEST_FORMAT",
    "manifest_path_for",
    "merge_quantile_sketches",
    "quantile_codes_matrix",
    "quantile_sketch_partial",
    "save_csv",
    "save_npy",
    "streamed_quantile_edges",
    "write_manifest",
    "train_valid_test_split",
]
