"""Tabular data substrate: named datasets, binning, splits, preprocessing."""

from .binning import (
    Binner,
    chimerge_edges,
    codes_from_edges,
    codes_from_edges_matrix,
    equal_frequency_edges,
    equal_width_edges,
    quantile_codes_matrix,
)
from .dataset import Dataset, default_names
from .io import load_csv, save_csv
from .preprocess import MeanImputer, MinMaxScaler, StandardScaler, clean_matrix
from .split import (
    bootstrap_indices,
    fraction_split,
    kfold_indices,
    train_valid_test_split,
)

__all__ = [
    "Binner",
    "Dataset",
    "MeanImputer",
    "MinMaxScaler",
    "StandardScaler",
    "bootstrap_indices",
    "chimerge_edges",
    "clean_matrix",
    "codes_from_edges",
    "codes_from_edges_matrix",
    "default_names",
    "equal_frequency_edges",
    "equal_width_edges",
    "fraction_split",
    "kfold_indices",
    "load_csv",
    "quantile_codes_matrix",
    "save_csv",
    "train_valid_test_split",
]
