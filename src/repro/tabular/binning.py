"""Discretization (binning) primitives.

Binning appears in three places in the paper:

* equal-frequency binning with ``beta`` bins when computing information
  value (Algorithm 3);
* quantile binning inside the histogram-based gradient boosting substrate;
* the unary *discretization* operators of Section III (equidistant,
  equal-frequency, ChiMerge, clustering binning).

All binners here share the same contract: ``fit`` learns bin edges from a
1-D column, ``transform`` maps values to integer codes in ``[0, n_bins)``,
with NaN mapped to a dedicated extra code equal to ``n_bins``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, DataError, NotFittedError


def _check_column(x: "np.ndarray | list") -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64).ravel()
    if arr.size == 0:
        raise DataError("cannot bin an empty column")
    return arr


def equal_width_edges(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equidistant bins over finite values."""
    if n_bins < 1:
        raise ConfigurationError("n_bins must be >= 1")
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return np.empty(0)
    lo, hi = float(finite.min()), float(finite.max())
    if lo == hi:
        return np.empty(0)
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


def equal_frequency_edges(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equal-frequency (quantile) bins.

    Duplicate quantiles (from repeated values) are collapsed, so the
    effective number of bins can be smaller than requested.
    """
    if n_bins < 1:
        raise ConfigurationError("n_bins must be >= 1")
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return np.empty(0)
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    # method="lower" keeps edges at observed values so duplicates collapse
    # instead of interpolating phantom boundaries between them.
    edges = np.unique(np.quantile(finite, qs, method="lower"))
    # An edge at the maximum would create a permanently-empty top bin.
    return edges[edges < finite.max()]


def codes_from_edges(x: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Map values to integer bin codes given interior ``edges``.

    Values get codes ``0..len(edges)`` (``searchsorted`` semantics, right
    bin closed on the left); NaN/inf values get code ``len(edges) + 1 - 1``
    replaced by the dedicated missing code ``len(edges) + 1``.
    """
    n_edges = edges.size
    codes = np.searchsorted(edges, x, side="left").astype(np.int64)
    missing = ~np.isfinite(x)
    codes[missing] = n_edges + 1
    return codes


@dataclass
class Binner:
    """Fitted-edges binner with a pluggable strategy.

    Parameters
    ----------
    n_bins:
        Requested number of bins (effective count may be lower when the
        column has few distinct values).
    strategy:
        ``"quantile"`` (equal-frequency, the paper's default for IV) or
        ``"uniform"`` (equidistant).
    """

    n_bins: int = 10
    strategy: str = "quantile"
    edges_: "np.ndarray | None" = field(default=None, repr=False)

    def fit(self, x: "np.ndarray | list") -> "Binner":
        arr = _check_column(x)
        if self.strategy == "quantile":
            self.edges_ = equal_frequency_edges(arr, self.n_bins)
        elif self.strategy == "uniform":
            self.edges_ = equal_width_edges(arr, self.n_bins)
        else:
            raise ConfigurationError(f"unknown binning strategy {self.strategy!r}")
        return self

    def transform(self, x: "np.ndarray | list") -> np.ndarray:
        if self.edges_ is None:
            raise NotFittedError("Binner.transform called before fit")
        return codes_from_edges(_check_column(x), self.edges_)

    def fit_transform(self, x: "np.ndarray | list") -> np.ndarray:
        return self.fit(x).transform(x)

    @property
    def n_effective_bins(self) -> int:
        """Number of non-missing codes the fitted binner can emit."""
        if self.edges_ is None:
            raise NotFittedError("Binner not fitted")
        return int(self.edges_.size) + 1


def chimerge_edges(
    x: np.ndarray,
    y: np.ndarray,
    max_bins: int = 10,
    initial_bins: int = 50,
) -> np.ndarray:
    """ChiMerge supervised discretization (Kerber, 1992), simplified.

    Start from ``initial_bins`` equal-frequency bins and repeatedly merge
    the adjacent pair with the smallest chi-square statistic w.r.t. the
    binary label until ``max_bins`` remain. Returns interior edges.
    """
    x = _check_column(x)
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.size != x.size:
        raise DataError("x and y length mismatch in chimerge_edges")
    edges = equal_frequency_edges(x, initial_bins)
    if edges.size == 0:
        return edges
    codes = codes_from_edges(x, edges)
    n_codes = edges.size + 1
    # Contingency counts per bin (ignore the missing code).
    valid = codes <= edges.size
    pos = np.bincount(codes[valid & (y == 1)], minlength=n_codes).astype(np.float64)
    neg = np.bincount(codes[valid & (y == 0)], minlength=n_codes).astype(np.float64)
    counts = [np.array([p, q]) for p, q in zip(pos, neg)]
    cut_points = list(edges)

    def chi2(a: np.ndarray, b: np.ndarray) -> float:
        total = a + b
        grand = total.sum()
        if grand == 0:
            return 0.0
        col_sums = np.array([a.sum(), b.sum()])
        stat = 0.0
        for col, obs in ((0, a), (1, b)):
            expected = total * (col_sums[col] / grand)
            nz = expected > 0
            stat += float((((obs - expected) ** 2)[nz] / expected[nz]).sum())
        return stat

    while len(counts) > max_bins and cut_points:
        stats = [chi2(counts[i], counts[i + 1]) for i in range(len(counts) - 1)]
        k = int(np.argmin(stats))
        counts[k] = counts[k] + counts[k + 1]
        del counts[k + 1]
        del cut_points[k]
    return np.asarray(cut_points, dtype=np.float64)


def codes_from_edges_matrix(X: np.ndarray, edges_per_column: "list[np.ndarray]") -> np.ndarray:
    """Bin every column of ``X`` against already-fitted interior edges.

    The matrix counterpart of :func:`codes_from_edges`: column ``j`` is
    coded against ``edges_per_column[j]``, with non-finite values mapped to
    the column's dedicated missing code ``len(edges_per_column[j]) + 1``.
    Returns a Fortran-ordered int64 matrix so that the per-column gathers
    of histogram tree growth and binned descent stay contiguous. This is
    how a fitted tree ensemble bins a *new* matrix (e.g. the early-stopping
    eval set) exactly once instead of re-descending raw floats per round.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("codes_from_edges_matrix expects a 2-D matrix")
    if X.shape[1] != len(edges_per_column):
        raise DataError(
            f"X has {X.shape[1]} columns but {len(edges_per_column)} edge sets"
        )
    codes = np.empty(X.shape, dtype=np.int64, order="F")
    for j, edges in enumerate(edges_per_column):
        codes[:, j] = codes_from_edges(X[:, j], edges)
    return codes


def quantile_codes_matrix(X: np.ndarray, max_bins: int = 64) -> tuple[np.ndarray, list[np.ndarray]]:
    """Bin every column of a matrix for histogram-based tree learning.

    Returns ``(codes, edges_per_column)`` where ``codes`` is a
    Fortran-ordered int matrix of the same shape as ``X`` (missing values
    mapped to the last code of each column) and ``edges_per_column[j]``
    holds the interior edges used for column ``j``. Transforming another
    matrix with the same fitted edges is :func:`codes_from_edges_matrix`.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("quantile_codes_matrix expects a 2-D matrix")
    edges_per_column = [
        equal_frequency_edges(X[:, j], max_bins) for j in range(X.shape[1])
    ]
    return codes_from_edges_matrix(X, edges_per_column), edges_per_column
