"""Discretization (binning) primitives.

Binning appears in three places in the paper:

* equal-frequency binning with ``beta`` bins when computing information
  value (Algorithm 3);
* quantile binning inside the histogram-based gradient boosting substrate;
* the unary *discretization* operators of Section III (equidistant,
  equal-frequency, ChiMerge, clustering binning).

All binners here share the same contract: ``fit`` learns bin edges from a
1-D column, ``transform`` maps values to integer codes in ``[0, n_bins)``,
with NaN mapped to a dedicated extra code equal to ``n_bins``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.registry import batched_kernel, chunk_mergeable, kernel_oracle
from ..exceptions import ConfigurationError, DataError, NotFittedError

#: Default summary size of the bounded :class:`QuantileSketch`. Rank
#: error grows with (total rows / capacity); at 4096 the observed edge
#: rank error on multi-million-row columns stays well inside one bin of
#: a 64-bin histogram.
DEFAULT_SKETCH_CAPACITY = 4096


def _check_column(x: "np.ndarray | list") -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64).ravel()
    if arr.size == 0:
        raise DataError("cannot bin an empty column")
    return arr


def equal_width_edges(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equidistant bins over finite values."""
    if n_bins < 1:
        raise ConfigurationError("n_bins must be >= 1")
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return np.empty(0)
    lo, hi = float(finite.min()), float(finite.max())
    if lo == hi:
        return np.empty(0)
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


@kernel_oracle
def equal_frequency_edges(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equal-frequency (quantile) bins.

    Duplicate quantiles (from repeated values) are collapsed, so the
    effective number of bins can be smaller than requested.
    """
    if n_bins < 1:
        raise ConfigurationError("n_bins must be >= 1")
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return np.empty(0)
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    # method="lower" keeps edges at observed values so duplicates collapse
    # instead of interpolating phantom boundaries between them.
    edges = np.unique(np.quantile(finite, qs, method="lower"))
    # An edge at the maximum would create a permanently-empty top bin.
    return edges[edges < finite.max()]


class QuantileSketch:
    """Mergeable streaming summary for equal-frequency edges.

    Accumulates a column one row chunk at a time and answers the same
    quantile queries :func:`equal_frequency_edges` answers from the full
    column, without ever holding (or globally sorting) all rows at once.

    The summary is a sorted list of ``(value, weight)`` pairs plus exact
    ``n_finite`` / ``min`` / ``max`` side statistics. With
    ``capacity=None`` the summary is unbounded: every finite value is
    retained at unit weight and :meth:`edges` is **bit-identical** to
    :func:`equal_frequency_edges` on the concatenated chunks (this is
    the ``sketch="exact"`` oracle mode of the streaming fit — it still
    pays one O(n_finite) buffer per column, but only for one column at a
    time instead of the whole matrix). With a finite ``capacity`` the
    summary is compacted by deterministic pairwise collapses whenever it
    grows past ``2 * capacity``, bounding memory at O(capacity) with an
    empirically-tested quantile rank error of O(n / capacity).

    ``update`` mutates the receiver; ``merge`` is pure and associative
    (see :func:`merge_quantile_sketches`), so per-chunk partials can be
    combined across any row sharding.
    """

    __slots__ = (
        "capacity", "n_finite", "min", "max",
        "_values", "_weights", "_buffer", "_buffer_rows", "_parity",
    )

    def __init__(self, capacity: "int | None" = DEFAULT_SKETCH_CAPACITY) -> None:
        if capacity is not None and capacity < 2:
            raise ConfigurationError("QuantileSketch capacity must be >= 2")
        self.capacity = capacity
        self.n_finite = 0
        self.min = np.inf
        self.max = -np.inf
        self._values = np.zeros(0, dtype=np.float64)
        self._weights = np.zeros(0, dtype=np.int64)
        self._buffer: "list[np.ndarray]" = []
        self._buffer_rows = 0
        self._parity = 0

    def update(self, chunk: np.ndarray) -> "QuantileSketch":
        """Fold one row chunk of the column into the summary (in place)."""
        arr = np.asarray(chunk, dtype=np.float64).ravel()
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            return self
        self.n_finite += int(finite.size)
        self.min = min(self.min, float(finite.min()))
        self.max = max(self.max, float(finite.max()))
        self._buffer.append(finite.copy())
        self._buffer_rows += int(finite.size)
        if (
            self.capacity is not None
            and self._weights.size + self._buffer_rows > 2 * self.capacity
        ):
            self._compact()
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Pure associative combine: the summary of both sketches' rows."""
        cap = self.capacity
        if cap is None or (other.capacity is not None and other.capacity < cap):
            cap = other.capacity if self.capacity is None else cap
        out = QuantileSketch(capacity=cap)
        out.n_finite = self.n_finite + other.n_finite
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        sv, sw = self._summary()
        ov, ow = other._summary()
        values = np.concatenate([sv, ov])
        weights = np.concatenate([sw, ow])
        order = np.argsort(values, kind="stable")
        out._values = values[order]
        out._weights = weights[order]
        out._parity = (self._parity + other._parity) & 1
        if out.capacity is not None and out._values.size > 2 * out.capacity:
            out._compact()
        return out

    def edges(self, n_bins: int) -> np.ndarray:
        """Interior equal-frequency edges of the accumulated column.

        Weighted-rank analogue of :func:`equal_frequency_edges`: the edge
        for quantile ``q`` is the summary value covering weighted rank
        ``floor(q * (W - 1))`` — exactly ``np.quantile(..., "lower")``
        when every weight is 1 (the unbounded sketch).
        """
        if n_bins < 1:
            raise ConfigurationError("n_bins must be >= 1")
        if self.n_finite == 0:
            return np.empty(0)
        values, weights = self._summary()
        qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        total = int(weights.sum())
        targets = np.floor(qs * (total - 1)).astype(np.int64)
        cumulative = np.cumsum(weights)
        idx = np.searchsorted(cumulative, targets, side="right")
        edges = np.unique(values[idx])
        return edges[edges < self.max]

    # ------------------------------------------------------------------
    def _summary(self) -> "tuple[np.ndarray, np.ndarray]":
        """Sorted (values, weights) including any unfolded buffer rows."""
        if self._buffer:
            fresh = np.concatenate(self._buffer)
            values = np.concatenate([self._values, fresh])
            weights = np.concatenate(
                [self._weights, np.ones(fresh.size, dtype=np.int64)]
            )
            order = np.argsort(values, kind="stable")
            self._values = values[order]
            self._weights = weights[order]
            self._buffer = []
            self._buffer_rows = 0
        return self._values, self._weights

    def _compact(self) -> None:
        """Pairwise-collapse the sorted summary down to ``capacity`` entries.

        Adjacent pairs merge into one entry carrying both weights; the
        survivor's value alternates between the pair's lower and upper
        member (deterministic parity toggle) so the collapse does not
        drift the summary systematically low or high. Each collapse
        perturbs any weighted rank by at most the dropped entry's weight.
        """
        values, weights = self._summary()
        while values.size > self.capacity:
            keep = np.arange(min(self._parity, values.size - 1), values.size, 2)
            # Each kept entry absorbs the weight of every dropped entry
            # since the previous kept one (total weight is preserved).
            cum = np.cumsum(weights)
            upper = cum[keep]
            absorbed = np.diff(np.concatenate([np.zeros(1, dtype=np.int64), upper]))
            tail = int(cum[-1] - upper[-1])
            if tail:
                absorbed[-1] += tail
            values = values[keep]
            weights = absorbed
            self._parity ^= 1
        self._values = values
        self._weights = weights


def merge_quantile_sketches(a: QuantileSketch, b: QuantileSketch) -> QuantileSketch:
    """Associative merge of two :class:`QuantileSketch` partials."""
    return a.merge(b)


def streamed_quantile_edges(
    chunk_iter,
    n_cols: int,
    n_bins: int,
    *,
    sketch: str = "merge",
    capacity: int = DEFAULT_SKETCH_CAPACITY,
    exact_batch_cols: int = 4,
) -> "tuple[list[np.ndarray], np.ndarray, np.ndarray, np.ndarray]":
    """Per-column equal-frequency edges from a restartable chunk stream.

    ``chunk_iter`` is a zero-argument callable returning a fresh iterator
    of ``(rows, X_chunk, y_chunk)`` triples (``ChunkedDataset.iter_chunks``
    fits directly). ``sketch="merge"`` runs one pass with a bounded
    :class:`QuantileSketch` per column (O(n_cols * capacity) memory,
    edges within sketch rank error of the exact ones). ``sketch="exact"``
    uses unbounded sketches — bit-identical to
    :func:`equal_frequency_edges` on the materialized column — processed
    ``exact_batch_cols`` columns per pass so resident memory stays
    O(exact_batch_cols * n_rows), never O(n_cols * n_rows).

    Returns ``(edges_per_col, n_finite, col_min, col_max)``; the side
    statistics are exact in both modes (they never pass through
    compaction), so scorability guards match the in-memory path's.
    """
    if sketch not in ("merge", "exact"):
        raise ConfigurationError(f"unknown sketch mode {sketch!r}")
    edges_per_col: "list[np.ndarray]" = [np.zeros(0)] * n_cols
    n_finite = np.zeros(n_cols, dtype=np.int64)
    col_min = np.full(n_cols, np.inf)
    col_max = np.full(n_cols, -np.inf)

    def finish(j: int, sk: QuantileSketch) -> None:
        edges_per_col[j] = sk.edges(n_bins)
        n_finite[j] = sk.n_finite
        col_min[j] = sk.min
        col_max[j] = sk.max

    if sketch == "exact":
        if exact_batch_cols < 1:
            raise ConfigurationError("exact_batch_cols must be >= 1")
        for start in range(0, n_cols, exact_batch_cols):
            cols = range(start, min(start + exact_batch_cols, n_cols))
            sketches = {j: QuantileSketch(capacity=None) for j in cols}
            for _rows, X_chunk, _y in chunk_iter():
                for j in cols:
                    sketches[j].update(X_chunk[:, j])
            for j in cols:
                finish(j, sketches[j])
        return edges_per_col, n_finite, col_min, col_max

    all_sketches = [QuantileSketch(capacity=capacity) for _ in range(n_cols)]
    for _rows, X_chunk, _y in chunk_iter():
        for j in range(n_cols):
            all_sketches[j].update(X_chunk[:, j])
    for j in range(n_cols):
        finish(j, all_sketches[j])
    return edges_per_col, n_finite, col_min, col_max


@batched_kernel(oracle="equal_frequency_edges")
@chunk_mergeable(merge=merge_quantile_sketches, exact=True)
def quantile_sketch_partial(
    chunk: np.ndarray, capacity: "int | None" = None
) -> QuantileSketch:
    """Per-chunk partial for streaming equal-frequency edges.

    With the default ``capacity=None`` the sketch is unbounded and the
    merge contract is exact: ``merge(partial(A), partial(B))`` answers
    every quantile query bit-identically to ``partial(A ∥ B)``, and both
    match :func:`equal_frequency_edges` on the concatenated rows. Pass a
    finite capacity for the bounded-memory approximation (rank-error
    bounds are tested in ``tests/test_stream_merge.py``).
    """
    return QuantileSketch(capacity=capacity).update(chunk)


def codes_from_edges(x: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Map values to integer bin codes given interior ``edges``.

    Values get codes ``0..len(edges)`` (``searchsorted`` semantics, right
    bin closed on the left); NaN/inf values get code ``len(edges) + 1 - 1``
    replaced by the dedicated missing code ``len(edges) + 1``.
    """
    n_edges = edges.size
    codes = np.searchsorted(edges, x, side="left").astype(np.int64)
    missing = ~np.isfinite(x)
    codes[missing] = n_edges + 1
    return codes


@dataclass
class Binner:
    """Fitted-edges binner with a pluggable strategy.

    Parameters
    ----------
    n_bins:
        Requested number of bins (effective count may be lower when the
        column has few distinct values).
    strategy:
        ``"quantile"`` (equal-frequency, the paper's default for IV) or
        ``"uniform"`` (equidistant).
    """

    n_bins: int = 10
    strategy: str = "quantile"
    edges_: "np.ndarray | None" = field(default=None, repr=False)

    def fit(self, x: "np.ndarray | list") -> "Binner":
        arr = _check_column(x)
        if self.strategy == "quantile":
            self.edges_ = equal_frequency_edges(arr, self.n_bins)
        elif self.strategy == "uniform":
            self.edges_ = equal_width_edges(arr, self.n_bins)
        else:
            raise ConfigurationError(f"unknown binning strategy {self.strategy!r}")
        return self

    def transform(self, x: "np.ndarray | list") -> np.ndarray:
        if self.edges_ is None:
            raise NotFittedError("Binner.transform called before fit")
        return codes_from_edges(_check_column(x), self.edges_)

    def fit_transform(self, x: "np.ndarray | list") -> np.ndarray:
        return self.fit(x).transform(x)

    @property
    def n_effective_bins(self) -> int:
        """Number of non-missing codes the fitted binner can emit."""
        if self.edges_ is None:
            raise NotFittedError("Binner not fitted")
        return int(self.edges_.size) + 1


def chimerge_edges(
    x: np.ndarray,
    y: np.ndarray,
    max_bins: int = 10,
    initial_bins: int = 50,
) -> np.ndarray:
    """ChiMerge supervised discretization (Kerber, 1992), simplified.

    Start from ``initial_bins`` equal-frequency bins and repeatedly merge
    the adjacent pair with the smallest chi-square statistic w.r.t. the
    binary label until ``max_bins`` remain. Returns interior edges.
    """
    x = _check_column(x)
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.size != x.size:
        raise DataError("x and y length mismatch in chimerge_edges")
    edges = equal_frequency_edges(x, initial_bins)
    if edges.size == 0:
        return edges
    codes = codes_from_edges(x, edges)
    n_codes = edges.size + 1
    # Contingency counts per bin (ignore the missing code).
    valid = codes <= edges.size
    pos = np.bincount(codes[valid & (y == 1)], minlength=n_codes).astype(np.float64)
    neg = np.bincount(codes[valid & (y == 0)], minlength=n_codes).astype(np.float64)
    counts = [np.array([p, q]) for p, q in zip(pos, neg)]
    cut_points = list(edges)

    def chi2(a: np.ndarray, b: np.ndarray) -> float:
        total = a + b
        grand = total.sum()
        if grand == 0:
            return 0.0
        col_sums = np.array([a.sum(), b.sum()])
        stat = 0.0
        for col, obs in ((0, a), (1, b)):
            expected = total * (col_sums[col] / grand)
            nz = expected > 0
            stat += float((((obs - expected) ** 2)[nz] / expected[nz]).sum())
        return stat

    while len(counts) > max_bins and cut_points:
        stats = [chi2(counts[i], counts[i + 1]) for i in range(len(counts) - 1)]
        k = int(np.argmin(stats))
        counts[k] = counts[k] + counts[k + 1]
        del counts[k + 1]
        del cut_points[k]
    return np.asarray(cut_points, dtype=np.float64)


def codes_from_edges_matrix(X: np.ndarray, edges_per_column: "list[np.ndarray]") -> np.ndarray:
    """Bin every column of ``X`` against already-fitted interior edges.

    The matrix counterpart of :func:`codes_from_edges`: column ``j`` is
    coded against ``edges_per_column[j]``, with non-finite values mapped to
    the column's dedicated missing code ``len(edges_per_column[j]) + 1``.
    Returns a Fortran-ordered int64 matrix so that the per-column gathers
    of histogram tree growth and binned descent stay contiguous. This is
    how a fitted tree ensemble bins a *new* matrix (e.g. the early-stopping
    eval set) exactly once instead of re-descending raw floats per round.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("codes_from_edges_matrix expects a 2-D matrix")
    if X.shape[1] != len(edges_per_column):
        raise DataError(
            f"X has {X.shape[1]} columns but {len(edges_per_column)} edge sets"
        )
    codes = np.empty(X.shape, dtype=np.int64, order="F")
    for j, edges in enumerate(edges_per_column):
        codes[:, j] = codes_from_edges(X[:, j], edges)
    return codes


def quantile_codes_matrix(X: np.ndarray, max_bins: int = 64) -> tuple[np.ndarray, list[np.ndarray]]:
    """Bin every column of a matrix for histogram-based tree learning.

    Returns ``(codes, edges_per_column)`` where ``codes`` is a
    Fortran-ordered int matrix of the same shape as ``X`` (missing values
    mapped to the last code of each column) and ``edges_per_column[j]``
    holds the interior edges used for column ``j``. Transforming another
    matrix with the same fitted edges is :func:`codes_from_edges_matrix`.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("quantile_codes_matrix expects a 2-D matrix")
    edges_per_column = [
        equal_frequency_edges(X[:, j], max_bins) for j in range(X.shape[1])
    ]
    return codes_from_edges_matrix(X, edges_per_column), edges_per_column
