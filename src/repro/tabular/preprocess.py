"""Feature preprocessing: scaling and imputation.

Section III of the paper lists normalization (Min-Max, Z-score) as unary
operators; they are also needed as plain preprocessing for the scale-
sensitive downstream classifiers (kNN, LR, SVM, MLP). All transformers
here follow the familiar ``fit``/``transform`` protocol and operate on
2-D matrices column-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.registry import inplace_mutator
from ..exceptions import NotFittedError
from ..utils import as_float_matrix


@dataclass
class StandardScaler:
    """Column-wise z-score scaler; constant columns are left centered."""

    mean_: "np.ndarray | None" = field(default=None, repr=False)
    scale_: "np.ndarray | None" = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = as_float_matrix(X)
        self.mean_ = np.nanmean(X, axis=0)
        std = np.nanstd(X, axis=0)
        std[std == 0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler not fitted")
        X = as_float_matrix(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class MinMaxScaler:
    """Column-wise min-max scaler to ``[0, 1]``; constant columns map to 0."""

    min_: "np.ndarray | None" = field(default=None, repr=False)
    range_: "np.ndarray | None" = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = as_float_matrix(X)
        self.min_ = np.nanmin(X, axis=0)
        rng = np.nanmax(X, axis=0) - self.min_
        rng[rng == 0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler not fitted")
        X = as_float_matrix(X)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class MeanImputer:
    """Replace non-finite entries with the column mean learned at fit.

    Columns that are entirely non-finite impute to zero.
    """

    fill_: "np.ndarray | None" = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "MeanImputer":
        X = as_float_matrix(X)
        with np.errstate(invalid="ignore"):
            masked = np.where(np.isfinite(X), X, np.nan)
            fill = np.nanmean(masked, axis=0)
        fill[~np.isfinite(fill)] = 0.0
        self.fill_ = fill
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.fill_ is None:
            raise NotFittedError("MeanImputer not fitted")
        X = as_float_matrix(X).copy()
        bad = ~np.isfinite(X)
        if bad.any():
            cols = np.nonzero(bad)[1]
            X[bad] = self.fill_[cols]
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@inplace_mutator
def clean_matrix(X: np.ndarray, clip: float = 1e12, copy: bool = True) -> np.ndarray:
    """Replace non-finite values with 0 and clip extreme magnitudes.

    Generated features (e.g. division by near-zero) can contain inf/NaN;
    downstream numpy classifiers require finite input. This is the single
    sanitation choke point used before model fitting.

    ``copy=False`` sanitizes in place and is only for callers that own
    ``X`` outright — e.g. a freshly allocated ``evaluate_forest`` block —
    where it saves one full-matrix copy. (A non-float64 input is
    converted regardless, so the returned matrix is then fresh anyway.)
    """
    if copy:
        X = as_float_matrix(X).copy()
    else:
        X = as_float_matrix(X, contiguous=False)
    X[~np.isfinite(X)] = 0.0
    np.clip(X, -clip, clip, out=X)
    return X
