"""Column-oriented tabular container used throughout the pipeline.

The paper's pipeline (and its real deployment) operates on wide feature
matrices with named columns. Instead of depending on pandas, this module
provides :class:`Dataset`, a thin immutable-by-convention wrapper around a
2-D float64 matrix plus column names and an optional label vector. It is
deliberately small: named column access, row/column slicing, concatenation
of generated feature blocks, and schema checks — everything the SAFE
pipeline needs and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import DataError, SchemaError
from ..utils import as_float_matrix, check_random_state


def _validate_names(names: Sequence[str], n_cols: int) -> tuple[str, ...]:
    names = tuple(str(n) for n in names)
    if len(names) != n_cols:
        raise SchemaError(f"{len(names)} column names for {n_cols} columns")
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if list(names).count(n) > 1})
        raise SchemaError(f"duplicate column names: {dupes[:5]}")
    return names


def default_names(n_cols: int, prefix: str = "x") -> tuple[str, ...]:
    """Generate ``(x0, x1, ...)`` style column names."""
    return tuple(f"{prefix}{i}" for i in range(n_cols))


@dataclass(frozen=True)
class Dataset:
    """A named feature matrix with an optional binary label vector.

    Parameters
    ----------
    X:
        2-D float64 feature matrix of shape ``(n_rows, n_cols)``.
    names:
        Column names, one per feature column; must be unique.
    y:
        Optional label vector of length ``n_rows`` (binary 0/1 for the
        classification tasks in the paper).
    """

    X: np.ndarray
    names: tuple[str, ...]
    y: "np.ndarray | None" = field(default=None)

    def __post_init__(self) -> None:
        X = as_float_matrix(self.X)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "names", _validate_names(self.names, X.shape[1]))
        if self.y is not None:
            y = np.asarray(self.y, dtype=np.float64).ravel()
            if y.size != X.shape[0]:
                raise DataError(f"y has {y.size} rows but X has {X.shape[0]}")
            object.__setattr__(self, "y", y)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        X: "np.ndarray | list",
        y: "np.ndarray | list | None" = None,
        names: "Sequence[str] | None" = None,
    ) -> "Dataset":
        """Build a dataset, synthesizing ``x0..x{M-1}`` names if omitted."""
        X = as_float_matrix(X)
        if names is None:
            names = default_names(X.shape[1])
        return cls(X=X, names=tuple(names), y=None if y is None else np.asarray(y))

    # ------------------------------------------------------------------
    # Shape / schema
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.X.shape[0]

    @property
    def n_cols(self) -> int:
        return self.X.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.X.shape

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, name: str) -> bool:
        return name in set(self.names)

    def index_of(self, name: str) -> int:
        """Return the positional index of column ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise SchemaError(f"no column named {name!r}") from None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column(self, name_or_index: "str | int") -> np.ndarray:
        """Return a single column as a 1-D array (a view when possible)."""
        if isinstance(name_or_index, str):
            name_or_index = self.index_of(name_or_index)
        if not 0 <= int(name_or_index) < self.n_cols:
            raise SchemaError(f"column index {name_or_index} out of range")
        return self.X[:, int(name_or_index)]

    def columns(self, names: Iterable["str | int"]) -> np.ndarray:
        """Return several columns stacked as a 2-D matrix."""
        idx = [self.index_of(n) if isinstance(n, str) else int(n) for n in names]
        return self.X[:, idx]

    def select(self, names: Iterable["str | int"]) -> "Dataset":
        """Return a new dataset restricted to ``names`` (order preserved)."""
        names = list(names)
        idx = [self.index_of(n) if isinstance(n, str) else int(n) for n in names]
        new_names = tuple(self.names[i] for i in idx)
        return Dataset(X=self.X[:, idx].copy(), names=new_names, y=self.y)

    def take_rows(self, rows: np.ndarray) -> "Dataset":
        """Return a new dataset containing only ``rows`` (index array/mask)."""
        rows = np.asarray(rows)
        X = self.X[rows]
        y = None if self.y is None else self.y[rows]
        return Dataset(X=X, names=self.names, y=y)

    def head(self, n: int = 5) -> "Dataset":
        """First ``n`` rows, useful in examples and docs."""
        return self.take_rows(np.arange(min(n, self.n_rows)))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def with_columns(self, block: np.ndarray, names: Sequence[str]) -> "Dataset":
        """Append a block of new feature columns, returning a new dataset.

        Name collisions with existing columns raise :class:`SchemaError`.
        """
        block = as_float_matrix(block, name="block")
        if block.shape[0] != self.n_rows:
            raise DataError(
                f"block has {block.shape[0]} rows, dataset has {self.n_rows}"
            )
        clash = set(names) & set(self.names)
        if clash:
            raise SchemaError(f"column names already present: {sorted(clash)[:5]}")
        X = np.hstack([self.X, block])
        return Dataset(X=X, names=self.names + tuple(names), y=self.y)

    def with_labels(self, y: "np.ndarray | list") -> "Dataset":
        """Return a copy of this dataset with labels attached."""
        return Dataset(X=self.X, names=self.names, y=np.asarray(y))

    def without_labels(self) -> "Dataset":
        return Dataset(X=self.X, names=self.names, y=None)

    def require_labels(self) -> np.ndarray:
        """Return ``y`` or raise if the dataset is unlabeled."""
        if self.y is None:
            raise DataError("dataset has no labels but labels are required")
        return self.y

    def sample(
        self,
        n: int,
        random_state: "int | np.random.Generator | None" = None,
        replace: bool = False,
    ) -> "Dataset":
        """Random row subsample of size ``n``."""
        rng = check_random_state(random_state)
        if not replace and n > self.n_rows:
            raise DataError(f"cannot sample {n} rows from {self.n_rows} without replacement")
        rows = rng.choice(self.n_rows, size=n, replace=replace)
        return self.take_rows(rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column summary statistics (mean/std/min/max/missing-rate)."""
        out: dict[str, dict[str, float]] = {}
        for j, name in enumerate(self.names):
            col = self.X[:, j]
            finite = col[np.isfinite(col)]
            out[name] = {
                "mean": float(finite.mean()) if finite.size else float("nan"),
                "std": float(finite.std()) if finite.size else float("nan"),
                "min": float(finite.min()) if finite.size else float("nan"),
                "max": float(finite.max()) if finite.size else float("nan"),
                "missing_rate": float(1.0 - finite.size / max(col.size, 1)),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lab = "labeled" if self.y is not None else "unlabeled"
        return f"Dataset({self.n_rows} rows x {self.n_cols} cols, {lab})"
