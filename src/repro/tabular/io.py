"""CSV and ``.npy`` I/O for tabular data, in-memory and out-of-core.

Two tiers:

* :func:`save_csv` / :func:`load_csv` — minimal numeric CSV round-trip
  for :class:`~repro.tabular.Dataset` (header row, ``repr`` floats for
  exact round-trips, no pandas). ``save_csv`` streams rows straight from
  the source — it never materializes a concatenated copy of the matrix,
  so it also serializes datasets that do not fit in memory.
* :class:`ChunkedDataset` + :func:`iter_csv_chunks` /
  :func:`csv_to_npy` — the out-of-core substrate for the streaming fit:
  a row-chunked view over memory-mapped ``.npy`` arrays (or in-memory
  arrays, for tests and small data) yielding ``(rows, X_chunk, y_chunk)``
  triples, re-iterable any number of times at O(chunk) resident memory.
  ``SAFE.fit`` accepts a :class:`ChunkedDataset` directly (see
  :mod:`repro.core.stream`).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import DataError
from .dataset import Dataset, default_names

#: Default rows per chunk: 64k rows x 16 float64 columns is an 8 MB slab.
DEFAULT_CHUNK_ROWS = 65_536


def _format_row(row) -> "list[str]":
    # repr() of a python float is the shortest string that round-trips,
    # so load_csv(save_csv(ds)) reproduces the matrix bit-for-bit.
    return [repr(float(v)) for v in row]


def save_csv(
    data: "Dataset | ChunkedDataset",
    path: "str | Path",
    label_column: str = "label",
) -> None:
    """Write a dataset (features + optional label column) to CSV.

    Rows are streamed to the writer one at a time: no ``np.hstack`` of
    the whole matrix, no per-file list of formatted rows. Accepts either
    an in-memory :class:`Dataset` or a :class:`ChunkedDataset` (whose
    chunks are visited in order), so a memory-mapped table can be
    exported without ever being resident.
    """
    path = Path(path)
    header = list(data.names)
    if isinstance(data, ChunkedDataset):
        chunks = ((X, y) for _, X, y in data.iter_chunks())
        labeled = data.has_labels
    else:
        chunks = iter([(data.X, data.y)])
        labeled = data.y is not None
    if labeled:
        header.append(label_column)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for X_chunk, y_chunk in chunks:
            if labeled:
                writer.writerows(
                    _format_row(row) + [repr(float(target))]
                    for row, target in zip(X_chunk, y_chunk)
                )
            else:
                writer.writerows(_format_row(row) for row in X_chunk)


def load_csv(path: "str | Path", label_column: "str | None" = "label") -> Dataset:
    """Read a numeric CSV with header into a :class:`Dataset`.

    If ``label_column`` is present in the header it becomes ``y``;
    pass ``label_column=None`` to treat every column as a feature.
    """
    path = Path(path)
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                rows.append([float(v) if v != "" else float("nan") for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-numeric value ({exc})") from None
    if not rows:
        raise DataError(f"{path} has a header but no data rows")
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.shape[1] != len(header):
        raise DataError(f"{path}: ragged rows (header has {len(header)} fields)")
    if label_column is not None and label_column in header:
        k = header.index(label_column)
        y = matrix[:, k]
        X = np.delete(matrix, k, axis=1)
        names = [h for i, h in enumerate(header) if i != k]
        return Dataset(X=X, names=tuple(names), y=y)
    return Dataset(X=matrix, names=tuple(header), y=None)


class ChunkedDataset:
    """A labeled table visited in row chunks instead of held in memory.

    Backed either by ``.npy`` files opened with ``mmap_mode="r"`` (the
    out-of-core path: resident memory stays O(chunk) regardless of
    ``n_rows``) or by in-memory arrays (tests, small data). The object is
    re-iterable — the streaming fit makes many passes — and picklable:
    file-backed instances ship only their paths to worker processes,
    which re-open the memory maps locally, so row-sharded workers in
    :mod:`repro.parallel` never serialize the matrix.

    ``shards(n)`` splits the row range into ``n`` contiguous sub-views
    sharing the same backing storage, the unit of row-parallel work.
    """

    def __init__(
        self,
        names: "tuple[str, ...]",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        *,
        X: "np.ndarray | None" = None,
        y: "np.ndarray | None" = None,
        x_path: "str | Path | None" = None,
        y_path: "str | Path | None" = None,
        start: int = 0,
        stop: "int | None" = None,
    ) -> None:
        if (X is None) == (x_path is None):
            raise DataError("ChunkedDataset needs exactly one of X or x_path")
        if chunk_rows < 1:
            raise DataError("chunk_rows must be >= 1")
        self.chunk_rows = int(chunk_rows)
        self._X_mem = None if X is None else np.asarray(X, dtype=np.float64)
        self._y_mem = None if y is None else np.asarray(y, dtype=np.float64).ravel()
        self.x_path = None if x_path is None else str(x_path)
        self.y_path = None if y_path is None else str(y_path)
        if y is not None and x_path is not None:
            raise DataError("in-memory y cannot back a file-based ChunkedDataset")
        self._X_map: "np.ndarray | None" = None
        self._y_map: "np.ndarray | None" = None
        total_rows, n_cols = self._backing_shape()
        self.names = tuple(str(n) for n in (names or default_names(n_cols)))
        if len(self.names) != n_cols:
            raise DataError(f"{len(self.names)} column names for {n_cols} columns")
        stop = total_rows if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= total_rows:
            raise DataError(
                f"row range [{start}, {stop}) outside table of {total_rows} rows"
            )
        self.start = start
        self.stop = stop
        y_rows = self._label_rows()
        if y_rows is not None and y_rows != total_rows:
            raise DataError(f"y has {y_rows} rows but X has {total_rows}")

    # -- backing ------------------------------------------------------
    def _backing_shape(self) -> "tuple[int, int]":
        X = self._open_X()
        if X.ndim != 2:
            raise DataError("ChunkedDataset expects a 2-D feature matrix")
        return int(X.shape[0]), int(X.shape[1])

    def _label_rows(self) -> "int | None":
        y = self._open_y()
        return None if y is None else int(y.shape[0])

    def _open_X(self) -> np.ndarray:
        if self._X_mem is not None:
            return self._X_mem
        if self._X_map is None:
            self._X_map = np.load(self.x_path, mmap_mode="r")
        return self._X_map

    def _open_y(self) -> "np.ndarray | None":
        if self._y_mem is not None:
            return self._y_mem
        if self.y_path is None:
            return None
        if self._y_map is None:
            self._y_map = np.load(self.y_path, mmap_mode="r")
        return self._y_map

    # -- shape / schema ----------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    @property
    def n_cols(self) -> int:
        return len(self.names)

    @property
    def has_labels(self) -> bool:
        return self._y_mem is not None or self.y_path is not None

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = self.x_path or "arrays"
        return (
            f"ChunkedDataset({self.n_rows} rows x {self.n_cols} cols, "
            f"chunk_rows={self.chunk_rows}, backing={src})"
        )

    # -- iteration ----------------------------------------------------
    def iter_chunks(self):
        """Yield ``(rows, X_chunk, y_chunk)`` over the row range in order.

        ``rows`` is the global ``range`` the chunk covers; ``X_chunk``
        is a ``(len(rows), n_cols)`` float64 block (a memory-map view
        for file backing — pages stream in on access and are evictable,
        so resident memory stays O(chunk)); ``y_chunk`` is the matching
        label slice or None.
        """
        X = self._open_X()
        y = self._open_y()
        for lo in range(self.start, self.stop, self.chunk_rows):
            hi = min(lo + self.chunk_rows, self.stop)
            y_chunk = None if y is None else y[lo:hi]
            yield range(lo, hi), X[lo:hi], y_chunk

    def shards(self, n_shards: int) -> "list[ChunkedDataset]":
        """Split the row range into ``n_shards`` contiguous sub-views."""
        if n_shards < 1:
            raise DataError("n_shards must be >= 1")
        n_shards = min(n_shards, max(self.n_rows, 1))
        bounds = np.linspace(self.start, self.stop, n_shards + 1).astype(np.int64)
        out = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                out.append(self._view(int(lo), int(hi)))
        return out

    def _view(self, start: int, stop: int) -> "ChunkedDataset":
        return ChunkedDataset(
            self.names,
            self.chunk_rows,
            X=self._X_mem,
            y=self._y_mem,
            x_path=self.x_path,
            y_path=self.y_path,
            start=start,
            stop=stop,
        )

    def materialize(self) -> Dataset:
        """Load the full row range into an in-memory :class:`Dataset`."""
        X = np.asarray(self._open_X()[self.start : self.stop], dtype=np.float64)
        y = self._open_y()
        y = None if y is None else np.asarray(y[self.start : self.stop])
        return Dataset(X=X, names=self.names, y=y)

    # -- construction -------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        X: "np.ndarray | list",
        y: "np.ndarray | list | None" = None,
        names: "tuple[str, ...] | None" = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ChunkedDataset":
        X = np.asarray(X, dtype=np.float64)
        if names is None:
            names = default_names(X.shape[1] if X.ndim == 2 else 0)
        return cls(tuple(names), chunk_rows, X=X,
                   y=None if y is None else np.asarray(y))

    @classmethod
    def from_dataset(
        cls, data: Dataset, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> "ChunkedDataset":
        return cls(data.names, chunk_rows, X=data.X, y=data.y)

    @classmethod
    def from_npy(
        cls,
        x_path: "str | Path",
        y_path: "str | Path | None" = None,
        names: "tuple[str, ...] | None" = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ChunkedDataset":
        """Open memory-mapped ``.npy`` feature/label files as a dataset."""
        if names is None:
            probe = np.load(x_path, mmap_mode="r")
            if probe.ndim != 2:
                raise DataError("ChunkedDataset expects a 2-D feature matrix")
            names = default_names(int(probe.shape[1]))
            del probe
        return cls(tuple(names), chunk_rows, x_path=x_path, y_path=y_path)

    # -- pickling (row-sharded workers) -------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Memory-map handles are per-process; workers re-open lazily.
        state["_X_map"] = None
        state["_y_map"] = None
        return state


def iter_csv_chunks(
    path: "str | Path",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    label_column: "str | None" = "label",
):
    """Stream a numeric CSV as ``(rows, X_chunk, y_chunk)`` triples.

    The row-chunked counterpart of :func:`load_csv`: at most
    ``chunk_rows`` parsed rows are resident at a time. ``y_chunk`` is
    None when ``label_column`` is absent from the header. CSV parsing is
    single-pass — for the many-pass streaming fit, convert once with
    :func:`csv_to_npy` and iterate the memory maps instead.
    """
    path = Path(path)
    if chunk_rows < 1:
        raise DataError("chunk_rows must be >= 1")
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        label_idx = None
        if label_column is not None and label_column in header:
            label_idx = header.index(label_column)
        n_fields = len(header)
        start = 0
        buffer: "list[list[float]]" = []

        def flush():
            block = np.asarray(buffer, dtype=np.float64)
            if label_idx is None:
                return block, None
            y_chunk = block[:, label_idx]
            X_chunk = np.delete(block, label_idx, axis=1)
            return X_chunk, y_chunk

        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != n_fields:
                raise DataError(
                    f"{path}:{lineno}: ragged row (header has {n_fields} fields)"
                )
            try:
                buffer.append([float(v) if v != "" else float("nan") for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-numeric value ({exc})") from None
            if len(buffer) == chunk_rows:
                X_chunk, y_chunk = flush()
                yield range(start, start + len(buffer)), X_chunk, y_chunk
                start += len(buffer)
                buffer = []
        if buffer:
            X_chunk, y_chunk = flush()
            yield range(start, start + len(buffer)), X_chunk, y_chunk


def csv_to_npy(
    csv_path: "str | Path",
    x_path: "str | Path",
    y_path: "str | Path | None" = None,
    label_column: "str | None" = "label",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> ChunkedDataset:
    """Convert a numeric CSV to memory-mapped ``.npy`` files, streaming.

    Two passes over the file (count rows, then fill the pre-sized
    memmaps chunk by chunk) with O(chunk) resident memory, returning a
    ready :class:`ChunkedDataset` over the written files. A labeled CSV
    requires ``y_path``.
    """
    csv_path = Path(csv_path)
    n_rows = 0
    names: "tuple[str, ...] | None" = None
    labeled = False
    for rows, X_chunk, y_chunk in iter_csv_chunks(csv_path, chunk_rows, label_column):
        n_rows += len(rows)
        labeled = y_chunk is not None
        if names is None:
            names = default_names(X_chunk.shape[1])
    if names is None:
        raise DataError(f"{csv_path} has a header but no data rows")
    if labeled and y_path is None:
        raise DataError("labeled CSV needs a y_path for the label memmap")
    X_out = np.lib.format.open_memmap(
        x_path, mode="w+", dtype=np.float64, shape=(n_rows, len(names))
    )
    y_out = None
    if labeled:
        y_out = np.lib.format.open_memmap(
            y_path, mode="w+", dtype=np.float64, shape=(n_rows,)
        )
    for rows, X_chunk, y_chunk in iter_csv_chunks(csv_path, chunk_rows, label_column):
        X_out[rows.start : rows.stop] = X_chunk
        if y_out is not None:
            y_out[rows.start : rows.stop] = y_chunk
    X_out.flush()
    del X_out
    if y_out is not None:
        y_out.flush()
        del y_out
    return ChunkedDataset.from_npy(
        x_path, y_path if labeled else None, names=names, chunk_rows=chunk_rows
    )


def save_npy(
    data: Dataset, x_path: "str | Path", y_path: "str | Path | None" = None
) -> ChunkedDataset:
    """Persist a :class:`Dataset` as ``.npy`` files; return the mapped view."""
    np.save(x_path, np.ascontiguousarray(data.X))
    if data.y is not None:
        if y_path is None:
            raise DataError("labeled dataset needs a y_path")
        np.save(y_path, data.y)
    return ChunkedDataset.from_npy(
        x_path, y_path if data.y is not None else None, names=data.names
    )
