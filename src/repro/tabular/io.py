"""CSV and ``.npy`` I/O for tabular data, in-memory and out-of-core.

Two tiers:

* :func:`save_csv` / :func:`load_csv` — minimal numeric CSV round-trip
  for :class:`~repro.tabular.Dataset` (header row, ``repr`` floats for
  exact round-trips, no pandas). ``save_csv`` streams rows straight from
  the source — it never materializes a concatenated copy of the matrix,
  so it also serializes datasets that do not fit in memory.
* :class:`ChunkedDataset` + :func:`iter_csv_chunks` /
  :func:`csv_to_npy` — the out-of-core substrate for the streaming fit:
  a row-chunked view over memory-mapped ``.npy`` arrays (or in-memory
  arrays, for tests and small data) yielding ``(rows, X_chunk, y_chunk)``
  triples, re-iterable any number of times at O(chunk) resident memory.
  ``SAFE.fit`` accepts a :class:`ChunkedDataset` directly (see
  :mod:`repro.core.stream`).
"""

from __future__ import annotations

import copy
import csv
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..exceptions import ChunkIntegrityError, DataError
from ..runtime.failpoints import failpoint
from ..runtime.report import ChunkQuarantineRecord
from ..utils import atomic_path, atomic_write
from .dataset import Dataset, default_names

#: Default rows per chunk: 64k rows x 16 float64 columns is an 8 MB slab.
DEFAULT_CHUNK_ROWS = 65_536

#: Format tag embedded in (and required of) every integrity manifest.
MANIFEST_FORMAT = "repro-manifest-v1"

#: Sidecar suffix: the manifest for ``X.npy`` lives at ``X.npy.manifest.json``.
MANIFEST_SUFFIX = ".manifest.json"


def manifest_path_for(x_path: "str | Path") -> Path:
    """The sidecar manifest path for a feature backing file."""
    return Path(str(x_path) + MANIFEST_SUFFIX)


def _chunk_digest(X_slab: np.ndarray, y_slab: "np.ndarray | None") -> str:
    """Content digest of one manifest chunk (X rows + matching labels).

    BLAKE2b rather than SHA-256: same collision posture for integrity
    purposes at roughly twice the hashing throughput, which matters when
    verifying multi-gigabyte backing files.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(np.ascontiguousarray(X_slab).tobytes())
    if y_slab is not None:
        h.update(b"|y|")
        h.update(np.ascontiguousarray(y_slab).tobytes())
    return h.hexdigest()


def write_manifest(
    data: "ChunkedDataset",
    path: "str | Path | None" = None,
    chunk_rows: "int | None" = None,
) -> Path:
    """Write the integrity manifest for a dataset's backing store.

    One pass over the *full* backing arrays (views share a backing, so
    the manifest always covers every row): per-chunk content digests,
    the row/col shape, and a dtype fingerprint, published atomically via
    temp-file + ``os.replace`` so a crash mid-write never leaves a
    valid-looking partial manifest. ``path`` defaults to the sidecar
    location (:func:`manifest_path_for`) and is required for in-memory
    datasets.
    """
    if path is None:
        if data.x_path is None:
            raise DataError("an in-memory ChunkedDataset needs an explicit manifest path")
        path = manifest_path_for(data.x_path)
    path = Path(path)
    chunk_rows = int(chunk_rows or data.chunk_rows)
    if chunk_rows < 1:
        raise DataError("manifest chunk_rows must be >= 1")
    X = data._open_X()
    y = data._open_y()
    n_rows, n_cols = int(X.shape[0]), int(X.shape[1])
    digests = []
    for lo in range(0, n_rows, chunk_rows):
        hi = min(lo + chunk_rows, n_rows)
        digests.append(_chunk_digest(X[lo:hi], None if y is None else y[lo:hi]))
    payload = {
        "format": MANIFEST_FORMAT,
        "chunk_rows": chunk_rows,
        "n_rows": n_rows,
        "n_cols": n_cols,
        "dtype": str(X.dtype),
        "labeled": y is not None,
        "y_dtype": None if y is None else str(y.dtype),
        "names": list(data.names),
        "chunks": digests,
    }
    record = {
        "checksum": hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest(),
        "payload": payload,
    }
    with atomic_write(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(record, indent=2))
    return path


def load_manifest(path: "str | Path") -> dict:
    """Parse + validate a manifest file; raise :class:`ChunkIntegrityError`.

    A corrupt manifest is treated exactly like a corrupt chunk — loudly.
    Trusting a tampered manifest would let a tampered chunk verify.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ChunkIntegrityError(f"cannot read manifest {path}: {exc}") from exc
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ChunkIntegrityError(
            f"manifest {path} is not valid JSON (truncated write?): {exc}"
        ) from exc
    if not isinstance(record, dict) or "payload" not in record:
        raise ChunkIntegrityError(f"manifest {path} has no payload")
    payload = record["payload"]
    body = json.dumps(payload, sort_keys=True)
    if record.get("checksum") != hashlib.sha256(body.encode("utf-8")).hexdigest():
        raise ChunkIntegrityError(
            f"manifest {path} failed its checksum (corrupt or tampered)"
        )
    if payload.get("format") != MANIFEST_FORMAT:
        raise ChunkIntegrityError(
            f"manifest {path} has format {payload.get('format')!r}, "
            f"expected {MANIFEST_FORMAT!r}"
        )
    return payload


def _format_row(row) -> "list[str]":
    # repr() of a python float is the shortest string that round-trips,
    # so load_csv(save_csv(ds)) reproduces the matrix bit-for-bit.
    return [repr(float(v)) for v in row]


def save_csv(
    data: "Dataset | ChunkedDataset",
    path: "str | Path",
    label_column: str = "label",
) -> None:
    """Write a dataset (features + optional label column) to CSV.

    Rows are streamed to the writer one at a time: no ``np.hstack`` of
    the whole matrix, no per-file list of formatted rows. Accepts either
    an in-memory :class:`Dataset` or a :class:`ChunkedDataset` (whose
    chunks are visited in order), so a memory-mapped table can be
    exported without ever being resident.
    """
    path = Path(path)
    header = list(data.names)
    if isinstance(data, ChunkedDataset):
        chunks = ((X, y) for _, X, y in data.iter_chunks())
        labeled = data.has_labels
    else:
        chunks = iter([(data.X, data.y)])
        labeled = data.y is not None
    if labeled:
        header.append(label_column)
    # Atomic: rows stream into a hidden temp file that only becomes
    # ``path`` once the last row is written and fsync'd, so a crash
    # mid-export can't leave a valid-looking partial CSV behind.
    with atomic_write(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for X_chunk, y_chunk in chunks:
            if labeled:
                writer.writerows(
                    _format_row(row) + [repr(float(target))]
                    for row, target in zip(X_chunk, y_chunk)
                )
            else:
                writer.writerows(_format_row(row) for row in X_chunk)


def load_csv(path: "str | Path", label_column: "str | None" = "label") -> Dataset:
    """Read a numeric CSV with header into a :class:`Dataset`.

    If ``label_column`` is present in the header it becomes ``y``;
    pass ``label_column=None`` to treat every column as a feature.
    """
    path = Path(path)
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                rows.append([float(v) if v != "" else float("nan") for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-numeric value ({exc})") from None
    if not rows:
        raise DataError(f"{path} has a header but no data rows")
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.shape[1] != len(header):
        raise DataError(f"{path}: ragged rows (header has {len(header)} fields)")
    if label_column is not None and label_column in header:
        k = header.index(label_column)
        y = matrix[:, k]
        X = np.delete(matrix, k, axis=1)
        names = [h for i, h in enumerate(header) if i != k]
        return Dataset(X=X, names=tuple(names), y=y)
    return Dataset(X=matrix, names=tuple(header), y=None)


class ChunkedDataset:
    """A labeled table visited in row chunks instead of held in memory.

    Backed either by ``.npy`` files opened with ``mmap_mode="r"`` (the
    out-of-core path: resident memory stays O(chunk) regardless of
    ``n_rows``) or by in-memory arrays (tests, small data). The object is
    re-iterable — the streaming fit makes many passes — and picklable:
    file-backed instances ship only their paths to worker processes,
    which re-open the memory maps locally, so row-sharded workers in
    :mod:`repro.parallel` never serialize the matrix.

    ``shards(n)`` splits the row range into ``n`` contiguous sub-views
    sharing the same backing storage, the unit of row-parallel work.

    Integrity: pass ``manifest=`` (a path written by
    :func:`write_manifest`; auto-discovered by :meth:`from_npy`) and
    every chunk is verified against its content digest lazily as
    :meth:`iter_chunks` reaches it. A corrupt or torn chunk raises
    :class:`~repro.exceptions.ChunkIntegrityError` — or, under
    ``on_chunk_error="quarantine"``, the bad chunks are identified up
    front (the exclusion set must be known before any kernel sees a row
    count), excluded from every pass, and reported via
    :meth:`quarantined_chunks`; surviving rows are renumbered
    contiguously so chunk streams still cover ``0..n_rows`` in order.
    Either way a corrupt chunk is never silently consumed.
    """

    def __init__(
        self,
        names: "tuple[str, ...]",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        *,
        X: "np.ndarray | None" = None,
        y: "np.ndarray | None" = None,
        x_path: "str | Path | None" = None,
        y_path: "str | Path | None" = None,
        start: int = 0,
        stop: "int | None" = None,
        manifest: "str | Path | None" = None,
        on_chunk_error: str = "raise",
    ) -> None:
        if (X is None) == (x_path is None):
            raise DataError("ChunkedDataset needs exactly one of X or x_path")
        if chunk_rows < 1:
            raise DataError("chunk_rows must be >= 1")
        if on_chunk_error not in ("raise", "quarantine"):
            raise DataError(
                f"on_chunk_error must be 'raise' or 'quarantine', got {on_chunk_error!r}"
            )
        self.chunk_rows = int(chunk_rows)
        self._X_mem = None if X is None else np.asarray(X, dtype=np.float64)
        self._y_mem = None if y is None else np.asarray(y, dtype=np.float64).ravel()
        self.x_path = None if x_path is None else str(x_path)
        self.y_path = None if y_path is None else str(y_path)
        if y is not None and x_path is not None:
            raise DataError("in-memory y cannot back a file-based ChunkedDataset")
        self._X_map: "np.ndarray | None" = None
        self._y_map: "np.ndarray | None" = None
        self.manifest_path = None if manifest is None else str(manifest)
        self.on_chunk_error = on_chunk_error
        self._manifest: "dict | None" = None
        self._chunk_ok: "dict[int, str | None]" = {}
        self._excluded: "tuple[int, ...] | None" = (
            None if self.manifest_path is not None and on_chunk_error == "quarantine"
            else ()
        )
        total_rows, n_cols = self._backing_shape()
        self._backing_rows = total_rows
        self.names = tuple(str(n) for n in (names or default_names(n_cols)))
        if len(self.names) != n_cols:
            raise DataError(f"{len(self.names)} column names for {n_cols} columns")
        y_rows = self._label_rows()
        if y_rows is not None and y_rows != total_rows:
            raise DataError(f"y has {y_rows} rows but X has {total_rows}")
        # In quarantine mode the exclusion scan must run before any row
        # arithmetic: start/stop/n_rows are in *effective* (surviving-row)
        # coordinates so every kernel sees one consistent contiguous range.
        total = self._effective_rows()
        stop = total if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= total:
            raise DataError(
                f"row range [{start}, {stop}) outside table of {total} rows"
            )
        self.start = start
        self.stop = stop

    # -- backing ------------------------------------------------------
    def _backing_shape(self) -> "tuple[int, int]":
        X = self._open_X()
        if X.ndim != 2:
            raise DataError("ChunkedDataset expects a 2-D feature matrix")
        return int(X.shape[0]), int(X.shape[1])

    def _label_rows(self) -> "int | None":
        y = self._open_y()
        return None if y is None else int(y.shape[0])

    def _open_X(self) -> np.ndarray:
        if self._X_mem is not None:
            return self._X_mem
        if self._X_map is None:
            self._X_map = np.load(self.x_path, mmap_mode="r")
        return self._X_map

    def _open_y(self) -> "np.ndarray | None":
        if self._y_mem is not None:
            return self._y_mem
        if self.y_path is None:
            return None
        if self._y_map is None:
            self._y_map = np.load(self.y_path, mmap_mode="r")
        return self._y_map

    # -- integrity (manifest verification + quarantine) ----------------
    def _ensure_manifest(self) -> "dict | None":
        """Load + validate the manifest once; check shape/dtype fingerprints.

        The shape check is what catches a truncated or regenerated
        backing file whose rows no longer mean what the manifest
        promised — per-chunk digests can't be trusted to even line up
        then, so any mismatch raises regardless of ``on_chunk_error``.
        """
        if self.manifest_path is None:
            return None
        if self._manifest is None:
            payload = load_manifest(self.manifest_path)
            X = self._open_X()
            source = self.x_path or "in-memory arrays"
            if (int(X.shape[0]), int(X.shape[1])) != (
                int(payload["n_rows"]),
                int(payload["n_cols"]),
            ):
                raise ChunkIntegrityError(
                    f"{source}: shape {tuple(X.shape)} does not match manifest "
                    f"({payload['n_rows']}, {payload['n_cols']}) — truncated or "
                    "regenerated backing file"
                )
            if str(X.dtype) != payload["dtype"]:
                raise ChunkIntegrityError(
                    f"{source}: dtype {X.dtype} does not match manifest "
                    f"{payload['dtype']!r}"
                )
            if bool(payload.get("labeled")) != self.has_labels:
                raise ChunkIntegrityError(
                    f"{source}: manifest was written for a "
                    f"{'labeled' if payload.get('labeled') else 'label-free'} "
                    "table; labels present do not match"
                )
            self._manifest = payload
        return self._manifest

    def _verify_chunk(self, index: int) -> "str | None":
        """Digest-check one manifest chunk; cache and return the failure
        reason (None = chunk is intact)."""
        if index in self._chunk_ok:
            return self._chunk_ok[index]
        manifest = self._ensure_manifest()
        cr = int(manifest["chunk_rows"])
        lo = index * cr
        hi = min(lo + cr, int(manifest["n_rows"]))
        X = self._open_X()
        y = self._open_y()
        digest = _chunk_digest(X[lo:hi], None if y is None else y[lo:hi])
        reason = (
            None
            if digest == manifest["chunks"][index]
            else "content digest mismatch against manifest (bit rot or torn write)"
        )
        self._chunk_ok[index] = reason
        return reason

    def _exclusions(self) -> "tuple[int, ...]":
        """Quarantined manifest-chunk indices (empty outside quarantine mode).

        The first call under ``on_chunk_error="quarantine"`` verifies
        every chunk up front: exclusions change the effective row count,
        so they must be fixed — deterministically, in chunk order —
        before any kernel observes the dataset.
        """
        if self._excluded is None:
            manifest = self._ensure_manifest()
            n_chunks = len(manifest["chunks"])
            self._excluded = tuple(
                m for m in range(n_chunks) if self._verify_chunk(m) is not None
            )
        return self._excluded

    def _segments(self) -> "list[tuple[int, int, int]]":
        """Surviving row runs as ``(real_lo, real_hi, effective_lo)``."""
        excluded = self._exclusions()
        total = self._backing_rows
        if not excluded:
            return [(0, total, 0)]
        manifest = self._ensure_manifest()
        cr = int(manifest["chunk_rows"])
        bad = set(excluded)
        segments: "list[tuple[int, int, int]]" = []
        eff = 0
        run_start: "int | None" = None
        n_chunks = len(manifest["chunks"])
        for m in range(n_chunks + 1):
            if m < n_chunks and m not in bad:
                if run_start is None:
                    run_start = m * cr
                continue
            if run_start is not None:
                hi = min(m * cr, total)
                segments.append((run_start, hi, eff))
                eff += hi - run_start
                run_start = None
        return segments

    def _effective_rows(self) -> int:
        """Total surviving rows (== backing rows outside quarantine mode)."""
        segments = self._segments()
        last_real_lo, last_real_hi, last_eff = segments[-1]
        return last_eff + (last_real_hi - last_real_lo)

    def _real_spans(self, eff_lo: int, eff_hi: int):
        """Map an effective row window onto backing-file row runs."""
        for r_lo, r_hi, e_lo in self._segments():
            e_hi = e_lo + (r_hi - r_lo)
            a, b = max(eff_lo, e_lo), min(eff_hi, e_hi)
            if a < b:
                yield a, b, r_lo + (a - e_lo), r_lo + (b - e_lo)

    def _verify_rows(self, real_lo: int, real_hi: int) -> None:
        """Raise-mode lazy verification of the chunks covering a row run."""
        manifest = self._ensure_manifest()
        if manifest is None:
            return
        cr = int(manifest["chunk_rows"])
        for m in range(real_lo // cr, (real_hi - 1) // cr + 1):
            reason = self._verify_chunk(m)
            if reason is not None and self.on_chunk_error == "raise":
                lo = m * cr
                hi = min(lo + cr, int(manifest["n_rows"]))
                raise ChunkIntegrityError(
                    f"{self.x_path or 'in-memory arrays'}: chunk {m} "
                    f"(rows [{lo}, {hi})) {reason}"
                )

    def quarantined_chunks(self) -> "tuple[ChunkQuarantineRecord, ...]":
        """Records for every excluded chunk (quarantine mode only)."""
        if self.on_chunk_error != "quarantine" or self.manifest_path is None:
            return ()
        manifest = self._ensure_manifest()
        cr = int(manifest["chunk_rows"])
        records = []
        for m in self._exclusions():
            lo = m * cr
            hi = min(lo + cr, int(manifest["n_rows"]))
            records.append(
                ChunkQuarantineRecord(
                    chunk_index=m,
                    row_start=lo,
                    row_stop=hi,
                    path=self.x_path or "in-memory arrays",
                    reason=self._chunk_ok.get(m) or "excluded by manifest",
                )
            )
        return tuple(records)

    def verify_integrity(self) -> "tuple[int, ...]":
        """Verify every manifest chunk now; return the bad chunk indices.

        In raise mode the first bad chunk raises instead (via the same
        path iteration takes), so a clean return means the whole backing
        store matches its manifest.
        """
        manifest = self._ensure_manifest()
        if manifest is None:
            return ()
        bad = []
        for m in range(len(manifest["chunks"])):
            reason = self._verify_chunk(m)
            if reason is not None:
                if self.on_chunk_error == "raise":
                    cr = int(manifest["chunk_rows"])
                    lo = m * cr
                    hi = min(lo + cr, int(manifest["n_rows"]))
                    raise ChunkIntegrityError(
                        f"{self.x_path or 'in-memory arrays'}: chunk {m} "
                        f"(rows [{lo}, {hi})) {reason}"
                    )
                bad.append(m)
        return tuple(bad)

    # -- shape / schema ----------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    @property
    def n_cols(self) -> int:
        return len(self.names)

    @property
    def has_labels(self) -> bool:
        return self._y_mem is not None or self.y_path is not None

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = self.x_path or "arrays"
        return (
            f"ChunkedDataset({self.n_rows} rows x {self.n_cols} cols, "
            f"chunk_rows={self.chunk_rows}, backing={src})"
        )

    # -- iteration ----------------------------------------------------
    def iter_chunks(self):
        """Yield ``(rows, X_chunk, y_chunk)`` over the row range in order.

        ``rows`` is the global ``range`` the chunk covers; ``X_chunk``
        is a ``(len(rows), n_cols)`` float64 block (a memory-map view
        for file backing — pages stream in on access and are evictable,
        so resident memory stays O(chunk)); ``y_chunk`` is the matching
        label slice or None.
        """
        X = self._open_X()
        y = self._open_y()
        if self.manifest_path is None:
            for lo in range(self.start, self.stop, self.chunk_rows):
                hi = min(lo + self.chunk_rows, self.stop)
                y_chunk = None if y is None else y[lo:hi]
                yield range(lo, hi), X[lo:hi], y_chunk
            return
        # Manifest-verified path: rows are effective coordinates (bad
        # chunks excluded and survivors renumbered contiguously), chunks
        # split at exclusion borders, and each backing run is verified
        # lazily as iteration reaches it.
        for lo in range(self.start, self.stop, self.chunk_rows):
            hi = min(lo + self.chunk_rows, self.stop)
            for eff_lo, eff_hi, real_lo, real_hi in self._real_spans(lo, hi):
                failpoint("stream.chunk.read")
                self._verify_rows(real_lo, real_hi)
                y_chunk = None if y is None else y[real_lo:real_hi]
                yield range(eff_lo, eff_hi), X[real_lo:real_hi], y_chunk

    def shards(self, n_shards: int) -> "list[ChunkedDataset]":
        """Split the row range into ``n_shards`` contiguous sub-views."""
        if n_shards < 1:
            raise DataError("n_shards must be >= 1")
        n_shards = min(n_shards, max(self.n_rows, 1))
        bounds = np.linspace(self.start, self.stop, n_shards + 1).astype(np.int64)
        out = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                out.append(self._view(int(lo), int(hi)))
        return out

    def _view(self, start: int, stop: int) -> "ChunkedDataset":
        # A shallow clone instead of re-construction: the view must share
        # the parent's manifest state and verification verdicts (so shards
        # of a quarantining dataset agree on the exclusion set without
        # re-scanning), while memmap handles stay per-instance.
        view = copy.copy(self)
        view._X_map = None
        view._y_map = None
        view.start = int(start)
        view.stop = int(stop)
        return view

    def materialize(self) -> Dataset:
        """Load the full row range into an in-memory :class:`Dataset`."""
        if self.manifest_path is not None:
            n = self.n_rows
            X = np.zeros((n, self.n_cols), dtype=np.float64)
            y = np.zeros(n, dtype=np.float64) if self.has_labels else None
            for rows, X_chunk, y_chunk in self.iter_chunks():
                lo, hi = rows.start - self.start, rows.stop - self.start
                X[lo:hi] = X_chunk
                if y is not None:
                    y[lo:hi] = y_chunk
            return Dataset(X=X, names=self.names, y=y)
        X = np.asarray(self._open_X()[self.start : self.stop], dtype=np.float64)
        y = self._open_y()
        y = None if y is None else np.asarray(y[self.start : self.stop])
        return Dataset(X=X, names=self.names, y=y)

    # -- construction -------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        X: "np.ndarray | list",
        y: "np.ndarray | list | None" = None,
        names: "tuple[str, ...] | None" = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> "ChunkedDataset":
        X = np.asarray(X, dtype=np.float64)
        if names is None:
            names = default_names(X.shape[1] if X.ndim == 2 else 0)
        return cls(tuple(names), chunk_rows, X=X,
                   y=None if y is None else np.asarray(y))

    @classmethod
    def from_dataset(
        cls, data: Dataset, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> "ChunkedDataset":
        return cls(data.names, chunk_rows, X=data.X, y=data.y)

    @classmethod
    def from_npy(
        cls,
        x_path: "str | Path",
        y_path: "str | Path | None" = None,
        names: "tuple[str, ...] | None" = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        *,
        manifest: "str | Path | bool | None" = None,
        on_chunk_error: str = "raise",
    ) -> "ChunkedDataset":
        """Open memory-mapped ``.npy`` feature/label files as a dataset.

        ``manifest`` selects integrity verification: a path uses that
        manifest, ``True`` requires the sidecar
        (:func:`manifest_path_for`), ``False`` disables verification,
        and ``None`` (default) auto-discovers — the sidecar is used iff
        it exists. Column names fall back to the manifest's before the
        generic ``f0..fk`` defaults.
        """
        manifest_path: "Path | None"
        if manifest is False:
            manifest_path = None
        elif manifest is None or manifest is True:
            sidecar = manifest_path_for(x_path)
            if manifest is True and not sidecar.exists():
                raise ChunkIntegrityError(f"manifest {sidecar} does not exist")
            manifest_path = sidecar if sidecar.exists() else None
        else:
            manifest_path = Path(manifest)
        if names is None and manifest_path is not None:
            recorded = load_manifest(manifest_path).get("names")
            if recorded:
                names = tuple(str(n) for n in recorded)
        if names is None:
            probe = np.load(x_path, mmap_mode="r")
            if probe.ndim != 2:
                raise DataError("ChunkedDataset expects a 2-D feature matrix")
            names = default_names(int(probe.shape[1]))
            del probe
        return cls(
            tuple(names),
            chunk_rows,
            x_path=x_path,
            y_path=y_path,
            manifest=manifest_path,
            on_chunk_error=on_chunk_error,
        )

    # -- pickling (row-sharded workers) -------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Memory-map handles are per-process; workers re-open lazily.
        state["_X_map"] = None
        state["_y_map"] = None
        return state


def iter_csv_chunks(
    path: "str | Path",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    label_column: "str | None" = "label",
):
    """Stream a numeric CSV as ``(rows, X_chunk, y_chunk)`` triples.

    The row-chunked counterpart of :func:`load_csv`: at most
    ``chunk_rows`` parsed rows are resident at a time. ``y_chunk`` is
    None when ``label_column`` is absent from the header. CSV parsing is
    single-pass — for the many-pass streaming fit, convert once with
    :func:`csv_to_npy` and iterate the memory maps instead.
    """
    path = Path(path)
    if chunk_rows < 1:
        raise DataError("chunk_rows must be >= 1")
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        label_idx = None
        if label_column is not None and label_column in header:
            label_idx = header.index(label_column)
        n_fields = len(header)
        start = 0
        buffer: "list[list[float]]" = []

        def flush():
            block = np.asarray(buffer, dtype=np.float64)
            if label_idx is None:
                return block, None
            y_chunk = block[:, label_idx]
            X_chunk = np.delete(block, label_idx, axis=1)
            return X_chunk, y_chunk

        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != n_fields:
                raise DataError(
                    f"{path}:{lineno}: ragged row (header has {n_fields} fields)"
                )
            try:
                buffer.append([float(v) if v != "" else float("nan") for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-numeric value ({exc})") from None
            if len(buffer) == chunk_rows:
                X_chunk, y_chunk = flush()
                yield range(start, start + len(buffer)), X_chunk, y_chunk
                start += len(buffer)
                buffer = []
        if buffer:
            X_chunk, y_chunk = flush()
            yield range(start, start + len(buffer)), X_chunk, y_chunk


def csv_to_npy(
    csv_path: "str | Path",
    x_path: "str | Path",
    y_path: "str | Path | None" = None,
    label_column: "str | None" = "label",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    *,
    manifest: bool = False,
) -> ChunkedDataset:
    """Convert a numeric CSV to memory-mapped ``.npy`` files, streaming.

    Two passes over the file (count rows, then fill the pre-sized
    memmaps chunk by chunk) with O(chunk) resident memory, returning a
    ready :class:`ChunkedDataset` over the written files. A labeled CSV
    requires ``y_path``. The memmaps fill hidden temp files that are
    atomically renamed into place only once fully written, so a crash
    mid-conversion leaves no valid-looking partial ``.npy`` behind.
    ``manifest=True`` also writes the sidecar integrity manifest
    (column names included) next to ``x_path``.
    """
    csv_path = Path(csv_path)
    with csv_path.open("r", newline="") as fh:
        header = next(csv.reader(fh), None)
    if header is None:
        raise DataError(f"{csv_path} is empty")
    label_idx = (
        header.index(label_column)
        if label_column is not None and label_column in header
        else None
    )
    feature_names = tuple(h for i, h in enumerate(header) if i != label_idx)
    n_rows = 0
    names: "tuple[str, ...] | None" = None
    labeled = False
    for rows, X_chunk, y_chunk in iter_csv_chunks(csv_path, chunk_rows, label_column):
        n_rows += len(rows)
        labeled = y_chunk is not None
        if names is None:
            names = feature_names
    if names is None:
        raise DataError(f"{csv_path} has a header but no data rows")
    if labeled and y_path is None:
        raise DataError("labeled CSV needs a y_path for the label memmap")
    with atomic_path(x_path, suffix=".npy") as x_tmp:
        X_out = np.lib.format.open_memmap(
            x_tmp, mode="w+", dtype=np.float64, shape=(n_rows, len(names))
        )
        y_out = None
        if labeled:
            y_tmp = Path(str(y_path) + ".tmp.npy")
            y_out = np.lib.format.open_memmap(
                y_tmp, mode="w+", dtype=np.float64, shape=(n_rows,)
            )
        try:
            for rows, X_chunk, y_chunk in iter_csv_chunks(
                csv_path, chunk_rows, label_column
            ):
                X_out[rows.start : rows.stop] = X_chunk
                if y_out is not None:
                    y_out[rows.start : rows.stop] = y_chunk
            X_out.flush()
            del X_out
            if y_out is not None:
                y_out.flush()
                del y_out
                os.replace(y_tmp, y_path)
        finally:
            if labeled and y_tmp.exists():
                y_tmp.unlink()
    data = ChunkedDataset.from_npy(
        x_path,
        y_path if labeled else None,
        names=names,
        chunk_rows=chunk_rows,
        manifest=False,
    )
    if manifest:
        write_manifest(data)
        data = ChunkedDataset.from_npy(
            x_path,
            y_path if labeled else None,
            names=names,
            chunk_rows=chunk_rows,
            manifest=True,
        )
    return data


def save_npy(
    data: Dataset,
    x_path: "str | Path",
    y_path: "str | Path | None" = None,
    *,
    manifest: bool = False,
) -> ChunkedDataset:
    """Persist a :class:`Dataset` as ``.npy`` files; return the mapped view.

    Writes are atomic (temp file + ``os.replace``), so a crash mid-save
    leaves either the previous files or nothing — never a truncated
    ``.npy`` that parses. ``manifest=True`` also writes the sidecar
    integrity manifest and returns a verifying view.
    """
    with atomic_path(x_path, suffix=".npy") as tmp:
        np.save(tmp, np.ascontiguousarray(data.X))
    if data.y is not None:
        if y_path is None:
            raise DataError("labeled dataset needs a y_path")
        with atomic_path(y_path, suffix=".npy") as tmp:
            np.save(tmp, data.y)
    out = ChunkedDataset.from_npy(
        x_path,
        y_path if data.y is not None else None,
        names=data.names,
        manifest=False,
    )
    if manifest:
        write_manifest(out)
        out = ChunkedDataset.from_npy(
            x_path,
            y_path if data.y is not None else None,
            names=data.names,
            manifest=True,
        )
    return out
