"""Minimal CSV read/write for :class:`~repro.tabular.Dataset`.

Only numeric CSVs with a header row are supported — enough for the
examples to persist and reload generated feature sets without pandas.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import DataError
from .dataset import Dataset


def save_csv(data: Dataset, path: "str | Path", label_column: str = "label") -> None:
    """Write a dataset (features + optional label column) to CSV."""
    path = Path(path)
    header = list(data.names)
    cols = [data.X]
    if data.y is not None:
        header.append(label_column)
        cols.append(data.y.reshape(-1, 1))
    matrix = np.hstack(cols)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in matrix:
            writer.writerow([repr(float(v)) for v in row])


def load_csv(path: "str | Path", label_column: "str | None" = "label") -> Dataset:
    """Read a numeric CSV with header into a :class:`Dataset`.

    If ``label_column`` is present in the header it becomes ``y``;
    pass ``label_column=None`` to treat every column as a feature.
    """
    path = Path(path)
    with path.open("r", newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                rows.append([float(v) if v != "" else float("nan") for v in row])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-numeric value ({exc})") from None
    if not rows:
        raise DataError(f"{path} has a header but no data rows")
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.shape[1] != len(header):
        raise DataError(f"{path}: ragged rows (header has {len(header)} fields)")
    if label_column is not None and label_column in header:
        k = header.index(label_column)
        y = matrix[:, k]
        X = np.delete(matrix, k, axis=1)
        names = [h for i, h in enumerate(header) if i != k]
        return Dataset(X=X, names=tuple(names), y=y)
    return Dataset(X=matrix, names=tuple(header), y=None)
