"""Train/validation/test splitting utilities.

The paper (Table IV) fixes explicit train/valid/test sizes per dataset,
with small datasets getting no validation split ("we simply use training
data for validation if necessary"). These helpers reproduce both shapes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, DataError
from ..utils import check_random_state
from .dataset import Dataset


def _split_indices(
    n: int,
    sizes: tuple[int, ...],
    rng: np.random.Generator,
    shuffle: bool = True,
) -> list[np.ndarray]:
    if sum(sizes) > n:
        raise DataError(f"requested split sizes {sizes} exceed {n} rows")
    order = rng.permutation(n) if shuffle else np.arange(n)
    out = []
    start = 0
    for size in sizes:
        out.append(order[start : start + size])
        start += size
    return out


def train_valid_test_split(
    data: Dataset,
    n_train: int,
    n_valid: int,
    n_test: int,
    random_state: "int | np.random.Generator | None" = None,
    stratify: bool = True,
) -> tuple[Dataset, "Dataset | None", Dataset]:
    """Split ``data`` into explicit-size train/valid/test partitions.

    ``n_valid = 0`` returns ``None`` for the validation split, matching
    the paper's handling of datasets under 10k samples.
    When ``stratify`` is set (and labels exist), each partition receives
    the same positive rate as the full dataset, which matters for the
    heavily imbalanced business datasets.
    """
    if min(n_train, n_test) <= 0 or n_valid < 0:
        raise ConfigurationError("split sizes must be positive (n_valid may be 0)")
    rng = check_random_state(random_state)
    if stratify and data.y is not None:
        y = data.y
        pos_idx = np.flatnonzero(y == 1)
        neg_idx = np.flatnonzero(y != 1)
        total = data.n_rows
        parts_per_class: list[list[np.ndarray]] = []
        for cls_idx in (pos_idx, neg_idx):
            frac = cls_idx.size / total  # repro: ignore[div-guard] validated split sizes imply n_rows > 0
            sizes = [
                int(round(n_train * frac)),
                int(round(n_valid * frac)),
                int(round(n_test * frac)),
            ]
            # Rounding can overshoot the class population by a row or two;
            # shave the overflow off the largest partition.
            while sum(sizes) > cls_idx.size:
                sizes[int(np.argmax(sizes))] -= 1
            local = _split_indices(cls_idx.size, tuple(sizes), rng)
            parts_per_class.append([cls_idx[ix] for ix in local])
        merged = [
            np.concatenate([parts_per_class[0][k], parts_per_class[1][k]])
            for k in range(3)
        ]
        train_idx, valid_idx, test_idx = (rng.permutation(m) for m in merged)
    else:
        train_idx, valid_idx, test_idx = _split_indices(
            data.n_rows, (n_train, n_valid, n_test), rng
        )
    train = data.take_rows(train_idx)
    valid = data.take_rows(valid_idx) if n_valid > 0 and valid_idx.size else None
    test = data.take_rows(test_idx)
    return train, valid, test


def fraction_split(
    data: Dataset,
    train_frac: float = 0.7,
    valid_frac: float = 0.15,
    random_state: "int | np.random.Generator | None" = None,
) -> tuple[Dataset, "Dataset | None", Dataset]:
    """Fractional convenience wrapper over :func:`train_valid_test_split`."""
    if not 0 < train_frac < 1 or valid_frac < 0 or train_frac + valid_frac >= 1:
        raise ConfigurationError("fractions must satisfy 0<train, valid>=0, train+valid<1")
    n = data.n_rows
    n_train = int(n * train_frac)
    n_valid = int(n * valid_frac)
    n_test = n - n_train - n_valid
    return train_valid_test_split(data, n_train, n_valid, n_test, random_state)


def kfold_indices(
    n: int,
    n_folds: int = 5,
    random_state: "int | np.random.Generator | None" = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``(train_idx, test_idx)`` pairs for k-fold cross-validation."""
    if n_folds < 2:
        raise ConfigurationError("n_folds must be >= 2")
    if n_folds > n:
        raise DataError(f"cannot make {n_folds} folds from {n} rows")
    rng = check_random_state(random_state)
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    out = []
    for k in range(n_folds):
        test_idx = folds[k]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != k])
        out.append((train_idx, test_idx))
    return out


def bootstrap_indices(
    n: int,
    random_state: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Sample ``n`` row indices with replacement (bagging)."""
    rng = check_random_state(random_state)
    return rng.integers(0, n, size=n)
