"""Contract registries for the numerical kernels.

Five PRs of batched kernels rest on conventions nothing used to enforce:
every batched kernel must keep a scalar *oracle* (the audited reference
implementation it is bit-identical — or tolerance-identical — to) and a
parity test exercising both; every function that mutates a parameter
array in place must be explicitly registered as an in-place mutator so
callers know it may alias their data.

This module is the runtime half of that enforcement: lightweight
decorators that attach contract metadata to the functions themselves
(zero call overhead — the wrapped function is returned unchanged) and
module-level registries the meta-tests and the static linter
(:mod:`repro.analysis.rules_kernels`) cross-check.

It deliberately imports nothing from the rest of the package so kernel
modules anywhere in the tree can depend on it without cycles.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass


@dataclass(frozen=True)
class KernelContract:
    """Declared contract of one batched kernel."""

    #: Qualified name (``module.qualname``) of the kernel.
    name: str
    #: Bare function name, used for test-suite AST cross-checks.
    func_name: str
    #: Bare name of the scalar reference the kernel must match.
    oracle: "str | None"
    #: Source location for lint findings.
    path: str
    line: int


@dataclass(frozen=True)
class MergeContract:
    """Declared contract of one chunk-mergeable (sufficient-statistic) kernel.

    A chunk-mergeable kernel maps a row chunk to a *partial* — a
    sufficient statistic for its rows — and ``merge`` combines two
    partials into the partial of the concatenated chunks. ``merge`` must
    be associative with the empty chunk as identity, so partials can be
    accumulated over any chunking (or sharding) of the rows.

    ``exact`` declares the equivalence class: ``True`` means
    ``merge(partial(A), partial(B))`` is **bit-identical** to
    ``partial(A ∥ B)`` (integer counts, exact min/max); ``False`` means
    the guarantee is ≤1e-9 relative (floating-point sums, whose value
    depends on association order).
    """

    #: Qualified name (``module.qualname``) of the partial kernel.
    name: str
    #: Bare function name, used for test-suite cross-checks.
    func_name: str
    #: The merge callable: ``merge(partial_a, partial_b) -> partial``.
    merge: "object"
    #: Bit-identical merge (integer/exact statistics) vs ≤1e-9 (float sums).
    exact: bool
    #: Source location for lint findings.
    path: str
    line: int


#: All registered batched kernels, keyed by qualified name.
KERNEL_REGISTRY: "dict[str, KernelContract]" = {}

#: All registered chunk-mergeable kernels, keyed by qualified name.
MERGEABLE_REGISTRY: "dict[str, MergeContract]" = {}

#: Scalar reference implementations (the audited semantics).
ORACLE_REGISTRY: "dict[str, KernelContract]" = {}

#: Public kernel-module functions explicitly outside the contract.
EXEMPT_REGISTRY: "dict[str, str]" = {}

#: Functions allowed to mutate a parameter array in place.
INPLACE_MUTATORS: "dict[str, str]" = {}


def _location(fn) -> "tuple[str, int]":
    try:
        path = inspect.getsourcefile(fn) or "<unknown>"
        line = fn.__code__.co_firstlineno
    except (AttributeError, TypeError):
        path, line = "<unknown>", 0
    return path, line


def _qualname(fn) -> str:
    return f"{fn.__module__}.{fn.__qualname__}"


def batched_kernel(oracle: "str | None" = None):
    """Declare a function (or method) as a batched numerical kernel.

    ``oracle`` names the scalar reference implementation the kernel is
    kept numerically identical to; the kernel-parity lint rule fails any
    kernel registered without one, and any kernel whose name does not
    co-occur with its oracle's name in some test module (the parity
    test). The function itself is returned unchanged.
    """

    def decorate(fn):
        path, line = _location(fn)
        contract = KernelContract(
            name=_qualname(fn),
            func_name=fn.__name__,
            oracle=oracle,
            path=path,
            line=line,
        )
        KERNEL_REGISTRY[contract.name] = contract
        fn.__kernel_contract__ = contract
        return fn

    return decorate


def chunk_mergeable(merge, exact: bool):
    """Declare a function as a chunk-mergeable sufficient-statistic kernel.

    ``merge`` is the associative combiner of two partials; ``exact``
    declares whether merging is bit-identical to a single-pass partial
    (integer counts) or ≤1e-9 (float sums). The merge-property test
    (``tests/test_stream_merge.py``) iterates :data:`MERGEABLE_REGISTRY`
    and checks ``merge(partial(A), partial(B)) == partial(A ∥ B)`` at the
    declared strength for every registered kernel, and the
    ``full-matrix-in-chunk-loop`` lint rule forbids whole-array
    (non-mergeable) reductions inside decorated functions. The function
    itself is returned unchanged; composes with :func:`batched_kernel`.
    """
    if not callable(merge):
        raise TypeError("chunk_mergeable requires a callable merge")

    def decorate(fn):
        path, line = _location(fn)
        contract = MergeContract(
            name=_qualname(fn),
            func_name=fn.__name__,
            merge=merge,
            exact=bool(exact),
            path=path,
            line=line,
        )
        MERGEABLE_REGISTRY[contract.name] = contract
        fn.__chunk_mergeable__ = contract
        return fn

    return decorate


def kernel_oracle(fn):
    """Mark a function as a scalar reference (the audited semantics).

    Oracles are the *other half* of the kernel contract: they stay
    simple, per-item, and reviewable against the paper, and parity tests
    compare kernels to them.
    """
    path, line = _location(fn)
    contract = KernelContract(
        name=_qualname(fn),
        func_name=fn.__name__,
        oracle=None,
        path=path,
        line=line,
    )
    ORACLE_REGISTRY[contract.name] = contract
    fn.__kernel_oracle__ = True
    return fn


def kernel_exempt(reason: str):
    """Exempt a public kernel-module function from the kernel contract.

    For layout/bookkeeping helpers that are not numerical kernels. The
    registry-completeness meta-test accepts only decorated exemptions, so
    every escape from the contract is explicit and carries a reason.
    """
    if not isinstance(reason, str) or not reason:
        raise TypeError("kernel_exempt requires a non-empty reason string")

    def decorate(fn):
        EXEMPT_REGISTRY[_qualname(fn)] = reason
        fn.__kernel_exempt__ = reason
        return fn

    return decorate


def inplace_mutator(fn):
    """Register a function that intentionally mutates a parameter array.

    The aliasing lint rule flags any undeclared write-through to a
    parameter; this decorator is the declaration. Callers of a decorated
    function must own the array they pass (see each function's docstring
    for its exact aliasing contract).
    """
    INPLACE_MUTATORS[_qualname(fn)] = fn.__name__
    fn.__inplace_mutator__ = True
    return fn
