"""Per-function AST facts shared by the numerical lint rules.

The float-hazard and aliasing rules both need cheap, local answers to
"has this function shown any evidence of guarding this value?" and
"which names still alias a parameter at this line?". Whole-program type
inference is out of scope (and overkill for a numpy codebase); instead
each rule reasons over one function at a time with the conservative
syntactic evidence collected here:

* **guard evidence** — a name that is compared against a constant,
  tested for truthiness, assigned from a clamping call
  (``np.maximum`` / ``np.clip`` / ``abs`` / ``np.exp`` …), assigned a
  nonzero constant, or patched through a subscript store
  (``safe[mask] = 1.0``) is treated as validated by the author;
* **errstate ranges** — lines inside ``with np.errstate(...)`` are an
  explicit acknowledgement of float-edge behaviour and are skipped;
* **alias tracking** — parameter names stay "caller-owned" until rebound
  to an expression that provably allocates (``.copy()``, ``np.empty``,
  arithmetic, …); rebinding through layout casts (``np.asarray``,
  ``reshape``, …) preserves the alias.

Heuristics err toward *under*-flagging: a lint that cries wolf gets
suppressed wholesale and enforces nothing.
"""

from __future__ import annotations

import ast

#: Calls whose result (or whose presence around a value) counts as guard
#: evidence: clamps, magnitude maps, and total-order reducers.
GUARDING_CALLS = frozenset(
    {"maximum", "clip", "abs", "exp", "expm1", "max", "min", "where", "isfinite"}
)

#: Rebinding through these keeps the result aliased to its argument
#: (no-copy casts and reshapes; ``ascontiguousarray`` may alias).
ALIAS_PRESERVING_CALLS = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "atleast_1d",
        "atleast_2d",
        "ravel",
        "reshape",
        "view",
        "squeeze",
        "transpose",
        "as_float_matrix",
        "prepare_matrix",
        "broadcast_arrays",
    }
)

#: ndarray methods that mutate the receiver in place.
MUTATING_METHODS = frozenset(
    {"sort", "fill", "partition", "put", "resize", "byteswap", "setflags"}
)

#: numpy functions that mutate their first positional argument.
MUTATING_FIRST_ARG_FUNCS = frozenset(
    {"fill_diagonal", "copyto", "place", "putmask", "shuffle"}
)


def dotted_name(node: ast.AST) -> "str | None":
    """Render ``a``, ``a.b``, ``a.b.c`` chains; None for anything else."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> "str | None":
    """Bare callee name: ``np.maximum(...)`` → ``maximum``; ``max(...)`` → ``max``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def node_end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or node.lineno


def iter_function_defs(tree: ast.AST):
    """Every (possibly nested) function/method definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class FunctionScope:
    """Syntactic guard evidence and errstate ranges for one function."""

    def __init__(
        self,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module",
        extra_guarded: "set[str] | frozenset[str]" = frozenset(),
    ) -> None:
        self.fn = fn
        self.guarded: "set[str]" = set(extra_guarded)
        self.errstate_ranges: "list[tuple[int, int]]" = []
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        assigns: "list[ast.Assign]" = []
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Compare):
                for operand in [node.left, *node.comparators]:
                    # `base[clf] > 0` is guard evidence on `base` too.
                    if isinstance(operand, ast.Subscript):
                        operand = operand.value
                    name = dotted_name(operand)
                    if name:
                        self.guarded.add(name)
            elif isinstance(node, (ast.If, ast.IfExp, ast.While)):
                name = dotted_name(node.test)
                if name:
                    self.guarded.add(name)
            elif isinstance(node, ast.Assert):
                for sub in ast.walk(node.test):
                    name = dotted_name(sub)
                    if name:
                        self.guarded.add(name)
            elif isinstance(node, ast.Assign):
                assigns.append(node)
                self._collect_assign(node)
            elif isinstance(node, ast.Subscript):
                # `safe[mask] = 1.0` appears as a Subscript in Store ctx.
                if isinstance(node.ctx, ast.Store):
                    name = dotted_name(node.value)
                    if name:
                        self.guarded.add(name)
            elif isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) and call_name(expr) == "errstate":
                        self.errstate_ranges.append(
                            (node.lineno, node_end_line(node))
                        )
        # Fixpoint: guardedness flows through assignments
        # (`n2 = float(a.size * a.size)` is guarded once `a.size` is).
        # Walk order is not execution order, so this can credit a guard
        # textually below the use — acceptable under-flagging.
        changed = True
        while changed:
            changed = False
            for node in assigns:
                if not self.is_guarded(node.value):
                    continue
                for target in node.targets:
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        name = dotted_name(element)
                        if name and name not in self.guarded:
                            self.guarded.add(name)
                            changed = True

    def _collect_assign(self, node: ast.Assign) -> None:
        rhs_guards = False
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Call) and call_name(sub) in GUARDING_CALLS:
                rhs_guards = True
                break
            if (
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, (int, float))
                and sub.value
            ):
                # e.g. `eps = 1e-12`, `safe = norms + 1.0`
                rhs_guards = True
        if not rhs_guards:
            return
        for target in node.targets:
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            )
            for element in elements:
                name = dotted_name(element)
                if name:
                    self.guarded.add(name)

    # ------------------------------------------------------------------
    def in_errstate(self, lineno: int) -> bool:
        return any(start <= lineno <= end for start, end in self.errstate_ranges)

    def is_guarded(self, node: ast.AST) -> bool:
        """Conservatively: has the author shown handling for this value?"""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and bool(node.value)
        name = dotted_name(node)
        if name is not None:
            return name in self.guarded or name.split(".")[0] in self.guarded
        if isinstance(node, ast.Subscript):
            return self.is_guarded(node.value)
        if isinstance(node, ast.Call):
            if call_name(node) in GUARDING_CALLS:
                return True
            if any(self.is_guarded(arg) for arg in node.args):
                return True
            # A reduction/method on a guarded array (`wts.sum()` where
            # wts came from np.maximum) inherits the guard.
            if isinstance(node.func, ast.Attribute):
                return self.is_guarded(node.func.value)
            return False
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Add):
                # `x + eps` is the canonical positivity guard; either
                # guarded side is taken as the author's floor.
                return self.is_guarded(node.left) or self.is_guarded(node.right)
            return self.is_guarded(node.left) and self.is_guarded(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_guarded(node.operand)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self.is_guarded(node.elt)
        if isinstance(node, (ast.List, ast.Tuple)):
            return all(self.is_guarded(item) for item in node.elts)
        if isinstance(node, ast.IfExp):
            return self.is_guarded(node.body) and self.is_guarded(node.orelse)
        return False


def rhs_allocates(value: ast.AST) -> bool:
    """Does this assignment RHS provably produce a fresh array?

    Fresh: ``.copy()`` / ``.astype`` anywhere, allocation calls
    (``np.empty`` …), arithmetic/comparison expressions, literals.
    Everything else — including layout casts and subscripted views —
    conservatively preserves the alias.
    """
    fresh_calls = {
        "copy",
        "astype",
        "array",
        "empty",
        "empty_like",
        "zeros",
        "zeros_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "tile",
        "repeat",
        "arange",
        "linspace",
        "sort",  # np.sort (function form) returns a fresh array
        "unique",
        "bincount",
        "searchsorted",
        "where",
    }
    if isinstance(value, (ast.BinOp, ast.Compare, ast.BoolOp)):
        return True
    if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.ListComp, ast.Constant)):
        return True
    if isinstance(value, ast.Call):
        name = call_name(value)
        if name in fresh_calls:
            return True
        if name in ALIAS_PRESERVING_CALLS:
            return False
        # Unknown call: assume it allocates (under-flagging beats noise).
        return True
    return False
