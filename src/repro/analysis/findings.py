"""Lint findings: the one result type every rule emits.

A :class:`Finding` pins a rule violation to a file and line so failures
are actionable (`path:line: [rule-id] message`). Suppressions are
per-line source comments::

    woe = np.log(p / q)  # repro: ignore[log-guard] p, q are eps-floored above

Multiple ids separate with commas (``ignore[log-guard,div-guard]``);
``ignore[*]`` silences every rule on the line. A suppression without an
explanation is legal but frowned upon — the comment *is* the audit
trail for why the hazard is intentional.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass

#: Matches one suppression comment; group 1 is the comma-separated ids.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]+)\]")

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.severity}: {self.message}"


def parse_suppressions(source: str) -> "dict[int, set[str]]":
    """Per-line suppressed rule ids (1-based), from ``repro: ignore`` comments."""
    out: "dict[int, set[str]]" = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro:" not in text:
            continue
        for match in _SUPPRESS_RE.finditer(text):
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            out.setdefault(lineno, set()).update(ids)
    return out


def apply_suppressions(
    findings: "list[Finding]",
    suppressions_by_path: "dict[str, dict[int, set[str]]]",
) -> "list[Finding]":
    """Drop findings whose line carries a matching suppression."""
    kept: "list[Finding]" = []
    for finding in findings:
        ids = suppressions_by_path.get(finding.path, {}).get(finding.line, set())
        if finding.rule in ids or "*" in ids:
            continue
        kept.append(finding)
    return kept


def render_findings(findings: "list[Finding]", as_json: bool = False) -> str:
    """Human (one per line) or JSON (list of objects) rendering."""
    if as_json:
        return json.dumps([asdict(f) for f in findings], indent=2)
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
