"""Streaming-contract lint rule: keep chunk code O(chunk), mergeable.

The out-of-core fit (:mod:`repro.core.stream`) only holds its memory
bound if two conventions survive maintenance:

* a ``@chunk_mergeable`` kernel is a *sufficient statistic* of its
  chunk — its partial must merge across any chunking. Order statistics
  (``sort`` / ``median`` / ``quantile`` / ``percentile`` /
  ``partition`` families) are not mergeable, so their appearance inside
  a mergeable kernel body means the declared contract is a lie (the
  one sanctioned home for rank queries is the bounded
  :class:`~repro.tabular.binning.QuantileSketch`, whose compression
  lives *outside* any ``@chunk_mergeable`` body). Axis-collapsing
  no-argument reductions (``X.sum()``, ``X.mean()``, …) on a chunk
  parameter and ``param[...].copy()`` chunk duplication are flagged as
  the softer versions of the same smell: they discard the per-column
  structure the merge needs, or double the chunk's resident memory;
* a loop over ``iter_chunks()`` must not quietly re-materialize the
  matrix it is streaming — ``np.concatenate`` / ``vstack`` / ``hstack``
  / ``column_stack`` / ``stack`` / ``append`` on chunks inside the loop
  body turns O(chunk) into O(n) and defeats the whole point.

Both checks are scoped (decorated kernels; ``iter_chunks`` loop
bodies), so ordinary batch code is never flagged. Genuine exceptions —
e.g. a deliberate gather in a test helper — carry
``# repro: ignore[full-matrix-in-chunk-loop]``.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule
from .rules_kernels import _decorator_info
from .scopes import iter_function_defs

#: Order-statistic calls: fundamentally non-mergeable rank queries.
ORDER_STAT_CALLS = frozenset(
    {
        "sort",
        "argsort",
        "partition",
        "argpartition",
        "median",
        "quantile",
        "percentile",
        "nanmedian",
        "nanquantile",
        "nanpercentile",
    }
)

#: No-argument reductions that collapse every axis of their receiver.
AXIS_COLLAPSING_METHODS = frozenset({"sum", "mean", "std", "var"})

#: Array-concatenating calls that rebuild a full matrix chunk by chunk.
CONCATENATING_CALLS = frozenset(
    {"concatenate", "vstack", "hstack", "column_stack", "stack", "append"}
)


def _param_names(fn) -> "set[str]":
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _is_iter_chunks_loop(node: ast.For) -> bool:
    """``for ... in <expr>.iter_chunks(...)`` (or bare ``iter_chunks(...)``)."""
    it = node.iter
    if not isinstance(it, ast.Call):
        return False
    func = it.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name == "iter_chunks"


class FullMatrixInChunkLoopRule(LintRule):
    """Flag full-matrix work inside mergeable kernels and chunk loops."""

    rule_id = "full-matrix-in-chunk-loop"

    def check_module(self, module: SourceModule, ctx: LintContext):
        if module.tree is None:
            return
        for fn in iter_function_defs(module.tree):
            if "chunk_mergeable" in _decorator_info(fn):
                yield from self._check_kernel(module, fn)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_iter_chunks_loop(node):
                yield from self._check_chunk_loop(module, node)

    # -- scope A: @chunk_mergeable kernel bodies -----------------------
    def _check_kernel(self, module: SourceModule, fn):
        params = _param_names(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in ORDER_STAT_CALLS:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        f"order statistic '{name}' inside @chunk_mergeable "
                        f"kernel '{fn.name}': rank queries are not mergeable "
                        "across chunks — route them through a QuantileSketch "
                        "partial instead"
                    ),
                )
            elif (
                name in AXIS_COLLAPSING_METHODS
                and isinstance(func, ast.Attribute)
                and not node.args
                and not node.keywords
                and isinstance(func.value, ast.Name)
                and func.value.id in params
            ):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        f"no-axis '{name}()' on chunk parameter "
                        f"'{func.value.id}' in @chunk_mergeable kernel "
                        f"'{fn.name}' collapses the per-column structure the "
                        "merge contract needs; reduce with an explicit axis"
                    ),
                )
            elif (
                name == "copy"
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Subscript)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in params
            ):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        f"'{func.value.value.id}[...].copy()' in "
                        f"@chunk_mergeable kernel '{fn.name}' duplicates chunk "
                        "memory; slices of the caller's chunk are read-only "
                        "inputs — compute the partial without a private copy"
                    ),
                )

    # -- scope B: for-loops over iter_chunks() -------------------------
    def _check_chunk_loop(self, module: SourceModule, loop: ast.For):
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in CONCATENATING_CALLS:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        f"'{name}' inside a loop over iter_chunks() "
                        "re-materializes the streamed matrix (O(n) resident "
                        "memory); accumulate a mergeable partial instead"
                    ),
                )
