"""Lint pass infrastructure: parse once, run rules, apply suppressions.

The driver parses every source module (and, separately, every test
module — the kernel-parity rules cross-check against the test corpus
without linting it), hands a shared :class:`LintContext` to each rule,
and merges findings. Rules come in two granularities:

* ``check_module`` — called once per *source* module; most rules live
  here and only need the module's AST;
* ``check_project`` — called once with the full context; the kernel
  contract rules use this to join source declarations against test ASTs.

``run_lint`` is the single entry point used by the CLI
(``python -m repro lint``) and by ``tests/test_analysis_lint.py``; the
tests also call it on synthetic in-memory modules (via
:meth:`SourceModule.from_source`) to prove each rule fires.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding, apply_suppressions, parse_suppressions


class SourceModule:
    """One parsed python file: source text, AST, and suppressions."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree: "ast.Module | None"
        self.parse_error: "Finding | None" = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = Finding(
                path=path,
                line=exc.lineno or 1,
                rule="parse-error",
                message=f"could not parse: {exc.msg}",
            )
        self.suppressions = parse_suppressions(source)

    @classmethod
    def from_file(cls, path: Path, root: "Path | None" = None) -> "SourceModule":
        display = str(path)
        if root is not None:
            try:
                display = str(path.relative_to(root))
            except ValueError:
                pass
        return cls(display, path.read_text(encoding="utf-8"))

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "SourceModule":
        return cls(path, source)


class LintContext:
    """Everything a rule may look at: source modules plus test corpus."""

    def __init__(
        self,
        src_modules: "list[SourceModule]",
        test_modules: "list[SourceModule] | None" = None,
    ) -> None:
        self.src_modules = src_modules
        self.test_modules = test_modules or []


class LintRule:
    """Base class for lint rules; subclasses set ``rule_id``."""

    rule_id: str = ""

    def check_module(self, module: SourceModule, ctx: LintContext):
        return ()

    def check_project(self, ctx: LintContext):
        return ()


def iter_python_files(root: Path) -> "list[Path]":
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def default_rules() -> "list[LintRule]":
    # Imported lazily so constructing a custom rule set never pays for
    # (or cycles through) rules it does not use.
    from .rules_aliasing import InplaceAliasRule
    from .rules_artifacts import ArtifactWriteRule
    from .rules_float import (
        EmptyFillRule,
        Float32CastRule,
        FloatEqualityRule,
        GuardedDivisionRule,
        GuardedLogRule,
    )
    from .rules_kernels import BatchableParityRule, KernelContractRule
    from .rules_parallel import ParallelCallableRule, ParallelChunkStateRule
    from .rules_robustness import ExceptSwallowRule, WallClockDeadlineRule
    from .rules_stream import FullMatrixInChunkLoopRule

    return [
        FloatEqualityRule(),
        GuardedLogRule(),
        GuardedDivisionRule(),
        Float32CastRule(),
        EmptyFillRule(),
        InplaceAliasRule(),
        ParallelCallableRule(),
        ParallelChunkStateRule(),
        ExceptSwallowRule(),
        WallClockDeadlineRule(),
        KernelContractRule(),
        BatchableParityRule(),
        FullMatrixInChunkLoopRule(),
        ArtifactWriteRule(),
    ]


def lint_modules(
    src_modules: "list[SourceModule]",
    test_modules: "list[SourceModule] | None" = None,
    rules: "list[LintRule] | None" = None,
) -> "list[Finding]":
    """Run rules over already-parsed modules; suppressions applied."""
    ctx = LintContext(src_modules, test_modules)
    if rules is None:
        rules = default_rules()

    findings: "list[Finding]" = []
    for module in ctx.src_modules:
        if module.parse_error is not None:
            findings.append(module.parse_error)
            continue
        for rule in rules:
            findings.extend(rule.check_module(module, ctx))
    for rule in rules:
        findings.extend(rule.check_project(ctx))

    suppressions = {m.path: m.suppressions for m in ctx.src_modules}
    return sorted(apply_suppressions(findings, suppressions))


def run_lint(
    src_root: "Path | str",
    tests_root: "Path | str | None" = None,
    rules: "list[LintRule] | None" = None,
    repo_root: "Path | str | None" = None,
) -> "list[Finding]":
    """Lint every python file under ``src_root``.

    ``tests_root`` supplies the test corpus for the kernel-parity
    cross-checks; test files themselves are not linted. Paths in
    findings are reported relative to ``repo_root`` when given.
    """
    src_root = Path(src_root)
    root = Path(repo_root) if repo_root is not None else None
    src_modules = [SourceModule.from_file(p, root) for p in iter_python_files(src_root)]
    test_modules: "list[SourceModule]" = []
    if tests_root is not None:
        tests_root = Path(tests_root)
        if tests_root.is_dir():
            test_modules = [
                SourceModule.from_file(p, root) for p in iter_python_files(tests_root)
            ]
    return lint_modules(src_modules, test_modules, rules)
