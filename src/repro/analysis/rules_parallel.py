"""Parallel-safety lint rules.

``repro.parallel.parallel_map`` ships work to processes; its payloads
must be picklable and side-effect-free or the failure shows up miles
from the cause (a hung pool, a silently stale registry in a worker).

* ``parallel-callable`` — the callable handed to ``parallel_map`` must
  be a module-level function: lambdas and nested functions are not
  picklable by reference, and a closure smuggles captured state into
  the worker where mutations are lost.
* ``parallel-chunk-state`` — worker payloads (functions named
  ``_*_chunk`` by convention) must be module-level and must not touch
  process-global state: no ``global``/``nonlocal``, no operator/kernel
  registry mutation. A registry write inside a worker only happens in
  that worker's process and desynchronises it from the parent.
"""

from __future__ import annotations

import ast
import re

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule
from .scopes import call_name, dotted_name

_CHUNK_NAME_RE = re.compile(r"^_\w*_chunk$")

#: Names whose mutation inside a worker desynchronises processes.
REGISTRY_NAMES = frozenset(
    {
        "OPERATOR_REGISTRY",
        "KERNEL_REGISTRY",
        "ORACLE_REGISTRY",
        "EXEMPT_REGISTRY",
        "INPLACE_MUTATORS",
    }
)

REGISTRY_MUTATING_CALLS = frozenset({"register_operator"})


def _collect_def_levels(tree: ast.Module) -> "tuple[set[str], set[str]]":
    """Function names defined at module/class level vs nested in functions."""
    module_level: "set[str]" = set()
    nested: "set[str]" = set()

    def visit(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                (nested if in_function else module_level).add(child.name)
                visit(child, True)
            else:
                visit(child, in_function)

    visit(tree, False)
    return module_level, nested


class ParallelCallableRule(LintRule):
    rule_id = "parallel-callable"

    def check_module(self, module: SourceModule, ctx: LintContext):
        _, nested = _collect_def_levels(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and call_name(node) == "parallel_map"):
                continue
            if not node.args:
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield Finding(
                    path=module.path,
                    line=fn_arg.lineno,
                    rule=self.rule_id,
                    message=(
                        "lambda passed to parallel_map: lambdas are not picklable "
                        "by reference — hoist the payload to a module-level "
                        "function"
                    ),
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested:
                yield Finding(
                    path=module.path,
                    line=fn_arg.lineno,
                    rule=self.rule_id,
                    message=(
                        f"nested function '{fn_arg.id}' passed to parallel_map: "
                        "closures are not picklable and captured state diverges "
                        "per worker — hoist it to module level and pass state "
                        "explicitly"
                    ),
                )


class ParallelChunkStateRule(LintRule):
    rule_id = "parallel-chunk-state"

    def check_module(self, module: SourceModule, ctx: LintContext):
        findings: "list[Finding]" = []

        def visit(node: ast.AST, in_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _CHUNK_NAME_RE.match(child.name):
                        if in_function:
                            findings.append(
                                Finding(
                                    path=module.path,
                                    line=child.lineno,
                                    rule=self.rule_id,
                                    message=(
                                        f"worker payload '{child.name}' is nested "
                                        "inside a function: payloads must be "
                                        "module-level to pickle and to keep their "
                                        "state explicit"
                                    ),
                                )
                            )
                        findings.extend(self._check_body(child, module))
                    visit(child, True)
                else:
                    visit(child, in_function)

        visit(module.tree, False)
        return findings

    def _check_body(self, fn, module: SourceModule) -> "list[Finding]":
        out: "list[Finding]" = []
        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                out.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        rule=self.rule_id,
                        message=(
                            f"worker payload '{fn.name}' uses "
                            f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                            ": mutations happen in the worker process only and are "
                            "lost — return results instead"
                        ),
                    )
                )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in REGISTRY_MUTATING_CALLS:
                    out.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            rule=self.rule_id,
                            message=(
                                f"worker payload '{fn.name}' calls '{name}': "
                                "registry mutation inside a worker only affects "
                                "that process and desynchronises it from the "
                                "parent — register at import time"
                            ),
                        )
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = target.value if isinstance(target, ast.Subscript) else target
                    name = dotted_name(base)
                    root = name.split(".")[0] if name else None
                    if root in REGISTRY_NAMES:
                        out.append(
                            Finding(
                                path=module.path,
                                line=node.lineno,
                                rule=self.rule_id,
                                message=(
                                    f"worker payload '{fn.name}' writes to "
                                    f"registry '{root}': the write happens in the "
                                    "worker process only — registries are "
                                    "import-time state"
                                ),
                            )
                        )
        return out
