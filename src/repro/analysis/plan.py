"""Static validation of saved feature-generation plans (Ψ).

A fitted :class:`~repro.core.transform.FeatureTransformer` is persisted
as JSON and later loaded in a serving process. A corrupted or
hand-edited artifact should be rejected *before* it ever touches data:
this module abstractly interprets the raw payload — no operator is
applied, no matrix is evaluated — and reports structural defects
(unknown operator, wrong arity, missing fitted state) plus numerical
ones (features whose abstract domain admits NaN/±inf, degenerate
subtrees such as ``x - x``).

The abstract domain per subtree is an interval with taint flags,
``(lo, hi, may_nan, may_inf)``. Transfer functions come from the
operator catalogue's class annotations (``abstract_bounds``,
``introduces_nan``/``introduces_inf``, ``absorbs_nan``/``absorbs_inf``)
or a per-operator :meth:`~repro.operators.base.Operator.abstract_transfer`
override, so the validator stays correct as the catalogue grows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import OperatorError
from ..operators.base import Operator, get_operator

_INF = float("inf")


@dataclass(frozen=True)
class Domain:
    """Abstract value of a subtree: interval bounds plus taint flags."""

    lo: float = -_INF
    hi: float = _INF
    may_nan: bool = True
    may_inf: bool = True

    def render(self) -> str:
        taints = [t for t, on in (("nan", self.may_nan), ("inf", self.may_inf)) if on]
        tag = f" may={'|'.join(taints)}" if taints else " clean"
        return f"[{self.lo:g}, {self.hi:g}]{tag}"


#: Domain of an original input column: unknown real data may hold anything.
VAR_DOMAIN = Domain()


@dataclass(frozen=True)
class PlanIssue:
    """One defect found in a plan payload.

    ``path`` locates the node in the payload, e.g.
    ``expressions[3].children[0]``; ``code`` is a stable kebab-case id.
    """

    path: str
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}: [{self.code}] {self.severity}: {self.message}"


@dataclass(frozen=True)
class PlanReport:
    """Validation outcome: issues plus the inferred per-feature domains."""

    issues: tuple[PlanIssue, ...]
    n_expressions: int = 0
    feature_domains: tuple[Domain, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    def render(self) -> str:
        lines = [i.render() for i in self.issues]
        verdict = "OK" if self.ok else "REJECTED"
        lines.append(
            f"plan {verdict}: {self.n_expressions} expressions, "
            f"{sum(i.severity == 'error' for i in self.issues)} errors, "
            f"{sum(i.severity == 'warning' for i in self.issues)} warnings"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "n_expressions": self.n_expressions,
                "issues": [
                    {
                        "path": i.path,
                        "code": i.code,
                        "severity": i.severity,
                        "message": i.message,
                    }
                    for i in self.issues
                ],
                "feature_domains": [
                    {
                        "lo": d.lo,
                        "hi": d.hi,
                        "may_nan": d.may_nan,
                        "may_inf": d.may_inf,
                    }
                    for d in self.feature_domains
                ],
            },
            indent=2,
        )


def _generic_transfer(op: Operator, children: "list[Domain]") -> Domain:
    """Transfer driven purely by the operator's class annotations."""
    lo, hi = op.abstract_bounds if op.abstract_bounds is not None else (-_INF, _INF)
    may_nan = op.introduces_nan or (
        not op.absorbs_nan and any(c.may_nan for c in children)
    )
    bounded = lo > -_INF and hi < _INF
    may_inf = (
        False
        if bounded
        else op.introduces_inf
        or (not op.absorbs_inf and any(c.may_inf for c in children))
    )
    return Domain(lo, hi, may_nan, may_inf)


def _transfer(op: Operator, children: "list[Domain]", state) -> Domain:
    custom = op.abstract_transfer(
        tuple((c.lo, c.hi, c.may_nan, c.may_inf) for c in children), state
    )
    if custom is not None:
        return Domain(*custom)
    return _generic_transfer(op, children)


class _PayloadChecker:
    def __init__(self, width: "int | None"):
        self.width = width
        self.issues: "list[PlanIssue]" = []

    def error(self, path: str, code: str, message: str) -> None:
        self.issues.append(PlanIssue(path, code, message))

    def warn(self, path: str, code: str, message: str) -> None:
        self.issues.append(PlanIssue(path, code, message, severity="warning"))

    # ------------------------------------------------------------------
    def check_node(self, node, path: str) -> Domain:
        """Validate one expression payload node, returning its domain."""
        if not isinstance(node, dict):
            self.error(path, "bad-node", f"expected an object, got {type(node).__name__}")
            return VAR_DOMAIN
        kind = node.get("type")
        if kind == "var":
            return self._check_var(node, path)
        if kind == "apply":
            return self._check_apply(node, path)
        self.error(
            path,
            "unknown-node-type",
            f"node type must be 'var' or 'apply', got {kind!r}",
        )
        return VAR_DOMAIN

    def _check_var(self, node: dict, path: str) -> Domain:
        index = node.get("index")
        if not isinstance(index, int) or isinstance(index, bool):
            self.error(path, "bad-var-index", f"var index must be an integer, got {index!r}")
            return VAR_DOMAIN
        if self.width is not None and not 0 <= index < self.width:
            self.error(
                path,
                "var-out-of-range",
                f"var references column {index}, but the plan's schema has "
                f"{self.width} columns (original_names)",
            )
        return VAR_DOMAIN

    def _check_apply(self, node: dict, path: str) -> Domain:
        name = node.get("op")
        children = node.get("children")
        if not isinstance(children, list):
            self.error(path, "bad-node", "'apply' node has no children list")
            children = []
        child_domains = [
            self.check_node(child, f"{path}.children[{i}]")
            for i, child in enumerate(children)
        ]
        try:
            op = get_operator(name) if isinstance(name, str) else None
        except OperatorError:
            op = None
        if op is None:
            self.error(
                path,
                "unknown-operator",
                f"operator {name!r} is not in the registry — the serving "
                "process cannot evaluate this plan (was it saved from a build "
                "with extension operators loaded?)",
            )
            return VAR_DOMAIN
        if len(children) != op.arity:
            self.error(
                path,
                "arity-mismatch",
                f"operator {op.name!r} takes {op.arity} children, payload has "
                f"{len(children)}",
            )
            return VAR_DOMAIN
        state = node.get("state")
        self._check_state(op, state, path)
        self._check_degenerate(op, children, path)
        return _transfer(op, child_domains, state if isinstance(state, dict) else None)

    def _check_state(self, op: Operator, state, path: str) -> None:
        if op.is_stateful:
            if not isinstance(state, dict):
                self.error(
                    path,
                    "missing-state",
                    f"stateful operator {op.name!r} requires a fitted state "
                    f"dict, payload has {state!r} — refit before saving",
                )
                return
            missing = [k for k in op.state_schema if k not in state]
            if missing:
                self.error(
                    path,
                    "state-schema",
                    f"fitted state for {op.name!r} is missing keys {missing} "
                    f"(schema: {list(op.state_schema)})",
                )
        elif state:
            self.warn(
                path,
                "unexpected-state",
                f"stateless operator {op.name!r} carries state {state!r}; it "
                "will be ignored at serve time",
            )

    def _check_degenerate(self, op: Operator, children: list, path: str) -> None:
        if not op.degenerate_on_equal_children or len(children) < 2:
            return
        try:
            canon = {json.dumps(c, sort_keys=True) for c in children}
        except TypeError:
            return  # malformed children already reported
        if len(canon) == 1:
            self.warn(
                path,
                "degenerate-subtree",
                f"all children of {op.name!r} are the identical expression; "
                "the subtree collapses to a constant or its own child",
            )


def validate_payload(payload) -> PlanReport:
    """Validate a raw ``FeatureTransformer.to_dict()`` payload.

    Works on plain dicts so corrupted artifacts produce issue lists
    instead of exceptions, and never evaluates any data.
    """
    if not isinstance(payload, dict):
        return PlanReport(
            issues=(
                PlanIssue(
                    "$", "bad-payload", f"expected an object, got {type(payload).__name__}"
                ),
            )
        )
    checker = _PayloadChecker(width=None)

    names = payload.get("original_names")
    if not isinstance(names, list) or not all(isinstance(n, str) for n in names):
        checker.error(
            "original_names",
            "bad-schema",
            "original_names must be a list of column-name strings",
        )
    else:
        checker.width = len(names)

    expressions = payload.get("expressions")
    domains: "list[Domain]" = []
    if not isinstance(expressions, list):
        checker.error("expressions", "bad-schema", "expressions must be a list")
    elif not expressions:
        checker.error("expressions", "empty-plan", "a plan must generate at least one feature")
    else:
        seen: "dict[str, int]" = {}
        for i, node in enumerate(expressions):
            path = f"expressions[{i}]"
            domains.append(checker.check_node(node, path))
            try:
                canon = json.dumps(node, sort_keys=True)
            except TypeError:
                continue
            if canon in seen:
                checker.warn(
                    path,
                    "duplicate-feature",
                    f"identical to expressions[{seen[canon]}]; redundant output column",
                )
            else:
                seen[canon] = i

    checker.issues.sort(key=lambda i: (i.severity != "error", i.path))
    return PlanReport(
        issues=tuple(checker.issues),
        n_expressions=len(expressions) if isinstance(expressions, list) else 0,
        feature_domains=tuple(domains),
    )


def validate_plan(path: "str | Path") -> PlanReport:
    """Load a saved plan file and validate its payload statically."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return PlanReport(issues=(PlanIssue("$", "unreadable", str(exc)),))
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return PlanReport(
            issues=(PlanIssue("$", "bad-json", f"not valid JSON: {exc}"),)
        )
    return validate_payload(payload)
