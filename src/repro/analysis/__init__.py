"""Static analysis for the repro codebase: lint rules + plan validator.

Two halves (see ISSUE 6 / ROADMAP):

* the **AST lint framework** (`run_lint`, exposed as
  ``python -m repro lint``) — codebase-specific rules enforcing the
  kernel contract, float hygiene, aliasing declarations, and
  parallel-safety;
* the **plan validator** (`validate_plan`, ``python -m repro
  validate-plan``) — abstract interpretation over saved ``Expression``
  forests so a fitted Ψ artifact can be rejected before it ever touches
  data.

The contract decorators (`batched_kernel`, `kernel_oracle`,
`kernel_exempt`, `inplace_mutator`) live in
:mod:`repro.analysis.registry`, which imports nothing from the rest of
the package — kernel modules import it freely. This ``__init__`` keeps
the plan validator lazy for the same reason: it depends on
:mod:`repro.operators`, whose modules import the registry, and an eager
import here would close that cycle.
"""

from __future__ import annotations

from .findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    render_findings,
)
from .linter import (
    LintContext,
    LintRule,
    SourceModule,
    default_rules,
    lint_modules,
    run_lint,
)
from .registry import (
    EXEMPT_REGISTRY,
    INPLACE_MUTATORS,
    KERNEL_REGISTRY,
    MERGEABLE_REGISTRY,
    ORACLE_REGISTRY,
    KernelContract,
    MergeContract,
    batched_kernel,
    chunk_mergeable,
    inplace_mutator,
    kernel_exempt,
    kernel_oracle,
)

_LAZY = {
    "validate_plan",
    "validate_payload",
    "PlanIssue",
    "PlanReport",
    "Domain",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Finding",
    "render_findings",
    "LintContext",
    "LintRule",
    "SourceModule",
    "default_rules",
    "lint_modules",
    "run_lint",
    "EXEMPT_REGISTRY",
    "INPLACE_MUTATORS",
    "KERNEL_REGISTRY",
    "MERGEABLE_REGISTRY",
    "ORACLE_REGISTRY",
    "KernelContract",
    "MergeContract",
    "batched_kernel",
    "chunk_mergeable",
    "inplace_mutator",
    "kernel_exempt",
    "kernel_oracle",
    "validate_plan",
    "validate_payload",
    "PlanIssue",
    "PlanReport",
    "Domain",
]
