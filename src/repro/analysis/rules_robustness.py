"""Robustness lint rules.

The fault-tolerant runtime (``repro.runtime``) works because every
swallowed exception is *accounted for*: quarantined expressions land on
the :class:`~repro.runtime.RuntimeReport`, skipped checkpoints carry
their reasons, retries warn before falling back. A handler that
silently eats everything defeats all of that — the fault vanishes and
the first symptom is a wrong number three stages later.

* ``except-swallow`` — flags two shapes:

  - a bare ``except:`` (any body) — it also catches
    ``KeyboardInterrupt``/``SystemExit``, so even a well-meaning handler
    turns Ctrl-C into silence;
  - ``except Exception:`` / ``except BaseException:`` (alone or inside a
    tuple) whose body is inert — only ``pass``, ``...`` or ``continue``
    — i.e. the fault is dropped without being recorded, transformed, or
    re-raised.

  Handlers that do real work with a broad catch (quarantine, degraded
  serving) are allowed; genuinely intentional swallows must carry a
  ``# repro: ignore[except-swallow] <why>`` audit comment on the
  ``except`` line.

* ``wallclock-deadline`` — flags ``time.time()`` used where a deadline,
  timeout, or cooldown is being computed or compared. Wall clock jumps —
  NTP steps it backwards and slews it — so a deadline measured on it can
  fire immediately, or never. The serving runtime's deadline budgets and
  circuit-breaker cooldowns (``repro.serving``) are monotonic-clock by
  contract; this rule keeps every future timeout on ``time.monotonic()``
  too. ``time.time()`` for timestamps/logging is fine and not flagged —
  only call sites whose surrounding statement (or enclosing function
  name) mentions a deadline-ish identifier (deadline, timeout, expiry,
  cooldown, budget, ...) are findings.
"""

from __future__ import annotations

import ast
import re

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule

#: Exception names considered "catches everything".
BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler_type: "ast.expr | None") -> bool:
    """Whether the handler's type expression catches every Exception."""
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in BROAD_EXCEPTION_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _is_inert(body: "list[ast.stmt]") -> bool:
    """Whether the handler body drops the fault without a trace."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


class ExceptSwallowRule(LintRule):
    rule_id = "except-swallow"

    def check_module(self, module: SourceModule, ctx: LintContext):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        "bare 'except:' also catches KeyboardInterrupt and "
                        "SystemExit — catch Exception (or something "
                        "narrower) explicitly"
                    ),
                )
            elif _is_broad(node.type) and _is_inert(node.body):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        "broad except with an inert body silently swallows "
                        "the fault — record it (quarantine/report/log), "
                        "narrow the exception type, or suppress with an "
                        "audit comment"
                    ),
                )


#: Identifiers that mark a statement as deadline/timeout arithmetic.
_DEADLINE_NAME_RE = re.compile(
    r"(?i)deadline|timeout|time_limit|expir|cooldown|budget|due|ttl"
)


def _is_wallclock_call(node: ast.AST, bare_time_imported: bool) -> bool:
    """Whether ``node`` is a ``time.time()`` (or bare imported ``time()``)
    call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return True
    return (
        bare_time_imported
        and isinstance(func, ast.Name)
        and func.id == "time"
    )


def _expr_children(stmt: ast.stmt):
    """The statement's *own* expressions (not nested statements) — a
    compound statement is judged by its header (``while <test>:``), not
    by identifiers that happen to appear in its body."""
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


def _identifiers(exprs) -> "set[str]":
    names: "set[str]" = set()
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg:
                names.add(node.arg)
    return names


def _statements_with_scope(tree: ast.Module):
    """Yield ``(stmt, enclosing_function_name)`` pairs, innermost scope."""

    def visit(node: ast.AST, scope: str):
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                child_scope = getattr(child, "name", scope)
            if isinstance(child, ast.stmt):
                yield child, child_scope
            yield from visit(child, child_scope)

    yield from visit(tree, "")


class WallClockDeadlineRule(LintRule):
    """``time.time()`` in deadline/timeout arithmetic must be monotonic."""

    rule_id = "wallclock-deadline"

    def check_module(self, module: SourceModule, ctx: LintContext):
        if module.tree is None:
            return
        bare_time_imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "time" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for stmt, scope in _statements_with_scope(module.tree):
            exprs = list(_expr_children(stmt))
            calls = [
                node
                for expr in exprs
                for node in ast.walk(expr)
                if _is_wallclock_call(node, bare_time_imported)
            ]
            if not calls:
                continue
            names = _identifiers(exprs) - {"time"}
            deadline_context = _DEADLINE_NAME_RE.search(scope) or any(
                _DEADLINE_NAME_RE.search(name) for name in names
            )
            if not deadline_context:
                continue
            for call in calls:
                yield Finding(
                    path=module.path,
                    line=call.lineno,
                    rule=self.rule_id,
                    message=(
                        "wall-clock time.time() used for a deadline/timeout "
                        "— NTP steps make it jump, firing budgets early or "
                        "never; use time.monotonic() for elapsed-time "
                        "arithmetic"
                    ),
                )
