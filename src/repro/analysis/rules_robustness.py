"""Robustness lint rules.

The fault-tolerant runtime (``repro.runtime``) works because every
swallowed exception is *accounted for*: quarantined expressions land on
the :class:`~repro.runtime.RuntimeReport`, skipped checkpoints carry
their reasons, retries warn before falling back. A handler that
silently eats everything defeats all of that — the fault vanishes and
the first symptom is a wrong number three stages later.

* ``except-swallow`` — flags two shapes:

  - a bare ``except:`` (any body) — it also catches
    ``KeyboardInterrupt``/``SystemExit``, so even a well-meaning handler
    turns Ctrl-C into silence;
  - ``except Exception:`` / ``except BaseException:`` (alone or inside a
    tuple) whose body is inert — only ``pass``, ``...`` or ``continue``
    — i.e. the fault is dropped without being recorded, transformed, or
    re-raised.

  Handlers that do real work with a broad catch (quarantine, degraded
  serving) are allowed; genuinely intentional swallows must carry a
  ``# repro: ignore[except-swallow] <why>`` audit comment on the
  ``except`` line.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule

#: Exception names considered "catches everything".
BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler_type: "ast.expr | None") -> bool:
    """Whether the handler's type expression catches every Exception."""
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in BROAD_EXCEPTION_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _is_inert(body: "list[ast.stmt]") -> bool:
    """Whether the handler body drops the fault without a trace."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


class ExceptSwallowRule(LintRule):
    rule_id = "except-swallow"

    def check_module(self, module: SourceModule, ctx: LintContext):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        "bare 'except:' also catches KeyboardInterrupt and "
                        "SystemExit — catch Exception (or something "
                        "narrower) explicitly"
                    ),
                )
            elif _is_broad(node.type) and _is_inert(node.body):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    rule=self.rule_id,
                    message=(
                        "broad except with an inert body silently swallows "
                        "the fault — record it (quarantine/report/log), "
                        "narrow the exception type, or suppress with an "
                        "audit comment"
                    ),
                )
