"""Artifact-durability lint rule.

The durability contract (CONTRIBUTING.md) says every durable artifact —
plans, checkpoints, manifests, reports, ``.npy`` exports — is published
atomically: write a hidden temp file, flush, then ``os.replace`` it into
place, so a crash mid-write leaves either the previous artifact or
nothing, never a torn file that parses. :func:`repro.utils.atomic_path`
and :func:`repro.utils.atomic_write` package the idiom.

* ``non-atomic-artifact-write`` — flags writes that produce a durable
  file directly at its final path:

  - ``np.save`` / ``np.savez`` / ``np.savez_compressed`` calls;
  - ``open(path, mode)`` with a literal write mode (``w``/``a``/``x``);
  - ``Path.write_text`` / ``Path.write_bytes`` calls.

  A write is exempt when its enclosing function (or the module top
  level, for module-scope writes) also calls ``os.replace`` or any
  callable whose name contains ``atomic`` — the temp-then-rename
  publication is then assumed to be what the write feeds. Scratch
  memmaps (``open_memmap``) are not artifacts and are not flagged.
  Intentional non-atomic writes (append-only logs, best-effort debug
  dumps) must carry a ``# repro: ignore[non-atomic-artifact-write]``
  audit comment.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule

#: numpy array writers that produce durable files.
_NP_WRITERS = frozenset({"save", "savez", "savez_compressed"})

#: Path methods that replace a file's whole contents in place.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})


def _call_name(func: ast.expr) -> "str | None":
    """The called name: ``os.replace`` -> ``replace``, ``open`` -> ``open``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _literal_write_mode(call: ast.Call) -> bool:
    """Whether an ``open()`` call's literal mode string writes."""
    mode: "ast.expr | None" = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return any(ch in mode.value for ch in "wax")


def _artifact_write(node: ast.AST) -> "str | None":
    """A human label for the write this call performs, or None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _NP_WRITERS
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return f"np.{func.attr}"
    if isinstance(func, ast.Name) and func.id == "open":
        if _literal_write_mode(node):
            return "open(..., write mode)"
        return None
    if isinstance(func, ast.Attribute) and func.attr in _PATH_WRITERS:
        return f".{func.attr}"
    return None


def _scope_nodes(root: ast.AST):
    """Yield ``(scope, nodes)`` per function scope (and the module top
    level), with nested function bodies assigned to their own scope."""
    scopes: "list[tuple[ast.AST, list[ast.AST]]]" = []

    def descend(node: ast.AST, bucket: "list[ast.AST]") -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner: "list[ast.AST]" = []
                scopes.append((child, inner))
                descend(child, inner)
            else:
                bucket.append(child)
                descend(child, bucket)

    top: "list[ast.AST]" = []
    scopes.append((root, top))
    descend(root, top)
    return scopes


class ArtifactWriteRule(LintRule):
    rule_id = "non-atomic-artifact-write"

    def check_module(self, module: SourceModule, ctx: LintContext):
        for _scope, nodes in _scope_nodes(module.tree):
            atomic = False
            writes: "list[tuple[int, str]]" = []
            for node in nodes:
                if isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    if name is not None and (
                        "atomic" in name or name == "replace"
                    ):
                        atomic = True
                label = _artifact_write(node)
                if label is not None:
                    writes.append((node.lineno, label))
            if atomic:
                continue
            for lineno, label in writes:
                yield Finding(
                    path=module.path,
                    line=lineno,
                    rule=self.rule_id,
                    message=(
                        f"{label} publishes a durable artifact without "
                        "atomic temp-file + os.replace publication — a "
                        "crash mid-write leaves a torn file; use "
                        "repro.utils.atomic_write/atomic_path or suppress "
                        "with an audit comment"
                    ),
                )
