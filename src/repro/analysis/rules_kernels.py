"""Kernel-contract lint rules: the registry cross-checked against tests.

These are project-level rules — they join declarations in the source
tree against the *test corpus* ASTs (tests are never linted themselves,
they are evidence):

* ``kernel-oracle`` — every ``@batched_kernel`` must declare
  ``oracle="<scalar reference>"`` and that reference must exist and be
  marked ``@kernel_oracle`` somewhere in the source tree. A kernel
  without an audited scalar twin has no ground truth.
* ``kernel-parity`` — for every kernel/oracle pair, some test module
  must mention *both* names. Co-occurrence is a deliberately weak
  proxy (it cannot prove the test asserts equality) but it is immune
  to test-style churn and catches the real failure mode: a kernel
  added with no parity test at all.
* ``batchable-parity`` — every operator class declaring
  ``batchable = True`` must be referenced by a registration module
  (one that calls ``register_operator``) so the generic
  ``(n, m)``-block parity sweep in the test suite actually reaches it;
  and that sweep (a test using ``available_operators`` and
  ``batchable``) must exist.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule
from .scopes import dotted_name, iter_function_defs


def _decorator_info(fn) -> "dict[str, ast.expr | None]":
    """Map of decorator base-name -> Call node (or None for bare names)."""
    out: "dict[str, ast.expr | None]" = {}
    for dec in fn.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(node)
        if name:
            out[name.split(".")[-1]] = dec if isinstance(dec, ast.Call) else None
    return out


def _oracle_from_decorator(dec: "ast.expr | None") -> "str | None":
    if not isinstance(dec, ast.Call):
        return None
    for kw in dec.keywords:
        if kw.arg == "oracle" and isinstance(kw.value, ast.Constant):
            value = kw.value.value
            return value if isinstance(value, str) and value else None
    if dec.args and isinstance(dec.args[0], ast.Constant):
        value = dec.args[0].value
        return value if isinstance(value, str) and value else None
    return None


def _module_identifiers(module: SourceModule) -> "set[str]":
    """Every bare identifier a module mentions: names, attrs, def names."""
    out: "set[str]" = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(node.name)
    return out


class KernelContractRule(LintRule):
    rule_id = "kernel-oracle"

    def check_project(self, ctx: LintContext):
        kernels: "list[tuple[SourceModule, ast.AST, str | None]]" = []
        oracle_names: "set[str]" = set()
        for module in ctx.src_modules:
            if module.tree is None:
                continue
            for fn in iter_function_defs(module.tree):
                decs = _decorator_info(fn)
                if "kernel_oracle" in decs:
                    oracle_names.add(fn.name)
                if "batched_kernel" in decs:
                    kernels.append(
                        (module, fn, _oracle_from_decorator(decs["batched_kernel"]))
                    )

        test_ids = [_module_identifiers(m) for m in ctx.test_modules if m.tree]

        for module, fn, oracle in kernels:
            if oracle is None:
                yield Finding(
                    path=module.path,
                    line=fn.lineno,
                    rule="kernel-oracle",
                    message=(
                        f"batched kernel '{fn.name}' declares no oracle: every "
                        "kernel needs @batched_kernel(oracle=\"<scalar reference>\") "
                        "naming the audited implementation it must match"
                    ),
                )
                continue
            if oracle not in oracle_names:
                yield Finding(
                    path=module.path,
                    line=fn.lineno,
                    rule="kernel-oracle",
                    message=(
                        f"kernel '{fn.name}' declares oracle '{oracle}' but no "
                        "function of that name is marked @kernel_oracle in the "
                        "source tree"
                    ),
                )
                continue
            if not any(fn.name in ids and oracle in ids for ids in test_ids):
                yield Finding(
                    path=module.path,
                    line=fn.lineno,
                    rule="kernel-parity",
                    message=(
                        f"kernel '{fn.name}' has no parity test: no test module "
                        f"mentions both '{fn.name}' and its oracle '{oracle}' — "
                        "add a test comparing the two on shared inputs"
                    ),
                )


def _batchable_classes(module: SourceModule) -> "list[ast.ClassDef]":
    out: "list[ast.ClassDef]" = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "batchable"
                    for t in stmt.targets
                )
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is True
            ):
                out.append(node)
                break
    return out


class BatchableParityRule(LintRule):
    rule_id = "batchable-parity"

    def check_project(self, ctx: LintContext):
        registered: "set[str]" = set()
        batchable: "list[tuple[SourceModule, ast.ClassDef]]" = []
        for module in ctx.src_modules:
            if module.tree is None:
                continue
            batchable.extend((module, cls) for cls in _batchable_classes(module))
            calls_register = any(
                isinstance(node, ast.Name) and node.id == "register_operator"
                for node in ast.walk(module.tree)
            )
            if calls_register:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Name) and not isinstance(
                        node.ctx, ast.Store
                    ):
                        registered.add(node.id)

        sweep_exists = any(
            m.tree
            and {"available_operators", "batchable"} <= _module_identifiers(m)
            for m in ctx.test_modules
        )

        for module, cls in batchable:
            if cls.name not in registered:
                yield Finding(
                    path=module.path,
                    line=cls.lineno,
                    rule=self.rule_id,
                    message=(
                        f"batchable operator '{cls.name}' is never passed to "
                        "register_operator: the (n, m)-block parity sweep only "
                        "covers registered operators, so its batch contract is "
                        "untested"
                    ),
                )
            elif not sweep_exists:
                yield Finding(
                    path=module.path,
                    line=cls.lineno,
                    rule=self.rule_id,
                    message=(
                        f"batchable operator '{cls.name}' has no parity sweep: no "
                        "test module iterates available_operators() checking the "
                        "batchable block contract"
                    ),
                )
