"""Float-hazard lint rules.

Five rules over the numerical code:

* ``float-eq`` — ``==`` / ``!=`` where an operand is visibly
  float-valued (float literal, division, or a float-producing call).
  Rounding makes exact float equality order-dependent; compare with a
  tolerance or restructure. Integer-zero sentinel checks on arrays
  (``std[std == 0] = 1.0``) are deliberately *not* flagged — comparing
  to the exact value just stored is well-defined.
* ``log-guard`` — ``np.log`` family on an argument with no in-function
  guard evidence (``log(0) = -inf``, ``log(<0) = nan``).
* ``div-guard`` — true division by an unguarded denominator.
* ``float32-cast`` — any float32 dtype mention; the kernel contract is
  float64 end-to-end, and a silent downcast breaks oracle parity at the
  7th digit.
* ``empty-fill`` — ``np.empty`` whose target is never provably filled
  (subscript store, ``.fill``, or ``out=``) in the same function;
  reading uninitialised memory is nondeterministic.

Guard evidence and ``np.errstate`` escape hatches come from
:class:`~repro.analysis.scopes.FunctionScope`; see that module for the
exact heuristics.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule
from .scopes import FunctionScope, call_name, dotted_name

LOG_CALLS = frozenset({"log", "log2", "log10"})

#: Calls that produce float values (for float-equality evidence).
FLOAT_PRODUCERS = frozenset(
    {
        "mean",
        "nanmean",
        "std",
        "nanstd",
        "var",
        "nanvar",
        "log",
        "log2",
        "log10",
        "log1p",
        "exp",
        "sqrt",
        "float",
        "divide",
        "true_divide",
    }
)


def scoped_nodes(tree: ast.AST) -> "list[tuple[ast.AST, ast.AST]]":
    """Every node paired with its innermost enclosing scope node.

    The module itself is the outermost scope; lambdas share their
    enclosing function's scope (their guard evidence is collected there).
    """
    out: "list[tuple[ast.AST, ast.AST]]" = []

    def visit(node: ast.AST, scope_node: ast.AST) -> None:
        out.append((node, scope_node))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child)
            else:
                visit(child, scope_node)

    visit(tree, tree)
    return out


class _ScopedRule(LintRule):
    """Shared scaffolding: iterate nodes with a cached FunctionScope."""

    def check_module(self, module: SourceModule, ctx: LintContext):
        # Module-level nonzero numeric constants (`_RIDGE_ALPHA = 1.0`)
        # count as guards in every function of the module.
        module_consts = {
            target.id
            for stmt in module.tree.body
            if isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, (int, float))
            and stmt.value.value
            for target in stmt.targets
            if isinstance(target, ast.Name)
        }
        scopes: "dict[int, FunctionScope]" = {}
        findings: "list[Finding]" = []
        for node, scope_node in scoped_nodes(module.tree):
            key = id(scope_node)
            if key not in scopes:
                scopes[key] = FunctionScope(scope_node, module_consts)
            findings.extend(self.check_node(node, scopes[key], module))
        return findings

    def check_node(self, node: ast.AST, scope: FunctionScope, module: SourceModule):
        return ()


def _float_evidence(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if isinstance(sub, ast.Call) and call_name(sub) in FLOAT_PRODUCERS:
            return True
    return False


class FloatEqualityRule(_ScopedRule):
    rule_id = "float-eq"

    def check_node(self, node, scope, module):
        if not isinstance(node, ast.Compare):
            return
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_float_evidence(operand) for operand in operands):
            yield Finding(
                path=module.path,
                line=node.lineno,
                rule=self.rule_id,
                message=(
                    "exact equality on a float-valued expression; rounding makes "
                    "this order-dependent — compare with a tolerance "
                    "(abs(a - b) <= tol) or restructure"
                ),
            )


class GuardedLogRule(_ScopedRule):
    rule_id = "log-guard"

    def check_node(self, node, scope, module):
        if not (isinstance(node, ast.Call) and call_name(node) in LOG_CALLS):
            return
        if not node.args:
            return
        if scope.in_errstate(node.lineno):
            return
        arg = node.args[0]
        if scope.is_guarded(arg):
            return
        yield Finding(
            path=module.path,
            line=node.lineno,
            rule=self.rule_id,
            message=(
                "np.log on an unguarded argument: log(0) is -inf and log(<0) is "
                "nan — floor the argument (np.maximum(x, eps)), branch on it, or "
                "wrap the site in np.errstate with explicit post-handling"
            ),
        )


class GuardedDivisionRule(_ScopedRule):
    rule_id = "div-guard"

    def check_node(self, node, scope, module):
        denom = None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            denom = node.right
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            denom = node.value
        if denom is None:
            return
        # `Path(...) / "name"` overloads Div for joining; a string literal
        # denominator can never be numeric division.
        if isinstance(denom, ast.Constant) and isinstance(denom.value, str):
            return
        if scope.in_errstate(node.lineno):
            return
        if scope.is_guarded(denom):
            return
        yield Finding(
            path=module.path,
            line=node.lineno,
            rule=self.rule_id,
            message=(
                "division by an unguarded denominator: 0 yields inf/nan that "
                "propagates silently — guard the denominator, floor it, or use "
                "np.errstate with explicit post-handling"
            ),
        )


class Float32CastRule(_ScopedRule):
    rule_id = "float32-cast"

    def check_node(self, node, scope, module):
        hit = False
        if isinstance(node, ast.Attribute) and node.attr == "float32":  # repro: ignore[float32-cast] the rule's own detection pattern
            hit = True
        elif isinstance(node, ast.Constant) and node.value == "float32":  # repro: ignore[float32-cast] the rule's own detection pattern
            hit = True
        if hit:
            yield Finding(
                path=module.path,
                line=node.lineno,
                rule=self.rule_id,
                message=(
                    "float32 downcast: the kernel contract is float64 end-to-end "
                    "and a silent downcast breaks oracle parity — keep float64 or "
                    "suppress with a justification at an explicit I/O boundary"
                ),
            )


class EmptyFillRule(_ScopedRule):
    rule_id = "empty-fill"

    def check_node(self, node, scope, module):
        if not isinstance(node, ast.Assign):
            return
        if not (isinstance(node.value, ast.Call) and call_name(node.value) in {
            "empty",
            "empty_like",
        }):
            return
        if len(node.targets) != 1:
            return
        target = dotted_name(node.targets[0])
        if target is None:
            return
        if self._provably_filled(target, scope.fn):
            return
        yield Finding(
            path=module.path,
            line=node.lineno,
            rule=self.rule_id,
            message=(
                f"np.empty target '{target}' has no visible fill (subscript "
                "store, .fill(), or out=) in this function — uninitialised "
                "reads are nondeterministic; use np.zeros or fill it"
            ),
        )

    @staticmethod
    def _provably_filled(target: str, scope_node: ast.AST) -> bool:
        for sub in ast.walk(scope_node):
            if isinstance(sub, ast.Subscript) and isinstance(sub.ctx, ast.Store):
                if dotted_name(sub.value) == target:
                    return True
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "fill"
                    and dotted_name(func.value) == target
                ):
                    return True
                for kw in sub.keywords:
                    if kw.arg == "out" and dotted_name(kw.value) == target:
                        return True
        return False
