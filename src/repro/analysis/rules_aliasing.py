"""Aliasing lint rule: undeclared in-place mutation of parameters.

``inplace-alias`` flags any function that writes through a parameter
array — subscript stores, mutating ndarray methods (``.sort()``,
``.fill()``), ``out=`` keywords, or numpy's mutate-first-arg functions
(``np.fill_diagonal`` …) — unless the function is declared with
``@inplace_mutator`` (see :mod:`repro.analysis.registry`). Mutating
caller data without declaring it is how ``clean_matrix(copy=False)``
bugs are born: the caller's matrix silently changes under them.

Aliases are tracked statement-by-statement: a parameter name stops
being caller-owned once rebound to a provably fresh array
(``X = X.copy()``), stays caller-owned through layout casts
(``X = np.asarray(X)``), and spreads to new names bound to views
(``row = X[i]``). Branches are merged conservatively — an alias
surviving *either* arm survives the merge.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .linter import LintContext, LintRule, SourceModule
from .scopes import (
    ALIAS_PRESERVING_CALLS,
    MUTATING_FIRST_ARG_FUNCS,
    MUTATING_METHODS,
    call_name,
    dotted_name,
    iter_function_defs,
    rhs_allocates,
)


def _root(name: "str | None") -> "str | None":
    return name.split(".")[0] if name else None


def _decorator_names(fn) -> "set[str]":
    names: "set[str]" = set()
    for dec in fn.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(node)
        if name:
            names.add(name.split(".")[-1])
    return names


class InplaceAliasRule(LintRule):
    rule_id = "inplace-alias"

    def check_module(self, module: SourceModule, ctx: LintContext):
        for fn in iter_function_defs(module.tree):
            if "inplace_mutator" in _decorator_names(fn):
                continue
            args = fn.args
            params = {
                a.arg
                for a in [
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else []),
                ]
                if a.arg not in ("self", "cls")
            }
            if not params:
                continue
            events: "list[tuple[int, str]]" = []
            self._scan(fn.body, set(params), events)
            for line, name in sorted(set(events)):
                yield Finding(
                    path=module.path,
                    line=line,
                    rule=self.rule_id,
                    message=(
                        f"writes through parameter '{name}' without declaring it: "
                        "decorate the function with @inplace_mutator (and document "
                        "the aliasing contract) or copy before mutating"
                    ),
                )

    # ------------------------------------------------------------------
    def _scan(
        self,
        stmts: "list[ast.stmt]",
        aliases: "set[str]",
        events: "list[tuple[int, str]]",
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are checked on their own
            if isinstance(stmt, ast.Assign):
                self._check_expr(stmt.value, aliases, events)
                for target in stmt.targets:
                    self._check_store(target, aliases, events)
                    self._rebind(target, stmt.value, aliases)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._check_expr(stmt.value, aliases, events)
                    self._check_store(stmt.target, aliases, events)
                    self._rebind(stmt.target, stmt.value, aliases)
            elif isinstance(stmt, ast.AugAssign):
                self._check_expr(stmt.value, aliases, events)
                # `X[i] += v` stores through the view; `x += v` on a bare
                # name rebinds for scalars (the overwhelmingly common
                # case for parameters named this way) and is not flagged.
                self._check_store(stmt.target, aliases, events, bare_names=False)
            elif isinstance(stmt, (ast.If,)):
                self._check_expr(stmt.test, aliases, events)
                then_aliases, else_aliases = set(aliases), set(aliases)
                self._scan(stmt.body, then_aliases, events)
                self._scan(stmt.orelse, else_aliases, events)
                aliases.clear()
                aliases.update(then_aliases | else_aliases)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_expr(stmt.iter, aliases, events)
                self._rebind(stmt.target, stmt.iter, aliases)
                body_aliases = set(aliases)
                self._scan(stmt.body, body_aliases, events)
                self._scan(stmt.orelse, body_aliases, events)
                aliases.update(body_aliases)
            elif isinstance(stmt, ast.While):
                self._check_expr(stmt.test, aliases, events)
                body_aliases = set(aliases)
                self._scan(stmt.body, body_aliases, events)
                self._scan(stmt.orelse, body_aliases, events)
                aliases.update(body_aliases)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._check_expr(item.context_expr, aliases, events)
                self._scan(stmt.body, aliases, events)
            elif isinstance(stmt, ast.Try):
                self._scan(stmt.body, aliases, events)
                for handler in stmt.handlers:
                    self._scan(handler.body, set(aliases), events)
                self._scan(stmt.orelse, aliases, events)
                self._scan(stmt.finalbody, aliases, events)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._check_expr(stmt.value, aliases, events)
            elif isinstance(stmt, ast.Expr):
                self._check_expr(stmt.value, aliases, events)
            elif isinstance(stmt, (ast.Assert, ast.Raise)):
                for child in ast.iter_child_nodes(stmt):
                    self._check_expr(child, aliases, events)

    # ------------------------------------------------------------------
    def _check_store(
        self,
        target: ast.AST,
        aliases: "set[str]",
        events: "list[tuple[int, str]]",
        bare_names: bool = True,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, aliases, events, bare_names)
            return
        if isinstance(target, ast.Subscript):
            base = _root(dotted_name(target.value))
            if base in aliases:
                events.append((target.lineno, base))
        # Bare-name stores rebind the local; they never mutate the array.

    def _check_expr(
        self,
        expr: ast.AST,
        aliases: "set[str]",
        events: "list[tuple[int, str]]",
    ) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Lambda,)):
                continue
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
                base = _root(dotted_name(func.value))
                if base in aliases:
                    events.append((sub.lineno, base))
            name = call_name(sub)
            if name in MUTATING_FIRST_ARG_FUNCS and sub.args:
                base = _root(dotted_name(sub.args[0]))
                if base in aliases:
                    events.append((sub.lineno, base))
            for kw in sub.keywords:
                if kw.arg == "out":
                    base = _root(dotted_name(kw.value))
                    if base in aliases:
                        events.append((kw.value.lineno, base))

    # ------------------------------------------------------------------
    def _rebind(self, target: ast.AST, value: ast.AST, aliases: "set[str]") -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking: conservatively treat every bound name as aliasing
            # if the RHS aliases at all (e.g. `a, b = X, X[0]`).
            hit = self._value_aliases(value, aliases)
            for element in target.elts:
                name = dotted_name(element)
                if name and "." not in name:
                    if hit:
                        aliases.add(name)
                    else:
                        aliases.discard(name)
            return
        name = dotted_name(target)
        if name is None or "." in name:
            return
        if self._value_aliases(value, aliases):
            aliases.add(name)
        elif rhs_allocates(value):
            aliases.discard(name)
        # Otherwise (opaque RHS such as another local) leave as-is.

    def _value_aliases(self, value: ast.AST, aliases: "set[str]") -> bool:
        if isinstance(value, ast.Name):
            return value.id in aliases
        if isinstance(value, ast.Attribute):
            # X.T / X.real are views of X.
            return _root(dotted_name(value)) in aliases
        if isinstance(value, ast.Subscript):
            return self._value_aliases(value.value, aliases)
        if isinstance(value, ast.Call):
            if call_name(value) in ALIAS_PRESERVING_CALLS:
                return any(self._value_aliases(arg, aliases) for arg in value.args)
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr in ALIAS_PRESERVING_CALLS:
                return self._value_aliases(func.value, aliases)
            return False
        if isinstance(value, ast.IfExp):
            return self._value_aliases(value.body, aliases) or self._value_aliases(
                value.orelse, aliases
            )
        return False
