"""Experiment E2 — Figure 3: importance of generated vs. original features.

The paper combines the M original features with the top-M generated
features, fits a random forest, and plots per-feature importance; the
visual takeaway is that generated (orange) features out-rank original
(blue) ones. Without plotting, we report the same information as series
and summary statistics: the importance of each feature tagged
original/generated, the share of generated features in the top-k, and the
mean importance ratio generated/original.

Run: ``python -m repro.experiments.fig3 [--datasets a,b] [--scale S]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from ..core.transform import FeatureTransformer
from ..datasets import BENCHMARK_NAMES, load_benchmark
from ..models import RandomForestClassifier
from ..operators.expressions import Var
from .reporting import banner, format_table, save_results
from .runner import fit_method

DEFAULT_DATASETS: tuple[str, ...] = ("banknote", "phoneme", "magic")


@dataclass(frozen=True)
class Fig3Result:
    #: dataset -> list of (feature name, importance, is_generated), sorted
    #: by importance descending.
    series: dict
    #: dataset -> summary dict (generated share of top half, mean ratio).
    summary: dict


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    scale: float = 0.15,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Fig3Result:
    series: dict[str, list] = {}
    summary: dict[str, dict[str, float]] = {}
    for ds in datasets:
        train, valid, __ = load_benchmark(ds, scale=scale, seed=seed)
        m_orig = train.n_cols
        info = fit_method("SAFE", train, valid, gamma=gamma, seed=seed)
        # Figure 3's feature set: M originals + top-M generated features.
        generated = [
            e for e in info.transformer.expressions if not isinstance(e, Var)
        ][:m_orig]
        originals = [Var(i) for i in range(m_orig)]
        combined = FeatureTransformer(
            expressions=tuple(originals + generated),
            original_names=train.names,
        )
        train_new = combined.transform(train)
        forest = RandomForestClassifier(random_state=seed)
        forest.fit(train_new.X, train_new.require_labels())
        importance = forest.feature_importances_
        tagged = [
            (combined.feature_names[i], float(importance[i]), i >= m_orig)
            for i in range(len(importance))
        ]
        tagged.sort(key=lambda t: -t[1])
        series[ds] = tagged
        top_half = tagged[: max(1, len(tagged) // 2)]
        gen_share = sum(1 for t in top_half if t[2]) / len(top_half)
        mean_gen = float(np.mean([t[1] for t in tagged if t[2]])) if generated else 0.0
        orig_scores = [t[1] for t in tagged if not t[2]]
        mean_orig = float(np.mean(orig_scores)) if orig_scores else 0.0
        summary[ds] = {
            "generated_share_top_half": gen_share,
            "mean_importance_generated": mean_gen,
            "mean_importance_original": mean_orig,
            "importance_ratio": mean_gen / mean_orig if mean_orig > 0 else float("inf"),
        }
        if verbose:
            print(banner(f"Figure 3 — {ds}: RF importance, generated vs original"))
            rows = [
                [name[:48], imp, "generated" if gen else "original"]
                for name, imp, gen in tagged[:12]
            ]
            print(format_table(["Feature", "Importance", "Kind"], rows, float_digits=4))
            s = summary[ds]
            print(
                f"generated share of top half: {100 * s['generated_share_top_half']:.0f}%  "
                f"mean importance generated/original: "
                f"{s['mean_importance_generated']:.4f}/{s['mean_importance_original']:.4f} "
                f"(ratio {s['importance_ratio']:.2f})\n"
            )
    return Fig3Result(series=series, summary=summary)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(datasets=datasets, scale=args.scale, gamma=args.gamma, seed=args.seed)
    if args.out:
        save_results({"series": result.series, "summary": result.summary}, args.out)


if __name__ == "__main__":
    main()
