"""Paper experiment reproductions, one module per table/figure.

Each module exposes ``run(...)`` for programmatic use and a CLI entry
point (``python -m repro.experiments.<module>``):

* :mod:`~repro.experiments.table3` — Table III, classification AUC.
* :mod:`~repro.experiments.table5` — Table V, execution time.
* :mod:`~repro.experiments.table6` — Table VI, feature stability (JSD).
* :mod:`~repro.experiments.table8` — Table VIII, business-scale fraud.
* :mod:`~repro.experiments.fig3` — Figure 3, feature importance.
* :mod:`~repro.experiments.fig4` — Figure 4, AUC vs iterations.
* :mod:`~repro.experiments.assumptions` — §IV-B assumption check.
* :mod:`~repro.experiments.search_space` — Eq. (3) vs Eq. (5) reduction.
* :mod:`~repro.experiments.complexity` — §IV-D Eq. (13) scaling validation.
"""

from .runner import (
    METHOD_ORDER,
    MethodRun,
    average_lift,
    evaluate_transformer,
    fit_method,
    make_method,
)

__all__ = [
    "METHOD_ORDER",
    "MethodRun",
    "average_lift",
    "evaluate_transformer",
    "fit_method",
    "make_method",
]
