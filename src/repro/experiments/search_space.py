"""Experiment E8 — search-space reduction: Eq. (3)'s T vs Eq. (5)'s T*.

For each benchmark, compute the exhaustive pairwise search-space size T
(ordered feature subsets × operators), the path-restricted worst case T*
(summing over mined tree paths), and the *actual* number of distinct
combinations after cross-path merging. The paper's claim is T* ≪ T, with
the deduplicated count far smaller still.

Run: ``python -m repro.experiments.search_space [--datasets a,b]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..core.generation import (
    combinations_from_paths,
    fit_mining_model,
    mined_search_space_size,
    search_space_size,
)
from ..datasets import BENCHMARK_NAMES, load_benchmark
from ..tabular.preprocess import clean_matrix
from .reporting import banner, format_table, save_results

#: Wide datasets by default — the reduction only bites when M is large
#: (on M <= 14 every feature tends to be a split feature).
DEFAULT_DATASETS: tuple[str, ...] = ("valley", "spambase", "ailerons", "nomao")

#: {arity: operator count} for the experiment set {+,−,×,÷} (Eq. 3 counts
#: ordered subsets, so each binary operator counts once).
OPERATOR_COUNTS: dict[int, int] = {2: 4}


@dataclass(frozen=True)
class SearchSpaceResult:
    rows: dict  # dataset -> {"T": ..., "T_star": ..., "actual": ..., ...}


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    scale: float = 0.15,
    seed: int = 0,
    verbose: bool = True,
) -> SearchSpaceResult:
    rows: dict[str, dict[str, float]] = {}
    for ds in datasets:
        train, valid, __ = load_benchmark(ds, scale=scale, seed=seed)
        eval_set = (clean_matrix(valid.X), valid.y) if valid is not None else None
        model = fit_mining_model(
            clean_matrix(train.X), train.require_labels(), eval_set,
            n_estimators=20, max_depth=4, learning_rate=0.3, random_state=seed,
        )
        paths = model.paths()
        t_full = search_space_size(train.n_cols, OPERATOR_COUNTS)
        t_star = mined_search_space_size(paths, OPERATOR_COUNTS)
        combos = combinations_from_paths(paths, max_size=2)
        actual_pairs = sum(1 for c in combos if c.size == 2)
        rows[ds] = {
            "M": train.n_cols,
            "n_paths": len(paths),
            "T": t_full,
            "T_star": t_star,
            "actual_distinct_pairs": actual_pairs,
            "reduction_T_over_actual": t_full / max(4 * actual_pairs, 1),
        }
    if verbose:
        print(banner("Search-space reduction (Eq. 3 vs Eq. 5 vs realized)"))
        table_rows = [
            [
                ds,
                int(rows[ds]["M"]),
                int(rows[ds]["n_paths"]),
                f"{rows[ds]['T']:.0f}",
                f"{rows[ds]['T_star']:.0f}",
                int(rows[ds]["actual_distinct_pairs"]),
                f"{rows[ds]['reduction_T_over_actual']:.1f}x",
            ]
            for ds in datasets
        ]
        print(format_table(
            ["Dataset", "M", "paths", "T (Eq.3)", "T* (Eq.5)", "distinct pairs",
             "T / realized"],
            table_rows,
        ))
    return SearchSpaceResult(rows=rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(datasets=datasets, scale=args.scale, seed=args.seed)
    if args.out:
        save_results({"rows": result.rows}, args.out)


if __name__ == "__main__":
    main()
