"""Experiment E9 — empirical validation of the §IV-D complexity analysis.

Eq. (13) bounds SAFE's cost by ``O(N · K1 · (K1 + K2))``: *linear in the
number of records* and controlled by the internal GBM tree counts. This
experiment measures SAFE's fit time while sweeping

* the training-set size N (at fixed M, K1, K2) — expecting near-linear
  growth (log-log slope ≈ 1), and
* the mining tree count K1 (at fixed N) — expecting monotone growth,

and contrasts it with TFC's O(N·M²) by sweeping the feature count M,
where SAFE's path mining keeps cost flat while TFC's exhausts quadratic
pair enumeration.

Run: ``python -m repro.experiments.complexity``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from ..baselines import TFC
from ..core import SAFE, SAFEConfig
from ..datasets import SyntheticTaskSpec, build_task
from ..utils import Timer
from .reporting import banner, format_table, save_results


@dataclass(frozen=True)
class ComplexityResult:
    n_sweep: list  # (N, seconds)
    k1_sweep: list  # (K1, seconds)
    m_sweep: list  # (M, safe_seconds, tfc_seconds)
    n_scaling_exponent: float


def _task(m: int, seed: int = 0) -> "SyntheticTaskSpec":
    return SyntheticTaskSpec(
        n_features=m,
        n_informative=min(8, m),
        n_interactions=4,
        seed=seed,
    )


def _time_safe(train, gamma: int, k1: int = 20, k2: int = 20) -> float:
    cfg = SAFEConfig(gamma=gamma, mining_n_estimators=k1, ranking_n_estimators=k2)
    timer = Timer()
    SAFE(cfg).fit(train)
    return timer.elapsed()


def run(
    n_values: "tuple[int, ...]" = (1000, 2000, 4000, 8000),
    k1_values: "tuple[int, ...]" = (5, 10, 20, 40),
    m_values: "tuple[int, ...]" = (10, 20, 40, 80),
    gamma: int = 30,
    seed: int = 0,
    verbose: bool = True,
) -> ComplexityResult:
    task = build_task(_task(20, seed))

    n_sweep = []
    for n in n_values:
        train = task.sample(n, seed=seed + n)
        n_sweep.append((n, _time_safe(train, gamma)))

    k1_sweep = []
    train_fixed = task.sample(4000, seed=seed + 1)
    for k1 in k1_values:
        k1_sweep.append((k1, _time_safe(train_fixed, gamma, k1=k1)))

    m_sweep = []
    for m in m_values:
        wide = build_task(_task(m, seed)).sample(2000, seed=seed + m)
        safe_s = _time_safe(wide, gamma)
        timer = Timer()
        TFC().fit(wide)
        m_sweep.append((m, safe_s, timer.elapsed()))

    # Log-log slope of time vs N estimates the scaling exponent.
    logs_n = np.log([max(n, 1) for n, __ in n_sweep])
    logs_t = np.log([max(t, 1e-4) for __, t in n_sweep])
    exponent = float(np.polyfit(logs_n, logs_t, 1)[0])

    if verbose:
        print(banner("Complexity validation (Eq. 13): SAFE cost scaling"))
        print(format_table(["N (rows)", "SAFE seconds"],
                           [[n, t] for n, t in n_sweep]))
        print(f"log-log scaling exponent in N: {exponent:.2f} "
              f"(Eq. 13 predicts ~1.0, i.e. linear)\n")
        print(format_table(["K1 (mining trees)", "SAFE seconds"],
                           [[k, t] for k, t in k1_sweep]))
        print()
        print(format_table(["M (features)", "SAFE s", "TFC s (O(N*M^2))"],
                           [[m, s, t] for m, s, t in m_sweep]))
    return ComplexityResult(
        n_sweep=n_sweep,
        k1_sweep=k1_sweep,
        m_sweep=m_sweep,
        n_scaling_exponent=exponent,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    result = run(seed=args.seed)
    if args.out:
        save_results(
            {
                "n_sweep": result.n_sweep,
                "k1_sweep": result.k1_sweep,
                "m_sweep": result.m_sweep,
                "n_scaling_exponent": result.n_scaling_exponent,
            },
            args.out,
        )


if __name__ == "__main__":
    main()
