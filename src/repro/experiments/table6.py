"""Experiment E4 — Table VI: stability of the generated features.

Repeat each AutoFE method T times with different seeds, pool the
identities of its generated features (canonical expression keys), and
score the pooled frequency distribution against the ideal
(same 2M features every run) with Jensen-Shannon divergence — Eq. (14–15)
and §V-A.5. Lower is more stable; the reproduction target is SAFE having
the lowest (or near-lowest) JSD, with FCT/RAND/IMP above it. TFC is
excluded exactly as in the paper ("the execution time of TFC is too
long").

Run: ``python -m repro.experiments.table6 [--repeats T] [--scale S]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..datasets import BENCHMARK_NAMES, load_benchmark
from ..metrics import feature_stability
from .reporting import banner, format_table, save_results
from .runner import fit_method

DEFAULT_DATASETS: tuple[str, ...] = ("banknote", "phoneme", "magic")
DEFAULT_METHODS: tuple[str, ...] = ("FCT", "RAND", "IMP", "SAFE")


@dataclass(frozen=True)
class Table6Result:
    jsd: dict  # dataset -> method -> JSD score


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    methods: "tuple[str, ...]" = DEFAULT_METHODS,
    repeats: int = 10,
    scale: float = 0.1,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Table6Result:
    jsd: dict[str, dict[str, float]] = {}
    for ds in datasets:
        per_method: dict[str, float] = {}
        for m in methods:
            runs = []
            for t in range(repeats):
                # New data draw and new method seed each repetition, as the
                # paper repeats the whole AutoFE procedure.
                train, valid, __ = load_benchmark(ds, scale=scale, seed=seed + 1000 * t)
                info = fit_method(m, train, valid, gamma=gamma, seed=seed + t)
                runs.append(list(info.transformer.feature_keys))
            n_nominal = max(len(r) for r in runs)
            per_method[m] = feature_stability(runs, n_features_per_run=n_nominal)
        jsd[ds] = per_method
    if verbose:
        print(banner(f"Table VI — feature stability (JSD, T={repeats}, lower=better)"))
        rows = [[ds] + [jsd[ds][m] for m in methods] for ds in datasets]
        print(format_table(["Dataset"] + list(methods), rows, float_digits=4))
    return Table6Result(jsd=jsd)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=10,
                        help="T repetitions (paper uses 100)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--methods", type=str, default=",".join(DEFAULT_METHODS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(
        datasets=datasets,
        methods=tuple(s.strip().upper() for s in args.methods.split(",")),
        repeats=args.repeats,
        scale=args.scale,
        gamma=args.gamma,
        seed=args.seed,
    )
    if args.out:
        save_results({"jsd": result.jsd}, args.out)


if __name__ == "__main__":
    main()
