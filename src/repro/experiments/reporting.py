"""Plain-text table rendering and result persistence for experiments.

Every experiment module prints rows in the same shape as the paper's
tables and can dump its raw results as JSON for later inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..utils import atomic_write


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_digits: int = 2,
) -> str:
    """Render an aligned monospace table (paper-style)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(payload: dict, path: "str | Path") -> None:
    """Persist raw experiment output as JSON (atomically: a crashed run
    never leaves a torn results file that parses)."""
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with atomic_write(path) as fh:
        fh.write(json.dumps(payload, indent=2, default=_jsonify))


def _jsonify(obj: object) -> object:
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return vars(obj)
    return str(obj)


def banner(title: str) -> str:
    rule = "=" * max(len(title), 20)
    return f"{rule}\n{title}\n{rule}"
