"""Experiment E6 — Table VIII: business-scale fraud datasets.

Fits ORIG / RAND / IMP / SAFE on the three imbalanced fraud surrogates
(Table VII shapes, scaled by ``--scale``) and evaluates LR, RF and XGB —
the three production classifiers of the paper. FCTree and TFC are
excluded exactly as in the paper ("the execution time is too long for
these two methods"). The reproduction target: SAFE consistently improves
over ORIG for all three classifiers on every dataset.

Run: ``python -m repro.experiments.table8 [--scale S]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..datasets import BUSINESS_NAMES, load_business
from .reporting import banner, format_table, save_results
from .runner import evaluate_transformer, fit_method

DEFAULT_METHODS: tuple[str, ...] = ("ORIG", "RAND", "IMP", "SAFE")
DEFAULT_CLASSIFIERS: tuple[str, ...] = ("lr", "rf", "xgb")
DEFAULT_SCALE: float = 0.004  # ~10k-32k training rows; raise toward 1.0 at will


@dataclass(frozen=True)
class Table8Result:
    scores: dict  # dataset -> method -> clf -> auc*100


def run(
    datasets: "tuple[str, ...]" = BUSINESS_NAMES,
    methods: "tuple[str, ...]" = DEFAULT_METHODS,
    classifiers: "tuple[str, ...]" = DEFAULT_CLASSIFIERS,
    scale: float = DEFAULT_SCALE,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Table8Result:
    scores: dict[str, dict[str, dict[str, float]]] = {}
    for ds in datasets:
        train, valid, test = load_business(ds, scale=scale, seed=seed)
        per_method: dict[str, dict[str, float]] = {}
        for m in methods:
            info = fit_method(m, train, valid, gamma=gamma, seed=seed)
            per_method[m] = evaluate_transformer(
                info.transformer, train, test, classifiers
            )
        scores[ds] = per_method
        if verbose:
            print(banner(f"Table VIII — {ds} (scale={scale}, "
                         f"{train.n_rows} train rows, "
                         f"{100 * float(train.y.mean()):.2f}% positive)"))
            rows = [
                [clf.upper()] + [per_method[m][clf] for m in methods]
                for clf in classifiers
            ]
            print(format_table(["CLF"] + list(methods), rows))
            print()
    return Table8Result(scores=scores)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="fraction of Table VII row counts (1.0 = paper scale)")
    parser.add_argument("--datasets", type=str, default=",".join(BUSINESS_NAMES))
    parser.add_argument("--methods", type=str, default=",".join(DEFAULT_METHODS))
    parser.add_argument("--classifiers", type=str, default=",".join(DEFAULT_CLASSIFIERS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    result = run(
        datasets=tuple(s.strip() for s in args.datasets.split(",")),
        methods=tuple(s.strip().upper() for s in args.methods.split(",")),
        classifiers=tuple(s.strip().lower() for s in args.classifiers.split(",")),
        scale=args.scale,
        gamma=args.gamma,
        seed=args.seed,
    )
    if args.out:
        save_results({"scores": result.scores}, args.out)


if __name__ == "__main__":
    main()
