"""Experiment E7 — empirical check of SAFE's two core assumptions (§IV-B).

Assumption 1 (unary): features generated from *split* features are more
effective than features generated from *non-split* features.
Assumption 2 (binary): features generated from split-feature pairs that
share a path beat pairs of split features from different paths, which in
turn beat pairs involving non-split features.

Protocol: train the mining GBM, partition candidate pairs into the three
pools (same-path / cross-path / non-split), generate features with the
{+,−,×,÷} operator set from a sample of each pool, and compare the mean
information value of the generated features. The paper's claim holds if
``IV(same-path) ≥ IV(cross-path) ≥ IV(non-split)``.

Run: ``python -m repro.experiments.assumptions [--datasets a,b]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from itertools import combinations as iter_combinations

import numpy as np

from ..core.generation import fit_mining_model
from ..core.selection import information_values_safe
from ..datasets import BENCHMARK_NAMES, load_benchmark
from ..operators.base import resolve_operators
from ..operators.expressions import Var, fit_applied
from ..tabular.preprocess import clean_matrix
from ..utils import check_random_state
from .reporting import banner, format_table, save_results

#: Wide datasets by default so the cross-path and non-split pools are
#: non-empty (on M <= 14 every feature tends to be a split feature).
DEFAULT_DATASETS: tuple[str, ...] = ("valley", "spambase", "ailerons")
OPERATORS: tuple[str, ...] = ("add", "sub", "mul", "div")


@dataclass(frozen=True)
class AssumptionResult:
    #: dataset -> {"same_path": iv, "cross_path": iv, "non_split": iv,
    #:             "unary_split": iv, "unary_non_split": iv}
    mean_ivs: dict
    #: dataset -> bool flags for the two assumptions
    holds: dict


def _mean_generated_iv(
    pairs: "list[tuple[int, int]]",
    train,
    max_pairs: int,
    rng: np.random.Generator,
) -> float:
    """Mean IV of all {+,−,×,÷} features generated from sampled pairs."""
    if not pairs:
        return float("nan")
    if len(pairs) > max_pairs:
        picks = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[k] for k in picks]
    ops = resolve_operators(OPERATORS)
    cols = []
    for i, j in pairs:
        for op in ops:
            orders = [(i, j)] if op.commutative else [(i, j), (j, i)]
            for a, b in orders:
                expr = fit_applied(op, (Var(a), Var(b)), train.X)
                cols.append(expr.evaluate(train.X))
    block = clean_matrix(np.column_stack(cols))
    ivs = information_values_safe(block, train.y, n_bins=10)
    return float(np.mean(ivs))


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    scale: float = 0.15,
    max_pairs: int = 30,
    seed: int = 0,
    verbose: bool = True,
) -> AssumptionResult:
    mean_ivs: dict[str, dict[str, float]] = {}
    holds: dict[str, dict[str, bool]] = {}
    for ds in datasets:
        train, valid, __ = load_benchmark(ds, scale=scale, seed=seed)
        rng = check_random_state(seed)
        eval_set = (clean_matrix(valid.X), valid.y) if valid is not None else None
        model = fit_mining_model(
            clean_matrix(train.X), train.require_labels(), eval_set,
            n_estimators=20, max_depth=4, learning_rate=0.3, random_state=seed,
        )
        split = sorted(model.split_features())
        non_split = sorted(set(range(train.n_cols)) - set(split))
        same_path: set[tuple[int, int]] = set()
        for path in model.paths():
            for pair in iter_combinations(sorted(path.features), 2):
                same_path.add(pair)
        cross_path = [
            p for p in iter_combinations(split, 2) if p not in same_path
        ]
        non_split_set = set(non_split)
        non_split_pairs = [
            (i, j)
            for i, j in iter_combinations(range(train.n_cols), 2)
            if i in non_split_set or j in non_split_set
        ]
        row = {
            "same_path": _mean_generated_iv(sorted(same_path), train, max_pairs, rng),
            "cross_path": _mean_generated_iv(cross_path, train, max_pairs, rng),
            "non_split": _mean_generated_iv(non_split_pairs, train, max_pairs, rng),
        }
        # Unary assumption: IV of original split vs non-split columns.
        ivs = information_values_safe(clean_matrix(train.X), train.y, n_bins=10)
        row["unary_split"] = float(np.mean(ivs[split])) if split else float("nan")
        row["unary_non_split"] = (
            float(np.mean(ivs[non_split])) if non_split else float("nan")
        )
        mean_ivs[ds] = row
        # The operative claim of each assumption: split features are the
        # better unary pool, and same-path pairs are the better binary
        # pool. The full three-way ordering (same > cross > non-split) is
        # reported in the table; its middle tier is noisy at small sample
        # scale, so `holds` tests the dominance SAFE actually relies on.
        holds[ds] = {
            "assumption_1": (
                np.isnan(row["unary_non_split"])
                or row["unary_split"] >= row["unary_non_split"]
            ),
            "assumption_2": (
                (np.isnan(row["cross_path"]) or row["same_path"] >= row["cross_path"])
                and (np.isnan(row["non_split"]) or row["same_path"] >= row["non_split"])
            ),
        }
        if verbose:
            print(banner(f"Assumption check — {ds}"))
            print(format_table(
                ["Pool", "Mean IV of generated features"],
                [
                    ["same-path split pairs", row["same_path"]],
                    ["cross-path split pairs", row["cross_path"]],
                    ["non-split pairs", row["non_split"]],
                    ["(unary) split features", row["unary_split"]],
                    ["(unary) non-split features", row["unary_non_split"]],
                ],
                float_digits=4,
            ))
            print(f"assumption 1 holds: {holds[ds]['assumption_1']}, "
                  f"assumption 2 holds: {holds[ds]['assumption_2']}\n")
    return AssumptionResult(mean_ivs=mean_ivs, holds=holds)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--max-pairs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(datasets=datasets, scale=args.scale, max_pairs=args.max_pairs,
                 seed=args.seed)
    if args.out:
        save_results({"mean_ivs": result.mean_ivs, "holds": result.holds}, args.out)


if __name__ == "__main__":
    main()
