"""Experiment E5 — Figure 4: performance at different iterations.

Run SAFE with nIter = 1..R on the Figure 4 datasets (valley, banknote,
gina surrogates) and track test AUC of an XGB probe after each setting.
The reproduction target is the figure's shape: AUC improves in early
iterations and then plateaus ("the features will not be updated, and the
performance keeps unchanged").

Run: ``python -m repro.experiments.fig4 [--rounds R] [--scale S]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..datasets import BENCHMARK_NAMES, load_benchmark
from .reporting import banner, format_table, save_results
from .runner import evaluate_transformer, fit_method

DEFAULT_DATASETS: tuple[str, ...] = ("valley", "banknote")
DEFAULT_CLASSIFIER: str = "xgb"


@dataclass(frozen=True)
class Fig4Result:
    curves: dict  # dataset -> list of (n_iterations, auc*100)


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    rounds: int = 5,
    classifier: str = DEFAULT_CLASSIFIER,
    scale: float = 0.3,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Fig4Result:
    curves: dict[str, list[tuple[int, float]]] = {}
    for ds in datasets:
        train, valid, test = load_benchmark(ds, scale=scale, seed=seed)
        curve = []
        for n_iter in range(1, rounds + 1):
            info = fit_method("SAFE", train, valid, gamma=gamma, seed=seed,
                              n_iterations=n_iter)
            auc = evaluate_transformer(
                info.transformer, train, test, (classifier,)
            )[classifier]
            curve.append((n_iter, auc))
        curves[ds] = curve
        if verbose:
            print(banner(f"Figure 4 — {ds}: AUC vs SAFE iterations ({classifier})"))
            print(format_table(
                ["Iterations", "AUC x100"],
                [[n, a] for n, a in curve],
            ))
            print()
    return Fig4Result(curves=curves)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--classifier", type=str, default=DEFAULT_CLASSIFIER)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(
        datasets=datasets,
        rounds=args.rounds,
        classifier=args.classifier.lower(),
        scale=args.scale,
        gamma=args.gamma,
        seed=args.seed,
    )
    if args.out:
        save_results({"curves": result.curves}, args.out)


if __name__ == "__main__":
    main()
