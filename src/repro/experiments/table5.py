"""Experiment E3 — Table V: execution time of each AutoFE method.

Wall-clock time to fit each method's Ψ on each benchmark surrogate. The
reproduction target is the *ordering* of the paper's Table V: SAFE, RAND
and IMP are comparable and dramatically cheaper than FCTree, which is in
turn cheaper than TFC on wide datasets (paper: SAFE runs in 0.13× FCT and
0.08× TFC time on average).

Run: ``python -m repro.experiments.table5 [--scale S]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..datasets import BENCHMARK_NAMES, load_benchmark
from .reporting import banner, format_table, save_results
from .runner import fit_method

DEFAULT_DATASETS: tuple[str, ...] = ("banknote", "phoneme", "wind", "magic", "spambase")
DEFAULT_METHODS: tuple[str, ...] = ("FCT", "TFC", "RAND", "IMP", "SAFE")


@dataclass(frozen=True)
class Table5Result:
    seconds: dict  # dataset -> method -> fit seconds
    ratios: dict  # method pair ratios, e.g. {"SAFE/FCT": 0.12, ...}


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    methods: "tuple[str, ...]" = DEFAULT_METHODS,
    scale: float = 0.15,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Table5Result:
    seconds: dict[str, dict[str, float]] = {}
    for ds in datasets:
        train, valid, __ = load_benchmark(ds, scale=scale, seed=seed)
        per_method: dict[str, float] = {}
        for m in methods:
            info = fit_method(m, train, valid, gamma=gamma, seed=seed)
            per_method[m] = info.fit_seconds
        seconds[ds] = per_method
    ratios: dict[str, float] = {}
    if "SAFE" in methods:
        for ref in ("FCT", "TFC"):
            if ref in methods:
                pairs = [
                    seconds[ds]["SAFE"] / seconds[ds][ref]
                    for ds in datasets
                    if seconds[ds][ref] > 0
                ]
                ratios[f"SAFE/{ref}"] = sum(pairs) / len(pairs) if pairs else float("nan")
    if verbose:
        print(banner(f"Table V — execution time in seconds (scale={scale})"))
        rows = [[ds] + [seconds[ds][m] for m in methods] for ds in datasets]
        print(format_table(["Dataset"] + list(methods), rows, float_digits=2))
        for key, value in ratios.items():
            paper = {"SAFE/FCT": 0.13, "SAFE/TFC": 0.08}[key]
            print(f"mean {key} time ratio: {value:.3f} (paper: {paper:.2f})")
    return Table5Result(seconds=seconds, ratios=ratios)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS))
    parser.add_argument("--methods", type=str, default=",".join(DEFAULT_METHODS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(
        datasets=datasets,
        methods=tuple(s.strip().upper() for s in args.methods.split(",")),
        scale=args.scale,
        gamma=args.gamma,
        seed=args.seed,
    )
    if args.out:
        save_results({"seconds": result.seconds, "ratios": result.ratios}, args.out)


if __name__ == "__main__":
    main()
