"""Shared experiment machinery: method factories and evaluation loops."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..baselines import (
    AutoLearn,
    FCTree,
    ImportantGenerator,
    OriginalFeatures,
    RandomGenerator,
    TFC,
)
from ..core import SAFE, AutoFeatureEngineer, FeatureTransformer, SAFEConfig
from ..exceptions import ConfigurationError
from ..metrics import roc_auc_score
from ..models import make_classifier
from ..tabular.dataset import Dataset
from ..utils import Timer

#: Method ordering used across the paper's tables. AutoLearn ("AUTO") is
#: additionally available via make_method — the paper analyzes its
#: complexity (§IV-D) but does not include it in the experimental tables.
METHOD_ORDER: tuple[str, ...] = ("ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE")


def make_method(
    name: str,
    gamma: int = 50,
    seed: "int | None" = 0,
    n_iterations: int = 1,
    max_output_features: "int | None" = None,
) -> AutoFeatureEngineer:
    """Build a fresh method instance by table abbreviation.

    All pair-sampling methods share the same γ and output budget so the
    comparison matches §V-A.1 ("the maximum number of RAND, IMP and SAFE
    output features are set to 2M").
    """
    cfg = SAFEConfig(
        gamma=gamma,
        random_state=seed,
        n_iterations=n_iterations,
        max_output_features=max_output_features,
    )
    key = name.strip().upper()
    if key == "ORIG":
        return OriginalFeatures()
    if key == "FCT":
        return FCTree(random_state=seed, max_output_features=max_output_features)
    if key == "TFC":
        return TFC(max_output_features=max_output_features)
    if key == "RAND":
        return RandomGenerator(cfg)
    if key == "IMP":
        return ImportantGenerator(cfg)
    if key == "SAFE":
        return SAFE(cfg)
    if key == "AUTO":
        return AutoLearn(random_state=seed, max_output_features=max_output_features)
    raise ConfigurationError(
        f"unknown method {name!r}; options: {METHOD_ORDER + ('AUTO',)}"
    )


@dataclass(frozen=True)
class MethodRun:
    """Output of fitting one method on one dataset."""

    method: str
    transformer: FeatureTransformer
    fit_seconds: float


def fit_method(
    name: str,
    train: Dataset,
    valid: "Dataset | None",
    gamma: int = 50,
    seed: "int | None" = 0,
    n_iterations: int = 1,
) -> MethodRun:
    """Fit one method and record wall-clock time."""
    method = make_method(name, gamma=gamma, seed=seed, n_iterations=n_iterations)
    timer = Timer()
    transformer = method.fit(train, valid)
    return MethodRun(method=name, transformer=transformer, fit_seconds=timer.elapsed())


def evaluate_transformer(
    transformer: FeatureTransformer,
    train: Dataset,
    test: Dataset,
    classifiers: "tuple[str, ...]",
    clf_kwargs: "dict[str, dict] | None" = None,
) -> dict[str, float]:
    """Train each classifier on Ψ(train) and report test AUC (×100)."""
    train_new = transformer.transform(train)
    test_new = transformer.transform(test)
    out: dict[str, float] = {}
    for clf_name in classifiers:
        kwargs = (clf_kwargs or {}).get(clf_name, {})
        clf = make_classifier(clf_name, **kwargs)
        clf.fit(train_new.X, train_new.require_labels())
        scores = clf.predict_proba(test_new.X)[:, 1]
        out[clf_name] = 100.0 * roc_auc_score(test_new.require_labels(), scores)
    return out


def average_lift(
    per_method: "dict[str, dict[str, float]]",
    baseline: str = "ORIG",
    target: str = "SAFE",
) -> float:
    """Mean relative AUC improvement of ``target`` over ``baseline`` (%)."""
    base = per_method[baseline]
    tgt = per_method[target]
    lifts = [
        100.0 * (tgt[clf] - base[clf]) / base[clf]
        for clf in base
        if base[clf] > 0
    ]
    return float(np.mean(lifts)) if lifts else 0.0
