"""Experiment E1 — Table III: classification performance.

For each benchmark dataset, fit every AutoFE method once (one iteration,
operator set {+,−,×,÷}, output budget 2M) and evaluate the transformed
features with the nine downstream classifiers. The reproduction target is
the *ordering*: SAFE ≥ {RAND, IMP} ≥ ORIG on average, SAFE beating FCT
and TFC, with a clearly positive average lift over ORIG.

Run: ``python -m repro.experiments.table3 [--scale S] [--datasets a,b]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..datasets import BENCHMARK_NAMES, load_benchmark
from ..models import PAPER_CLASSIFIERS
from .reporting import banner, format_table, save_results
from .runner import METHOD_ORDER, average_lift, evaluate_transformer, fit_method

#: Small default subset so the CLI finishes in minutes; pass
#: ``--datasets all`` for the full Table III grid.
DEFAULT_DATASETS: tuple[str, ...] = ("banknote", "phoneme", "magic", "wind")
DEFAULT_CLASSIFIERS: tuple[str, ...] = PAPER_CLASSIFIERS
DEFAULT_METHODS: tuple[str, ...] = METHOD_ORDER


@dataclass(frozen=True)
class Table3Result:
    """AUC(×100) per (dataset, method, classifier) plus summary lifts."""

    scores: dict  # dataset -> method -> clf -> auc*100
    lifts: dict  # dataset -> SAFE-vs-ORIG average lift (%)


def run(
    datasets: "tuple[str, ...]" = DEFAULT_DATASETS,
    methods: "tuple[str, ...]" = DEFAULT_METHODS,
    classifiers: "tuple[str, ...]" = DEFAULT_CLASSIFIERS,
    scale: float = 0.3,
    gamma: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> Table3Result:
    scores: dict[str, dict[str, dict[str, float]]] = {}
    lifts: dict[str, float] = {}
    for ds in datasets:
        train, valid, test = load_benchmark(ds, scale=scale, seed=seed)
        per_method: dict[str, dict[str, float]] = {}
        for m in methods:
            run_info = fit_method(m, train, valid, gamma=gamma, seed=seed)
            per_method[m] = evaluate_transformer(
                run_info.transformer, train, test, classifiers
            )
        scores[ds] = per_method
        lifts[ds] = average_lift(per_method)
        if verbose:
            print(banner(f"Table III — {ds} (scale={scale})"))
            rows = [
                [clf.upper()] + [per_method[m][clf] for m in methods]
                for clf in classifiers
            ]
            print(format_table(["CLF"] + list(methods), rows))
            print(f"SAFE vs ORIG average lift: {lifts[ds]:+.2f}%\n")
    if verbose and lifts:
        overall = sum(lifts.values()) / len(lifts)
        print(f"Overall SAFE-vs-ORIG lift across datasets: {overall:+.2f}% "
              f"(paper reports +6.50% on its 12 OpenML datasets)")
    return Table3Result(scores=scores, lifts=lifts)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="fraction of Table IV sample counts to draw")
    parser.add_argument("--datasets", type=str, default=",".join(DEFAULT_DATASETS),
                        help="comma-separated dataset names, or 'all'")
    parser.add_argument("--classifiers", type=str, default=",".join(DEFAULT_CLASSIFIERS))
    parser.add_argument("--methods", type=str, default=",".join(DEFAULT_METHODS))
    parser.add_argument("--gamma", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None, help="JSON output path")
    args = parser.parse_args()
    datasets = (
        BENCHMARK_NAMES if args.datasets == "all"
        else tuple(s.strip() for s in args.datasets.split(","))
    )
    result = run(
        datasets=datasets,
        methods=tuple(s.strip().upper() for s in args.methods.split(",")),
        classifiers=tuple(s.strip().lower() for s in args.classifiers.split(",")),
        scale=args.scale,
        gamma=args.gamma,
        seed=args.seed,
    )
    if args.out:
        save_results({"scores": result.scores, "lifts": result.lifts}, args.out)


if __name__ == "__main__":
    main()
