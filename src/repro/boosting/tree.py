"""Regression tree for gradient boosting, with root-to-leaf path export.

The tree is grown depth-wise on pre-binned codes (histogram split search)
and stored in flat arrays. Besides prediction it exposes the two pieces of
structure SAFE consumes:

* :meth:`Tree.paths` — for every parent-of-leaf node ``l_j``, the distinct
  split features on the root→``l_j`` path together with each feature's set
  of split values (the paper's ``p_j`` and ``V_i``);
* :meth:`Tree.feature_gains` — per-feature total gain and split count, the
  ingredients of XGBoost's average-gain importance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError


@dataclass(frozen=True)
class TreePath:
    """Distinct split features along one root→leaf-parent path.

    Attributes
    ----------
    features:
        Column indices in order of first appearance on the path.
    split_values:
        Mapping from column index to the tuple of raw threshold values the
        feature splits on along this path (a feature can appear several
        times, hence a set of values — the paper's ``V_i``).
    """

    features: tuple[int, ...]
    split_values: dict[int, tuple[float, ...]]

    def __len__(self) -> int:
        return len(self.features)


@dataclass
class Tree:
    """A fitted regression tree in flat-array form.

    Internal nodes satisfy ``feature[i] >= 0``; leaves have
    ``feature[i] == -1`` and carry ``value[i]``. The split condition is
    ``x[feature] <= threshold`` → left child; missing (non-finite) values
    go right (fixed default direction).
    """

    max_depth: int = 6
    min_samples_leaf: int = 5
    min_child_weight: float = 1e-3
    reg_lambda: float = 1.0
    gamma: float = 0.0
    colsample: float = 1.0

    feature: np.ndarray = field(default=None, repr=False)
    threshold: np.ndarray = field(default=None, repr=False)
    threshold_bin: np.ndarray = field(default=None, repr=False)
    left: np.ndarray = field(default=None, repr=False)
    right: np.ndarray = field(default=None, repr=False)
    value: np.ndarray = field(default=None, repr=False)
    gain: np.ndarray = field(default=None, repr=False)
    n_samples: np.ndarray = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Growing
    # ------------------------------------------------------------------
    def fit(
        self,
        codes: np.ndarray,
        edges: "list[np.ndarray]",
        grad: np.ndarray,
        hess: np.ndarray,
        rng: "np.random.Generator | None" = None,
    ) -> "Tree":
        """Grow the tree on binned ``codes`` against ``grad``/``hess``.

        ``edges[j]`` holds the interior quantile edges of column ``j`` so
        that bin index ``b`` maps back to the raw threshold ``edges[j][b]``.
        """
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        n_rows, n_cols = codes.shape
        # Vectorized histogram layout: every feature gets a fixed-width
        # slot of `stride` bins, so one flattened bincount per node builds
        # all per-feature histograms at once (columns with fewer effective
        # bins simply leave their tail slots empty).
        stride = max(len(e) for e in edges) + 2 if edges else 2
        offsets = (np.arange(n_cols, dtype=np.int64) * stride)[None, :]
        codes_offset = codes + offsets
        n_edges = np.array([len(e) for e in edges], dtype=np.int64)
        nodes: list[dict] = []

        def new_node(depth: int, idx: np.ndarray) -> int:
            nodes.append(
                {
                    "feature": -1,
                    "threshold": np.nan,
                    "threshold_bin": -1,
                    "left": -1,
                    "right": -1,
                    "value": 0.0,
                    "gain": 0.0,
                    "n_samples": idx.size,
                    "_depth": depth,
                    "_idx": idx,
                }
            )
            return len(nodes) - 1

        root = new_node(0, np.arange(n_rows))
        stack = [root]
        all_cols = np.arange(n_cols)
        n_sub = max(1, int(round(self.colsample * n_cols)))
        while stack:
            node_id = stack.pop()
            node = nodes[node_id]
            idx = node["_idx"]
            g_sum = float(grad[idx].sum())
            h_sum = float(hess[idx].sum())
            node["value"] = -g_sum / (h_sum + self.reg_lambda)
            if (
                node["_depth"] >= self.max_depth
                or idx.size < 2 * self.min_samples_leaf
                or h_sum < 2 * self.min_child_weight
            ):
                continue
            # One flattened bincount builds every feature's (grad, hess,
            # count) histogram; cumulative sums then scan all candidate
            # boundaries of all features simultaneously.
            flat = codes_offset[idx].ravel()
            g_node = grad[idx]
            h_node = hess[idx]
            length = n_cols * stride
            g_hist = np.bincount(
                flat, weights=np.repeat(g_node, n_cols), minlength=length
            ).reshape(n_cols, stride)
            h_hist = np.bincount(
                flat, weights=np.repeat(h_node, n_cols), minlength=length
            ).reshape(n_cols, stride)
            c_hist = np.bincount(flat, minlength=length).reshape(n_cols, stride)
            gl = np.cumsum(g_hist, axis=1)[:, :-1]
            hl = np.cumsum(h_hist, axis=1)[:, :-1]
            cl = np.cumsum(c_hist, axis=1)[:, :-1]
            gr = g_sum - gl
            hr = h_sum - hl
            cr = idx.size - cl
            parent_term = g_sum * g_sum / (h_sum + self.reg_lambda)
            gains = 0.5 * (
                gl * gl / (hl + self.reg_lambda)
                + gr * gr / (hr + self.reg_lambda)
                - parent_term
            ) - self.gamma
            valid = (
                (cl >= self.min_samples_leaf)
                & (cr >= self.min_samples_leaf)
                & (hl >= self.min_child_weight)
                & (hr >= self.min_child_weight)
                # Boundaries past a feature's missing code are vacuous.
                & (np.arange(stride - 1)[None, :] <= n_edges[:, None])
            )
            if n_sub < n_cols and rng is not None:
                keep_cols = rng.choice(all_cols, size=n_sub, replace=False)
                col_mask = np.zeros(n_cols, dtype=bool)
                col_mask[keep_cols] = True
                valid &= col_mask[:, None]
            gains = np.where(valid, gains, -np.inf)
            best_flat = int(np.argmax(gains))
            j, b = divmod(best_flat, stride - 1)
            if not np.isfinite(gains[j, b]) or gains[j, b] <= 0:
                continue
            best_gain = float(gains[j, b])
            col_edges = edges[j]
            # bin b is the last bin that goes left; x <= edges[b] goes left.
            # If b exceeds the interior edges (can only happen when the
            # "real value vs missing" boundary is chosen), the threshold is
            # +inf: every real value goes left, missing goes right.
            threshold = float(col_edges[b]) if b < len(col_edges) else np.inf
            go_left = codes[idx, j] <= b
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if left_idx.size == 0 or right_idx.size == 0:
                continue
            node["feature"] = j
            node["threshold"] = threshold
            node["threshold_bin"] = b
            node["gain"] = best_gain
            left_id = new_node(node["_depth"] + 1, left_idx)
            right_id = new_node(node["_depth"] + 1, right_idx)
            node["left"] = left_id
            node["right"] = right_id
            stack.append(left_id)
            stack.append(right_id)

        self.feature = np.array([n["feature"] for n in nodes], dtype=np.int64)
        self.threshold = np.array([n["threshold"] for n in nodes], dtype=np.float64)
        self.threshold_bin = np.array([n["threshold_bin"] for n in nodes], dtype=np.int64)
        self.left = np.array([n["left"] for n in nodes], dtype=np.int64)
        self.right = np.array([n["right"] for n in nodes], dtype=np.int64)
        self.value = np.array([n["value"] for n in nodes], dtype=np.float64)
        self.gain = np.array([n["gain"] for n in nodes], dtype=np.float64)
        self.n_samples = np.array([n["n_samples"] for n in nodes], dtype=np.int64)
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        self._check_fitted()
        return int(self.feature.size)

    @property
    def n_leaves(self) -> int:
        self._check_fitted()
        return int((self.feature == -1).sum())

    def _check_fitted(self) -> None:
        if self.feature is None:
            raise NotFittedError("Tree not fitted")

    def _descend(self, X: np.ndarray) -> np.ndarray:
        """Route every row from the root to its leaf; returns node ids.

        The single traversal loop behind both :meth:`predict` and
        :meth:`apply`. NaN comparisons are False, so missing values take
        the right branch (the fixed default direction).
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            nid = node_ids[rows]
            go_left = X[rows, self.feature[nid]] <= self.threshold[nid]
            node_ids[rows] = np.where(go_left, self.left[nid], self.right[nid])
            active[rows] = self.feature[node_ids[rows]] >= 0
        return node_ids

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for raw (unbinned) input rows, vectorized."""
        return self.value[self._descend(X)]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id per row (for diagnostics)."""
        return self._descend(X)

    # ------------------------------------------------------------------
    # Structure export (what SAFE consumes)
    # ------------------------------------------------------------------
    def paths(self) -> list[TreePath]:
        """Root→leaf-parent paths as the paper defines them.

        For every internal node that is the parent of at least one leaf,
        emit the distinct split features encountered from the root down to
        and including that node, along with each feature's collected split
        values.
        """
        self._check_fitted()
        out: list[TreePath] = []
        if self.feature[0] == -1:  # single-leaf tree
            return out

        def is_leaf(i: int) -> bool:
            return self.feature[i] == -1

        # DFS carrying the (ordered distinct features, values) state.
        stack: list[tuple[int, tuple[int, ...], dict[int, tuple[float, ...]]]] = [
            (0, (), {})
        ]
        while stack:
            node, feats, values = stack.pop()
            f = int(self.feature[node])
            thr = float(self.threshold[node])
            if f in values:
                new_feats = feats
                new_values = dict(values)
                new_values[f] = values[f] + (thr,)
            else:
                new_feats = feats + (f,)
                new_values = dict(values)
                new_values[f] = (thr,)
            l, r = int(self.left[node]), int(self.right[node])
            if is_leaf(l) or is_leaf(r):
                out.append(TreePath(features=new_feats, split_values=new_values))
            for child in (l, r):
                if not is_leaf(child):
                    stack.append((child, new_feats, new_values))
        return out

    def feature_gains(self) -> dict[int, tuple[float, int]]:
        """Per-feature ``(total_gain, split_count)`` over internal nodes."""
        self._check_fitted()
        out: dict[int, tuple[float, int]] = {}
        for f, g in zip(self.feature, self.gain):
            if f < 0:
                continue
            total, count = out.get(int(f), (0.0, 0))
            out[int(f)] = (total + float(g), count + 1)
        return out

    def split_features(self) -> set[int]:
        """The set of features used anywhere in the tree."""
        self._check_fitted()
        return {int(f) for f in self.feature if f >= 0}
