"""Regression tree for gradient boosting, with root-to-leaf path export.

The tree is grown level-order (breadth-first) on pre-binned codes and
stored in flat arrays. Split search is histogram-based with the two
LightGBM-style fast paths:

* **histogram subtraction** — per split only the *smaller* child's
  histogram is accumulated from rows; the sibling's is derived as
  ``parent - smaller``. All smaller children of one level are built in a
  single batched ``bincount`` pass per column through
  :class:`~repro.boosting.histogram.NodeHistogramBuilder` (no per-node
  ``np.repeat`` weight temporaries);
* **binned fit/predict contract** — training runs entirely on integer
  codes. :meth:`Tree.fit` records the fit-time leaf assignment of every
  partitioned row (``fit_leaf_ids_``), so boosting margin updates are an
  indexed gather, and :meth:`Tree.predict_codes` descends a matrix binned
  with the *training* edges (``codes_from_edges_matrix``) by comparing
  codes against ``threshold_bin`` — bit-identical to raw-float descent.

Raw-float descent (:meth:`Tree.predict`) routes every non-finite value to
the right child, matching the binning convention that maps NaN/±inf to
the per-column missing code.

Besides prediction the tree exposes the two pieces of structure SAFE
consumes:

* :meth:`Tree.paths` — for every parent-of-leaf node ``l_j``, the distinct
  split features on the root→``l_j`` path together with each feature's set
  of split values (the paper's ``p_j`` and ``V_i``);
* :meth:`Tree.feature_gains` — per-feature total gain and split count, the
  ingredients of XGBoost's average-gain importance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from .histogram import NodeHistogramBuilder, SubtractionScheduler, histogram_stride

#: The ``tie_rtol`` the SAFE fit-time miners pass to their forests (the
#: ranking/mining/importance models built in ``core.generation``,
#: ``core.selection`` and ``core.stream``). Wide enough to absorb
#: summation-grouping rounding between the in-memory and streaming
#: histogram paths (which agree to ~1e-12 relative), narrow enough that
#: near-coincidental gains from merely *correlated* (not duplicated)
#: columns — separated by far more than accumulated rounding — keep
#: resolving by magnitude. Models outside the SAFE fit (downstream
#: classifiers, the audited references) keep the default ``tie_rtol=0``:
#: the historical strict argmax, untouched.
GAIN_TIE_RTOL = 1e-10


@dataclass(frozen=True)
class TreePath:
    """Distinct split features along one root→leaf-parent path.

    Attributes
    ----------
    features:
        Column indices in order of first appearance on the path.
    split_values:
        Mapping from column index to the tuple of raw threshold values the
        feature splits on along this path (a feature can appear several
        times, hence a set of values — the paper's ``V_i``).
    """

    features: tuple[int, ...]
    split_values: dict[int, tuple[float, ...]]

    def __len__(self) -> int:
        return len(self.features)


def level_split_search(
    block: np.ndarray,
    g_sums: np.ndarray,
    h_sums: np.ndarray,
    sizes: np.ndarray,
    boundary_ok: np.ndarray,
    min_child_weight: float,
    min_samples_leaf: int,
    reg_lambda: float,
    gamma: float,
    with_counts: bool,
    col_mask: "np.ndarray | None" = None,
    tie_rtol: float = 0.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Best split per node from one level's histogram block.

    ``block`` is the ``(n_channels, m, n_cols, stride)`` histogram block of
    ``m`` nodes; ``g_sums``/``h_sums``/``sizes`` their per-node totals. One
    cumsum scans all candidate boundaries of all (node, feature) pairs; the
    gain arithmetic cycles the scratch prefix buffers in place
    (elementwise-identical to the per-node form) and leaves the block
    intact — it may be the subtraction parent for the next level.
    ``col_mask`` (``(m, n_cols)`` bool) optionally restricts each node's
    searchable columns (colsample).

    Returns ``(best_flat, best_gains)``: per node the flat
    ``j * stride + b`` index of the best boundary and its gain (``-inf``
    when no boundary is valid). With the default ``tie_rtol=0`` the
    winner is the bare argmax — the historical behavior every model
    outside the SAFE fit keeps. With ``tie_rtol > 0`` (the SAFE miners
    pass :data:`GAIN_TIE_RTOL`), a splittable node's winner is instead
    the *last* flat index (in (feature, bin) order) whose gain is within
    ``tie_rtol`` relative of the maximum: SAFE candidate pools routinely
    contain equal-valued columns under different expressions, whose
    mathematically tied gains round differently depending on summation
    grouping, so a strict argmax would let the last ulp pick the winner
    and the in-memory grower (one bincount per node) and the streaming
    grower (merged per-chunk bincounts) could legitimately disagree. The
    tolerance makes the pick a deterministic function of (feature, bin)
    order whenever the two paths agree to ``tie_rtol``, which the
    mergeable-kernel contract guarantees; both growers share this exact
    search, so their merged histogram blocks resolve identically.
    """
    m = block.shape[1]
    prefix = np.cumsum(block, axis=-1)
    gl, hl = prefix[0], prefix[1]
    hr = h_sums[:, None, None] - hl
    valid = (hl >= min_child_weight) & (hr >= min_child_weight) & boundary_ok
    if with_counts:
        cl = prefix[2]
        valid &= cl >= min_samples_leaf
        valid &= cl <= (sizes - min_samples_leaf)[:, None, None]
    if col_mask is not None:
        valid &= col_mask[:, :, None]
    gr = g_sums[:, None, None] - gl
    np.add(hl, reg_lambda, out=hl)
    np.multiply(gl, gl, out=gl)
    np.divide(gl, hl, out=gl)
    np.add(hr, reg_lambda, out=hr)
    np.multiply(gr, gr, out=gr)
    np.divide(gr, hr, out=gr)
    gains = np.add(gl, gr, out=gl)
    np.subtract(
        gains, (g_sums * g_sums / (h_sums + reg_lambda))[:, None, None], out=gains  # repro: ignore[div-guard] hessian sums >= 0 and reg_lambda > 0
    )
    np.multiply(gains, 0.5, out=gains)
    np.subtract(gains, gamma, out=gains)
    np.logical_not(valid, out=valid)
    np.copyto(gains, -np.inf, where=valid)
    # gains is (m, n_cols, stride) contiguous, so the per-node flat argmax
    # (and any last-index tie-breaking in (feature, bin) order) costs no
    # transpose copy.
    flat_gains = gains.reshape(m, -1)
    best_flat = np.argmax(flat_gains, axis=1)
    best_gains = flat_gains[np.arange(m), best_flat]
    if tie_rtol > 0.0:
        # Deterministic near-tie break: among boundaries within tie_rtol
        # relative of the node's max gain, take the highest flat index.
        # Only positive maxima matter (non-positive ones never split).
        splittable = best_gains > 0.0
        if np.any(splittable):
            thresholds = np.where(splittable, best_gains, np.inf) * (
                1.0 - tie_rtol
            )
            mask = flat_gains >= thresholds[:, None]
            tied_last = mask.shape[1] - 1 - np.argmax(mask[:, ::-1], axis=1)
            best_flat = np.where(splittable, tied_last, best_flat)
            best_gains = flat_gains[np.arange(m), best_flat]
    return best_flat, best_gains


@dataclass
class Tree:
    """A fitted regression tree in flat-array form.

    Internal nodes satisfy ``feature[i] >= 0``; leaves have
    ``feature[i] == -1`` and carry ``value[i]``. The split condition is
    ``x[feature] <= threshold`` → left child; missing (non-finite) values
    go right (fixed default direction).
    """

    max_depth: int = 6
    min_samples_leaf: int = 5
    min_child_weight: float = 1e-3
    reg_lambda: float = 1.0
    gamma: float = 0.0
    colsample: float = 1.0
    #: 0 keeps the historical strict argmax; the SAFE miners pass
    #: :data:`GAIN_TIE_RTOL` (see :func:`level_split_search`).
    tie_rtol: float = 0.0

    feature: np.ndarray = field(default=None, repr=False)
    threshold: np.ndarray = field(default=None, repr=False)
    threshold_bin: np.ndarray = field(default=None, repr=False)
    left: np.ndarray = field(default=None, repr=False)
    right: np.ndarray = field(default=None, repr=False)
    value: np.ndarray = field(default=None, repr=False)
    gain: np.ndarray = field(default=None, repr=False)
    n_samples: np.ndarray = field(default=None, repr=False)
    # Fit-time leaf assignment: ``fit_leaf_ids_[row]`` is the leaf node id
    # of every row that was in the training partition, -1 for rows the
    # caller excluded via ``rows=`` (subsampling). Consumed by the
    # boosting margin update; callers may clear it to free memory.
    fit_leaf_ids_: np.ndarray = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Growing
    # ------------------------------------------------------------------
    def fit(
        self,
        codes: np.ndarray,
        edges: "list[np.ndarray]",
        grad: np.ndarray,
        hess: np.ndarray,
        rng: "np.random.Generator | None" = None,
        rows: "np.ndarray | None" = None,
    ) -> "Tree":
        """Grow the tree on binned ``codes`` against ``grad``/``hess``.

        ``edges[j]`` holds the interior quantile edges of column ``j`` so
        that bin index ``b`` maps back to the raw threshold ``edges[j][b]``.
        ``rows``, when given, restricts training to that subset of row
        indices (boosting row subsampling): excluded rows are simply not
        part of any node partition, so they count toward *nothing* — not
        ``min_samples_leaf``, not histogram bins, not ``n_samples``.

        Growth is level-order. All histograms of one level are built in a
        single batched pass (see ``NodeHistogramBuilder``), and per split
        only the smaller child is accumulated from rows — its sibling's
        histogram is ``parent - smaller``. After growth,
        ``fit_leaf_ids_`` holds each partitioned row's leaf node id (and
        -1 for rows excluded via ``rows``), which is what lets the caller
        turn the margin update into a gather instead of a fresh descent.
        """
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        n_rows, n_cols = codes.shape
        grad = np.asarray(grad, dtype=np.float64)
        hess = np.asarray(hess, dtype=np.float64)
        # Fixed-width histogram layout: every feature gets a slot of
        # `stride` bins, so one level's histograms are a dense
        # (n_channels, n_nodes, n_cols, stride) block.
        stride = histogram_stride(edges)
        n_edges = np.array([len(e) for e in edges], dtype=np.int64)
        # Boundaries at or past a feature's missing code are vacuous
        # (n_edges <= stride - 2, so the trailing slot is always masked).
        boundary_ok = np.arange(stride)[None, :] <= n_edges[:, None]
        # With XGBoost-style stopping (min_samples_leaf == 0, only
        # min_child_weight binds) the per-bin count channel is never
        # consulted, so skip accumulating it entirely.
        with_counts = self.min_samples_leaf > 0
        builder = NodeHistogramBuilder(
            codes, stride, grad, hess, with_counts=with_counts
        )
        codes_f = builder.codes
        nodes: list[dict] = []

        def new_node(depth: int, idx: np.ndarray) -> int:
            g_sum = float(grad[idx].sum())
            h_sum = float(hess[idx].sum())
            nodes.append(
                {
                    "feature": -1,
                    "threshold": np.nan,
                    "threshold_bin": -1,
                    "left": -1,
                    "right": -1,
                    "value": -g_sum / (h_sum + self.reg_lambda),  # repro: ignore[div-guard] h_sum >= 0 and reg_lambda > 0
                    "gain": 0.0,
                    "n_samples": idx.size,
                    "_depth": depth,
                    "_idx": idx,
                    "_gsum": g_sum,
                    "_hsum": h_sum,
                }
            )
            return len(nodes) - 1

        def searchable(node_id: int) -> bool:
            node = nodes[node_id]
            return not (
                node["_depth"] >= self.max_depth
                or node["_idx"].size < 2 * self.min_samples_leaf
                or node["_hsum"] < 2 * self.min_child_weight
            )

        root_idx = (
            np.arange(n_rows) if rows is None else np.asarray(rows, dtype=np.int64)
        )
        root = new_node(0, root_idx)
        all_cols = np.arange(n_cols)
        n_sub = max(1, int(round(self.colsample * n_cols)))
        lam = self.reg_lambda
        # Level state: up to two position-aligned (node ids, histogram
        # block) groups — the directly-built smaller children (a zero-copy
        # leading view of the level's build block) and the subtracted
        # larger children. Subtraction happens bin-wise in histogram
        # domain (not on prefix sums, whose larger magnitudes would
        # amplify cancellation error in the gains).
        groups: "list[tuple[list[int], np.ndarray]]" = []
        if searchable(root):
            groups = [([root], builder.build_level([root_idx]))]
        scheduler = SubtractionScheduler(builder)
        while groups:
            scheduler.begin_level()
            for group_i, (ids, block) in enumerate(groups):
                m = len(ids)
                g_sums = np.array([nodes[i]["_gsum"] for i in ids])
                h_sums = np.array([nodes[i]["_hsum"] for i in ids])
                sizes = np.array([float(nodes[i]["_idx"].size) for i in ids])
                # Batched split search over the whole group (see
                # level_split_search): one cumsum scans all candidate
                # boundaries of all (node, feature) pairs and the block
                # stays intact — it is the subtraction parent for the
                # next level.
                if n_sub < n_cols and rng is not None:
                    col_mask = np.zeros((m, n_cols), dtype=bool)
                    for pos in range(m):
                        keep_cols = rng.choice(all_cols, size=n_sub, replace=False)
                        col_mask[pos, keep_cols] = True
                else:
                    col_mask = None
                best_flat, best_gains = level_split_search(
                    block,
                    g_sums,
                    h_sums,
                    sizes,
                    boundary_ok,
                    self.min_child_weight,
                    self.min_samples_leaf,
                    lam,
                    self.gamma,
                    with_counts,
                    col_mask=col_mask,
                    tie_rtol=self.tie_rtol,
                )
                for pos, node_id in enumerate(ids):
                    best_gain = float(best_gains[pos])
                    if not np.isfinite(best_gain) or best_gain <= 0:
                        continue
                    node = nodes[node_id]
                    idx = node["_idx"]
                    j, b = divmod(int(best_flat[pos]), stride)
                    col_edges = edges[j]
                    # bin b is the last bin that goes left; x <= edges[b]
                    # goes left. If b exceeds the interior edges (can only
                    # happen when the "real value vs missing" boundary is
                    # chosen), the threshold is +inf: every real value goes
                    # left, missing goes right.
                    threshold = float(col_edges[b]) if b < len(col_edges) else np.inf
                    go_left = codes_f[idx, j] <= b
                    left_idx = idx[go_left]
                    right_idx = idx[~go_left]
                    if left_idx.size == 0 or right_idx.size == 0:
                        continue
                    node["feature"] = j
                    node["threshold"] = threshold
                    node["threshold_bin"] = b
                    node["gain"] = best_gain
                    left_id = new_node(node["_depth"] + 1, left_idx)
                    right_id = new_node(node["_depth"] + 1, right_idx)
                    node["left"] = left_id
                    node["right"] = right_id
                    scheduler.add_split(
                        group_i,
                        pos,
                        (left_id, left_idx, searchable(left_id)),
                        (right_id, right_idx, searchable(right_id)),
                    )
            groups = scheduler.finish_level(groups)

        self.feature = np.array([n["feature"] for n in nodes], dtype=np.int64)
        self.threshold = np.array([n["threshold"] for n in nodes], dtype=np.float64)
        self.threshold_bin = np.array([n["threshold_bin"] for n in nodes], dtype=np.int64)
        self.left = np.array([n["left"] for n in nodes], dtype=np.int64)
        self.right = np.array([n["right"] for n in nodes], dtype=np.int64)
        self.value = np.array([n["value"] for n in nodes], dtype=np.float64)
        self.gain = np.array([n["gain"] for n in nodes], dtype=np.float64)
        self.n_samples = np.array([n["n_samples"] for n in nodes], dtype=np.int64)
        self.fit_leaf_ids_ = np.full(n_rows, -1, dtype=np.int64)
        for i, n in enumerate(nodes):
            if n["feature"] == -1:
                self.fit_leaf_ids_[n["_idx"]] = i
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        self._check_fitted()
        return int(self.feature.size)

    @property
    def n_leaves(self) -> int:
        self._check_fitted()
        return int((self.feature == -1).sum())

    def _check_fitted(self) -> None:
        if self.feature is None:
            raise NotFittedError("Tree not fitted")

    def _descend(self, X: np.ndarray) -> np.ndarray:
        """Route every row from the root to its leaf; returns node ids.

        The single traversal loop behind both :meth:`predict` and
        :meth:`apply`. Non-finite values (NaN and ±inf) are routed to the
        right branch explicitly — the fixed default direction, matching
        the training-time binning that maps every non-finite value to the
        per-column missing code. (NaN comparisons are already False, but
        ``-inf <= t`` and ``+inf <= +inf`` are True, so relying on the
        comparison alone would send infinities down the left branch the
        training partition never put them in.)
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            nid = node_ids[rows]
            xv = X[rows, self.feature[nid]]
            go_left = np.isfinite(xv) & (xv <= self.threshold[nid])
            node_ids[rows] = np.where(go_left, self.left[nid], self.right[nid])
            active[rows] = self.feature[node_ids[rows]] >= 0
        return node_ids

    def _descend_codes(self, codes: np.ndarray) -> np.ndarray:
        """Binned descent: route pre-binned rows to leaves via bin codes.

        ``codes`` must be binned with the *training* edges
        (``codes_from_edges_matrix(X, edges)``); a row goes left when its
        code is ``<= threshold_bin``. Missing codes exceed every valid
        boundary, so missing values fall right automatically. Bit-identical
        to :meth:`_descend` on the unbinned matrix.
        """
        self._check_fitted()
        node_ids = np.zeros(codes.shape[0], dtype=np.int64)
        active = self.feature[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            nid = node_ids[rows]
            go_left = codes[rows, self.feature[nid]] <= self.threshold_bin[nid]
            node_ids[rows] = np.where(go_left, self.left[nid], self.right[nid])
            active[rows] = self.feature[node_ids[rows]] >= 0
        return node_ids

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for raw (unbinned) input rows, vectorized."""
        return self.value[self._descend(X)]

    def predict_codes(self, codes: np.ndarray) -> np.ndarray:
        """Leaf values for rows pre-binned with the training edges."""
        return self.value[self._descend_codes(codes)]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id per row (for diagnostics)."""
        return self._descend(X)

    # ------------------------------------------------------------------
    # Structure export (what SAFE consumes)
    # ------------------------------------------------------------------
    def paths(self) -> list[TreePath]:
        """Root→leaf-parent paths as the paper defines them.

        For every internal node that is the parent of at least one leaf,
        emit the distinct split features encountered from the root down to
        and including that node, along with each feature's collected split
        values.
        """
        self._check_fitted()
        out: list[TreePath] = []
        if self.feature[0] == -1:  # single-leaf tree
            return out

        def is_leaf(i: int) -> bool:
            return self.feature[i] == -1

        # DFS carrying the (ordered distinct features, values) state.
        stack: list[tuple[int, tuple[int, ...], dict[int, tuple[float, ...]]]] = [
            (0, (), {})
        ]
        while stack:
            node, feats, values = stack.pop()
            f = int(self.feature[node])
            thr = float(self.threshold[node])
            if f in values:
                new_feats = feats
                new_values = dict(values)
                new_values[f] = values[f] + (thr,)
            else:
                new_feats = feats + (f,)
                new_values = dict(values)
                new_values[f] = (thr,)
            l, r = int(self.left[node]), int(self.right[node])
            if is_leaf(l) or is_leaf(r):
                out.append(TreePath(features=new_feats, split_values=new_values))
            for child in (l, r):
                if not is_leaf(child):
                    stack.append((child, new_feats, new_values))
        return out

    def feature_gains(self) -> dict[int, tuple[float, int]]:
        """Per-feature ``(total_gain, split_count)`` over internal nodes."""
        self._check_fitted()
        out: dict[int, tuple[float, int]] = {}
        for f, g in zip(self.feature, self.gain):
            if f < 0:
                continue
            total, count = out.get(int(f), (0.0, 0))
            out[int(f)] = (total + float(g), count + 1)
        return out

    def split_features(self) -> set[int]:
        """The set of features used anywhere in the tree."""
        self._check_fitted()
        return {int(f) for f in self.feature if f >= 0}
