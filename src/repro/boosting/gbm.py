"""Gradient boosting machine (the XGBoost stand-in).

SAFE uses this model three ways:

1. to *mine feature combinations* — the distinct split features along each
   root→leaf path of every tree (:meth:`GradientBoostingClassifier.paths`);
2. to *rank features* by average split gain
   (:attr:`GradientBoostingClassifier.feature_importances_`);
3. as one of the nine downstream evaluation classifiers (``"xgb"``).

The implementation is histogram-based second-order boosting with the
regularized split objective of Chen & Guestrin (2016): shrinkage, row
subsampling, column subsampling, and optional early stopping on a
validation set.

The training loop runs entirely on binned codes:

* the training matrix is quantile-binned once; each round's tree grows
  with histogram subtraction (only the smaller child of every split is
  accumulated — see ``boosting.tree``) and returns its fit-time leaf
  assignments, so the margin update is an indexed gather instead of a
  fresh descent over raw ``X``;
* row subsampling passes the kept row indices into the tree, so dropped
  rows are excluded from every node partition (they no longer count
  toward ``min_samples_leaf`` or histogram bins); their margin
  contribution comes from a binned descent over the pre-binned codes;
* the early-stopping eval set is binned once per fit with the training
  edges (``codes_from_edges_matrix``) and descended on integer codes each
  round — bit-identical to descending the raw floats;
* when early stopping triggers, ``trees_`` is truncated to
  ``best_iteration_ + 1``, so predictions come from the best validated
  model rather than one including the trailing ``early_stopping_rounds``
  worse rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..tabular.binning import codes_from_edges_matrix, quantile_codes_matrix
from .histogram import compact_codes, histogram_stride
from ..utils import as_float_matrix, as_label_vector, check_random_state
from .losses import get_loss
from .tree import Tree, TreePath


@dataclass
class GradientBoostingClassifier:
    """Binary gradient-boosted trees with logistic loss.

    Parameters mirror the common XGBoost names. Defaults are sized for the
    paper's benchmark-scale datasets; SAFE's combination-mining model uses
    a smaller configuration (see :class:`repro.core.SAFEConfig`).
    """

    n_estimators: int = 50
    learning_rate: float = 0.3
    max_depth: int = 4
    min_samples_leaf: int = 5
    min_child_weight: float = 1e-3
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample: float = 1.0
    #: Near-tie split determinism; 0 = historical strict argmax. The SAFE
    #: miners pass ``repro.boosting.tree.GAIN_TIE_RTOL`` so the in-memory
    #: and streaming growers resolve tied gains identically.
    tie_rtol: float = 0.0
    max_bins: int = 64
    early_stopping_rounds: "int | None" = None
    random_state: "int | None" = 0

    trees_: list = field(default_factory=list, repr=False)
    base_score_: float = field(default=0.0, repr=False)
    n_features_: int = field(default=0, repr=False)
    best_iteration_: "int | None" = field(default=None, repr=False)
    loss_name: str = "logistic"

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        if not 0 < self.learning_rate <= 1:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if not 0 < self.subsample <= 1 or not 0 < self.colsample <= 1:
            raise ConfigurationError("subsample/colsample must be in (0, 1]")
        if self.max_bins < 2:
            raise ConfigurationError("max_bins must be >= 2")

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> "GradientBoostingClassifier":
        """Fit on ``(X, y)``; optionally early-stop on ``eval_set``.

        Training is fully binned: ``X`` is quantile-coded once, each tree
        returns its fit-time leaf assignments for the margin gather, and
        ``eval_set`` is coded once with the training edges and descended
        on integer codes per round. With ``early_stopping_rounds`` set,
        ``trees_`` is truncated to ``best_iteration_ + 1`` after the loop
        so predictions come from the best validated model.
        """
        X = as_float_matrix(X)
        loss = get_loss(self.loss_name)
        if self.loss_name == "logistic":
            y = as_label_vector(y, X.shape[0])
        else:
            y = np.asarray(y, dtype=np.float64).ravel()
            if y.size != X.shape[0]:
                raise DataError("X and y row mismatch")
        rng = check_random_state(self.random_state)
        self.n_features_ = X.shape[1]
        codes, edges = quantile_codes_matrix(X, max_bins=self.max_bins)
        # One narrow copy for the whole fit (instead of one per tree
        # inside the histogram builder).
        stride = histogram_stride(edges)
        codes = compact_codes(codes, stride)
        self.base_score_ = loss.base_score(y)
        margin = np.full(X.shape[0], self.base_score_)

        eval_margin = None
        eval_codes = None
        if eval_set is not None:
            X_eval = as_float_matrix(eval_set[0])
            y_eval = np.asarray(eval_set[1], dtype=np.float64).ravel()
            if X_eval.shape[1] != self.n_features_:
                raise DataError("eval_set feature count mismatch")
            eval_margin = np.full(X_eval.shape[0], self.base_score_)
            # Bin the eval set once with the training edges; every round's
            # eval prediction is then a binned descent over int codes.
            eval_codes = compact_codes(codes_from_edges_matrix(X_eval, edges), stride)

        self.trees_ = []
        best_eval = np.inf
        rounds_since_best = 0
        self.best_iteration_ = None
        n_rows = X.shape[0]
        for it in range(self.n_estimators):
            grad, hess = loss.grad_hess(y, margin)
            rows = None
            if self.subsample < 1.0:
                keep = rng.random(n_rows) < self.subsample
                if not keep.any():
                    keep[rng.integers(0, n_rows)] = True
                rows = np.flatnonzero(keep)
            tree = Tree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                colsample=self.colsample,
                tie_rtol=self.tie_rtol,
            ).fit(codes, edges, grad, hess, rng=rng, rows=rows)
            self.trees_.append(tree)
            # Margin update: rows in the fit partition gather their leaf
            # directly; rows dropped by subsampling descend the pre-binned
            # codes (no raw-float descent anywhere in training).
            leaf_ids = tree.fit_leaf_ids_
            if rows is not None:
                dropped = leaf_ids < 0
                if dropped.any():
                    leaf_ids = leaf_ids.copy()
                    leaf_ids[dropped] = tree._descend_codes(codes[dropped])
            margin += self.learning_rate * tree.value[leaf_ids]
            tree.fit_leaf_ids_ = None
            if eval_margin is not None:
                eval_margin += self.learning_rate * tree.predict_codes(eval_codes)
                eval_loss = loss.loss(y_eval, eval_margin)
                if eval_loss < best_eval - 1e-9:
                    best_eval = eval_loss
                    self.best_iteration_ = it
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (
                        self.early_stopping_rounds is not None
                        and rounds_since_best >= self.early_stopping_rounds
                    ):
                        break
        if self.early_stopping_rounds is not None and self.best_iteration_ is not None:
            # Early stopping means *stopping at the best round*: drop the
            # trailing rounds grown while validation loss was worsening.
            del self.trees_[self.best_iteration_ + 1 :]
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self.trees_:
            raise NotFittedError("GradientBoostingClassifier not fitted")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw margin (log-odds for the logistic loss)."""
        self._check_fitted()
        X = as_float_matrix(X)
        if X.shape[1] != self.n_features_:
            raise DataError(
                f"X has {X.shape[1]} features, model was fit with {self.n_features_}"
            )
        margin = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            margin += self.learning_rate * tree.predict(X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` class probabilities."""
        loss = get_loss(self.loss_name)
        p1 = loss.transform(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.float64)

    # ------------------------------------------------------------------
    # Structure export (what SAFE consumes)
    # ------------------------------------------------------------------
    def paths(self) -> list[TreePath]:
        """All root→leaf-parent paths across all trees (paper's ``P``)."""
        self._check_fitted()
        out: list[TreePath] = []
        for tree in self.trees_:
            out.extend(tree.paths())
        return out

    def split_features(self) -> set[int]:
        """Union of features used as split features in any tree."""
        self._check_fitted()
        out: set[int] = set()
        for tree in self.trees_:
            out |= tree.split_features()
        return out

    def staged_decision_function(self, X: np.ndarray) -> "list[np.ndarray]":
        """Margins after each boosting round (for learning-curve plots)."""
        self._check_fitted()
        X = as_float_matrix(X)
        margin = np.full(X.shape[0], self.base_score_)
        out = []
        for tree in self.trees_:
            margin = margin + self.learning_rate * tree.predict(X)
            out.append(margin.copy())
        return out

    def dump_trees(self, feature_names: "tuple[str, ...] | None" = None) -> str:
        """Readable text dump of every tree (the interpretability view).

        Each internal node prints ``feature <= threshold`` with its gain;
        leaves print their weight contribution.
        """
        self._check_fitted()

        def name(f: int) -> str:
            if feature_names is not None and 0 <= f < len(feature_names):
                return str(feature_names[f])
            return f"x{f}"

        lines: list[str] = []
        for t_idx, tree in enumerate(self.trees_):
            lines.append(f"tree {t_idx}:")
            stack = [(0, 1)]
            while stack:
                node, depth = stack.pop()
                pad = "  " * depth
                f = int(tree.feature[node])
                if f < 0:
                    lines.append(f"{pad}leaf value={tree.value[node]:+.4f} "
                                 f"n={int(tree.n_samples[node])}")
                else:
                    lines.append(
                        f"{pad}{name(f)} <= {tree.threshold[node]:.6g} "
                        f"(gain={tree.gain[node]:.4f})"
                    )
                    stack.append((int(tree.right[node]), depth + 1))
                    stack.append((int(tree.left[node]), depth + 1))
        return "\n".join(lines)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Average gain per feature across all splits (XGBoost ``gain``)."""
        self._check_fitted()
        total = np.zeros(self.n_features_)
        count = np.zeros(self.n_features_)
        for tree in self.trees_:
            for f, (g, c) in tree.feature_gains().items():
                total[f] += g
                count[f] += c
        with np.errstate(invalid="ignore", divide="ignore"):
            avg = np.where(count > 0, total / np.maximum(count, 1), 0.0)
        return avg


@dataclass
class GradientBoostingRegressor(GradientBoostingClassifier):
    """Squared-loss variant sharing the whole training machinery."""

    loss_name: str = "squared"

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> "GradientBoostingRegressor":
        super().fit(X, y, eval_set=eval_set)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_function(X)
