"""Histogram accumulation for split finding.

Gradient boosting here is *histogram-based* (as in XGBoost's ``hist`` tree
method and LightGBM): each column is pre-binned into quantile codes once,
and per-node split search reduces to bincounts of gradient/hessian over
those codes. This keeps pure-numpy training fast enough for the paper's
benchmark scale.

Two layers live here:

* :class:`NodeHistogramBuilder` — the per-tree workspace the level-order
  growers (``boosting.tree.Tree``, ``models.tree.ClassificationTree``)
  run on. It builds the ``(2 + count)``-component histograms of *all
  nodes of one tree level in a single batched pass per column* (no
  ``np.repeat(weights, n_cols)`` temporaries — weights are gathered once
  per level and shared by every column's bincount), and supports the
  LightGBM subtraction trick: a child's histogram is
  ``parent - sibling``, so only the smaller child of each split is ever
  accumulated from rows.
* the scalar helpers (:func:`feature_histogram`, :func:`split_gain`,
  :func:`best_split_for_feature`) — the audited single-feature reference
  kept for tests and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.registry import (
    batched_kernel,
    chunk_mergeable,
    kernel_exempt,
    kernel_oracle,
)
from ..exceptions import DataError


@kernel_exempt("layout bookkeeping, not a numerical kernel")
def histogram_stride(edges: "list[np.ndarray]") -> int:
    """Fixed per-feature slot width of the histogram layout.

    Widest column's interior edges + one (``len(edges)+1`` value bins) +
    one dedicated missing bin; columns with fewer effective bins leave
    their tail slots empty.
    """
    return max(len(e) for e in edges) + 2 if edges else 2


@kernel_exempt("code remapping helper, not a numerical kernel")
def compact_codes(codes: np.ndarray, stride: int) -> np.ndarray:
    """Code matrix in the builder's preferred form: Fortran order (the
    per-column gathers stay contiguous) and uint8 whenever every code
    fits (``stride <= 256``), which keeps the whole matrix cache-resident
    across the many per-level gathers. Idempotent."""
    if int(stride) <= 256 and codes.dtype != np.uint8:
        return codes.astype(np.uint8, order="F")
    if not codes.flags.f_contiguous:
        return np.asfortranarray(codes)
    return codes


@kernel_exempt("associative merge helper for histogram partials, not a kernel")
def merge_histograms(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two histogram partials: elementwise sum.

    Gradient/hessian channels are float sums, so merging re-associates
    the additions — the result matches a single-pass histogram to ≤1e-9
    relative, not bit-for-bit. The count channel is exact (integers in
    float64 well below 2**53).
    """
    return a + b


@batched_kernel(oracle="feature_histogram")
@chunk_mergeable(merge=merge_histograms, exact=False)
def level_histogram_partial(
    codes: np.ndarray,
    slots: "np.ndarray | None",
    w0: np.ndarray,
    w1: np.ndarray,
    m: int,
    stride: int,
    with_counts: bool = True,
    rows: "np.ndarray | None" = None,
) -> np.ndarray:
    """Histogram block of one row chunk: ``(n_channels, m, n_cols, stride)``.

    The sufficient statistic of level-order split search: per (node,
    column, bin), the chunk's gradient sum, hessian sum and (optionally)
    row count. ``slots[i]`` is row ``i``'s node offset (``node * stride``);
    ``None`` means every row belongs to node 0, which keeps the single-node
    fast path's one up-front ``intp`` conversion. ``rows`` optionally
    gathers a subset of ``codes``'s rows (then ``slots``/``w0``/``w1``
    align with ``rows``, not with ``codes``).

    Partials over row chunks merge by :func:`merge_histograms`; the float
    weight channels re-associate, so streamed histograms match in-memory
    ones to ≤1e-9 relative (counts are exact).
    """
    n_cols = codes.shape[1]
    n_channels = 3 if with_counts else 2
    out = np.empty((n_channels, m, n_cols, stride))
    if m == 0:
        return out
    length = m * stride
    for j in range(n_cols):
        col = codes[:, j] if rows is None else codes[rows, j]
        if slots is None:
            # One up-front intp conversion instead of one per bincount.
            key = col.astype(np.intp)
        else:
            key = col + slots
        out[0, :, j, :] = np.bincount(
            key, weights=w0, minlength=length
        ).reshape(m, stride)
        out[1, :, j, :] = np.bincount(
            key, weights=w1, minlength=length
        ).reshape(m, stride)
        if with_counts:
            out[2, :, j, :] = np.bincount(key, minlength=length).reshape(
                m, stride
            )
    return out


class NodeHistogramBuilder:
    """Per-tree histogram workspace with level-batched builds + subtraction.

    A level's histograms are one ``(n_channels, m, n_cols, stride)``
    float64 block: channel 0 and 1 are the two weight channels
    (gradient/hessian for the boosting tree, total/positive weight for
    the classification tree); with ``with_counts=True`` channel 2 is the
    row count. Callers whose stopping rules never consult per-bin counts
    (XGBoost-style ``min_child_weight``-only stopping) drop the count
    channel and save a third of the accumulation work. Counts are kept
    in float64 — they are exact integers well below 2**53, so
    parent-minus-sibling subtraction stays exact for them.

    ``build_level`` accumulates the histograms of every requested node in
    one pass per column: the nodes' row indices are concatenated, each
    row is offset by its node's slot, and a single ``bincount`` per
    (column, channel) fills a contiguous level slice. Per-bin
    accumulation order equals each node's row order, so a built histogram
    is bit-identical to a per-node ``bincount`` over the same rows. The
    caller derives each remaining (larger) child as ``parent - sibling``
    with one vectorized subtraction per level — the histogram-subtraction
    trick: per split, rows of only the smaller child are ever touched.
    """

    def __init__(
        self,
        codes: np.ndarray,
        stride: int,
        w0: np.ndarray,
        w1: np.ndarray,
        with_counts: bool = True,
    ):
        if codes.ndim != 2:
            raise DataError("NodeHistogramBuilder expects a 2-D code matrix")
        if w0.shape != w1.shape or w0.size != codes.shape[0]:
            raise DataError("codes/weight length mismatch")
        self.n_channels = 3 if with_counts else 2
        self.codes = compact_codes(codes, stride)
        self.stride = int(stride)
        self.n_cols = codes.shape[1]
        self.w0 = w0
        self.w1 = w1

    @batched_kernel(oracle="feature_histogram")
    def build_level(self, idx_list: "list[np.ndarray]") -> np.ndarray:
        """Histograms of all nodes in ``idx_list``:
        ``(n_channels, m, n_cols, stride)``.

        Node ``i`` of the level occupies ``[:, i]``, so a group of nodes
        is a zero-copy prefix view and the level-batched split search can
        ``cumsum``/``argmax`` each node's ``(n_cols, stride)`` table
        without transposition.
        """
        m = len(idx_list)
        if m == 0:
            return np.empty((self.n_channels, 0, self.n_cols, self.stride))
        if m == 1:
            rows = idx_list[0]
            slot = None
        else:
            rows = np.concatenate(idx_list)
            sizes = [idx.size for idx in idx_list]
            slot = np.repeat(np.arange(m, dtype=np.int64) * self.stride, sizes)
        return level_histogram_partial(
            self.codes,
            slot,
            self.w0[rows],
            self.w1[rows],
            m,
            self.stride,
            with_counts=self.n_channels == 3,
            rows=rows,
        )


class SubtractionScheduler:
    """Per-level bookkeeping of the histogram-subtraction growth shared by
    the boosting and classification trees.

    The growers hand over each realized split's children (with their row
    partitions and whether each child will itself be split-searched); the
    scheduler accumulates the smaller children to build, remembers which
    larger siblings derive by parent-minus-sibling subtraction, and at
    level end materializes the next level's position-aligned
    ``(node ids, histogram block)`` groups: the directly-built children
    as a zero-copy leading view of the build block, and the subtracted
    children with one vectorized subtraction per parent group.
    """

    def __init__(self, builder: NodeHistogramBuilder):
        self.builder = builder

    def begin_level(self) -> None:
        self._build_search_idx: "list[np.ndarray]" = []  # entering next level
        self._build_only_idx: "list[np.ndarray]" = []  # needed only as siblings
        self._built_ids: list = []
        self._sub_ids: list = []
        # (parent group, parent pos, symbolic sibling ref); sibling refs
        # resolve once the build list is final.
        self._sub_specs: "list[tuple[int, int, tuple[str, int]]]" = []

    def add_split(
        self,
        group_i: int,
        pos: int,
        left: "tuple[object, np.ndarray, bool]",
        right: "tuple[object, np.ndarray, bool]",
    ) -> None:
        """Register a split: ``left``/``right`` are ``(node id, row
        indices, will-be-searched)``; ``(group_i, pos)`` locates the
        parent's histogram in the current level's groups."""
        l_search = left[2]
        r_search = right[2]
        if not (l_search or r_search):
            return
        # Accumulate only the smaller child from rows; the larger child's
        # histogram, when needed, is parent-minus-sibling.
        small, large = (left, right) if left[1].size <= right[1].size else (right, left)
        if small[2]:
            sibling_ref = ("search", len(self._build_search_idx))
            self._build_search_idx.append(small[1])
            self._built_ids.append(small[0])
        else:
            sibling_ref = ("only", len(self._build_only_idx))
            self._build_only_idx.append(small[1])
        if large[2]:
            self._sub_specs.append((group_i, pos, sibling_ref))
            self._sub_ids.append(large[0])

    def finish_level(self, groups: "list[tuple[list, np.ndarray]]") -> "list[tuple[list, np.ndarray]]":
        """Build this level's histograms and return the next level's groups."""
        built = self.builder.build_level(self._build_search_idx + self._build_only_idx)
        n_search = len(self._build_search_idx)
        new_groups: "list[tuple[list, np.ndarray]]" = []
        if self._built_ids:
            new_groups.append((self._built_ids, built[:, :n_search]))
        if self._sub_specs:
            subs = np.empty(
                (
                    self.builder.n_channels,
                    len(self._sub_specs),
                    self.builder.n_cols,
                    self.builder.stride,
                )
            )
            for group_i in range(len(groups)):
                dst = [
                    k for k, (g, __, __2) in enumerate(self._sub_specs) if g == group_i
                ]
                if not dst:
                    continue
                parent_pos = [self._sub_specs[k][1] for k in dst]
                sib_pos = [
                    pos if kind == "search" else n_search + pos
                    for kind, pos in (self._sub_specs[k][2] for k in dst)
                ]
                # One vectorized parent-minus-sibling per parent group.
                subs[:, dst] = groups[group_i][1][:, parent_pos] - built[:, sib_pos]
            new_groups.append((self._sub_ids, subs))
        return new_groups


@dataclass(frozen=True)
class SplitCandidate:
    """Best split found for one node: feature, bin, gain and child stats."""

    feature: int
    bin_index: int
    gain: float
    grad_left: float
    hess_left: float
    grad_right: float
    hess_right: float
    n_left: int
    n_right: int


@kernel_oracle
def feature_histogram(
    codes: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    n_bins: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (gradient sum, hessian sum, count) for one feature column."""
    if codes.size != grad.size or codes.size != hess.size:
        raise DataError("codes/grad/hess length mismatch")
    g = np.bincount(codes, weights=grad, minlength=n_bins)
    h = np.bincount(codes, weights=hess, minlength=n_bins)
    c = np.bincount(codes, minlength=n_bins)
    return g, h, c


@kernel_oracle
def split_gain(
    gl: np.ndarray,
    hl: np.ndarray,
    g_total: float,
    h_total: float,
    reg_lambda: float,
    gamma: float,
) -> np.ndarray:
    """Vectorized regularized gain for every left-prefix candidate.

    ``gain = 1/2 [G_L^2/(H_L+lam) + G_R^2/(H_R+lam) - G^2/(H+lam)] - gamma``
    — the split objective of the XGBoost paper the authors cite.
    """
    gr = g_total - gl
    hr = h_total - hl
    parent = g_total * g_total / (h_total + reg_lambda)  # repro: ignore[div-guard] hessian sums are >= 0 and reg_lambda > 0
    gain = 0.5 * (gl * gl / (hl + reg_lambda) + gr * gr / (hr + reg_lambda) - parent)  # repro: ignore[div-guard] hessian sums are >= 0 and reg_lambda > 0
    return gain - gamma


@kernel_oracle
def best_split_for_feature(
    codes: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    n_bins: int,
    reg_lambda: float,
    gamma: float,
    min_child_weight: float,
    min_samples_leaf: int,
) -> "SplitCandidate | None":
    """Scan all bin boundaries of one feature; return the best valid split.

    A split at bin ``b`` sends ``code <= b`` left. The last bin is the
    missing-value code, so it can never move left — missing values always
    follow the right child (a fixed default direction, documented in
    DESIGN.md).
    """
    g, h, c = feature_histogram(codes, grad, hess, n_bins)
    if n_bins < 2:
        return None
    # Candidate boundaries: after bins 0..n_bins-2 (never isolate only the
    # missing bin on the right artificially — that is still allowed and
    # simply means "missing vs rest").
    gl = np.cumsum(g)[:-1]
    hl = np.cumsum(h)[:-1]
    cl = np.cumsum(c)[:-1]
    g_total = float(g.sum())
    h_total = float(h.sum())
    n_total = int(c.sum())
    gains = split_gain(gl, hl, g_total, h_total, reg_lambda, gamma)
    cr = n_total - cl
    hr = h_total - hl
    valid = (
        (cl >= min_samples_leaf)
        & (cr >= min_samples_leaf)
        & (hl >= min_child_weight)
        & (hr >= min_child_weight)
    )
    if not valid.any():
        return None
    gains = np.where(valid, gains, -np.inf)
    b = int(np.argmax(gains))
    if not np.isfinite(gains[b]) or gains[b] <= 0:
        return None
    return SplitCandidate(
        feature=-1,  # caller fills in the real column index
        bin_index=b,
        gain=float(gains[b]),
        grad_left=float(gl[b]),
        hess_left=float(hl[b]),
        grad_right=float(g_total - gl[b]),
        hess_right=float(h_total - hl[b]),
        n_left=int(cl[b]),
        n_right=int(cr[b]),
    )
