"""Histogram accumulation for split finding.

Gradient boosting here is *histogram-based* (as in XGBoost's ``hist`` tree
method and LightGBM): each column is pre-binned into quantile codes once,
and per-node split search reduces to bincounts of gradient/hessian over
those codes. This keeps pure-numpy training fast enough for the paper's
benchmark scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError


@dataclass(frozen=True)
class SplitCandidate:
    """Best split found for one node: feature, bin, gain and child stats."""

    feature: int
    bin_index: int
    gain: float
    grad_left: float
    hess_left: float
    grad_right: float
    hess_right: float
    n_left: int
    n_right: int


def feature_histogram(
    codes: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    n_bins: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (gradient sum, hessian sum, count) for one feature column."""
    if codes.size != grad.size or codes.size != hess.size:
        raise DataError("codes/grad/hess length mismatch")
    g = np.bincount(codes, weights=grad, minlength=n_bins)
    h = np.bincount(codes, weights=hess, minlength=n_bins)
    c = np.bincount(codes, minlength=n_bins)
    return g, h, c


def split_gain(
    gl: np.ndarray,
    hl: np.ndarray,
    g_total: float,
    h_total: float,
    reg_lambda: float,
    gamma: float,
) -> np.ndarray:
    """Vectorized regularized gain for every left-prefix candidate.

    ``gain = 1/2 [G_L^2/(H_L+lam) + G_R^2/(H_R+lam) - G^2/(H+lam)] - gamma``
    — the split objective of the XGBoost paper the authors cite.
    """
    gr = g_total - gl
    hr = h_total - hl
    parent = g_total * g_total / (h_total + reg_lambda)
    gain = 0.5 * (gl * gl / (hl + reg_lambda) + gr * gr / (hr + reg_lambda) - parent)
    return gain - gamma


def best_split_for_feature(
    codes: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    n_bins: int,
    reg_lambda: float,
    gamma: float,
    min_child_weight: float,
    min_samples_leaf: int,
) -> "SplitCandidate | None":
    """Scan all bin boundaries of one feature; return the best valid split.

    A split at bin ``b`` sends ``code <= b`` left. The last bin is the
    missing-value code, so it can never move left — missing values always
    follow the right child (a fixed default direction, documented in
    DESIGN.md).
    """
    g, h, c = feature_histogram(codes, grad, hess, n_bins)
    if n_bins < 2:
        return None
    # Candidate boundaries: after bins 0..n_bins-2 (never isolate only the
    # missing bin on the right artificially — that is still allowed and
    # simply means "missing vs rest").
    gl = np.cumsum(g)[:-1]
    hl = np.cumsum(h)[:-1]
    cl = np.cumsum(c)[:-1]
    g_total = float(g.sum())
    h_total = float(h.sum())
    n_total = int(c.sum())
    gains = split_gain(gl, hl, g_total, h_total, reg_lambda, gamma)
    cr = n_total - cl
    hr = h_total - hl
    valid = (
        (cl >= min_samples_leaf)
        & (cr >= min_samples_leaf)
        & (hl >= min_child_weight)
        & (hr >= min_child_weight)
    )
    if not valid.any():
        return None
    gains = np.where(valid, gains, -np.inf)
    b = int(np.argmax(gains))
    if not np.isfinite(gains[b]) or gains[b] <= 0:
        return None
    return SplitCandidate(
        feature=-1,  # caller fills in the real column index
        bin_index=b,
        gain=float(gains[b]),
        grad_left=float(gl[b]),
        hess_left=float(hl[b]),
        grad_right=float(g_total - gl[b]),
        hess_right=float(h_total - hl[b]),
        n_left=int(cl[b]),
        n_right=int(cr[b]),
    )
