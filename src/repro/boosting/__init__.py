"""Gradient boosting substrate (the from-scratch XGBoost stand-in)."""

from .gbm import GradientBoostingClassifier, GradientBoostingRegressor
from .histogram import (
    NodeHistogramBuilder,
    SplitCandidate,
    best_split_for_feature,
    feature_histogram,
    level_histogram_partial,
    merge_histograms,
    split_gain,
)
from .losses import LogisticLoss, SquaredLoss, get_loss
from .stream import fit_gbm_streaming
from .tree import Tree, TreePath, level_split_search

__all__ = [
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LogisticLoss",
    "NodeHistogramBuilder",
    "SplitCandidate",
    "SquaredLoss",
    "Tree",
    "TreePath",
    "best_split_for_feature",
    "feature_histogram",
    "fit_gbm_streaming",
    "get_loss",
    "level_histogram_partial",
    "level_split_search",
    "merge_histograms",
    "split_gain",
]
