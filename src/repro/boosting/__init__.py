"""Gradient boosting substrate (the from-scratch XGBoost stand-in)."""

from .gbm import GradientBoostingClassifier, GradientBoostingRegressor
from .histogram import (
    NodeHistogramBuilder,
    SplitCandidate,
    best_split_for_feature,
    feature_histogram,
    split_gain,
)
from .losses import LogisticLoss, SquaredLoss, get_loss
from .tree import Tree, TreePath

__all__ = [
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LogisticLoss",
    "NodeHistogramBuilder",
    "SplitCandidate",
    "SquaredLoss",
    "Tree",
    "TreePath",
    "best_split_for_feature",
    "feature_histogram",
    "get_loss",
    "split_gain",
]
