"""Out-of-core gradient boosting: fit on row chunks at O(chunk + state) memory.

The in-memory :class:`~repro.boosting.gbm.GradientBoostingClassifier`
holds the full matrix, its binned codes, and per-node row-index arrays.
None of those fit when the training rows only exist as a chunk stream, so
the streaming grower restructures the same algorithm around *mergeable
sufficient statistics* plus a handful of flat memory-mapped scratch
arrays:

* **edges** come from per-column :class:`~repro.tabular.binning.QuantileSketch`
  partials (``sketch="exact"`` is bit-identical to the in-memory
  ``quantile_codes_matrix`` edges; ``sketch="merge"`` is the
  bounded-memory approximation);
* **codes** are written once into a Fortran-ordered uint8 memmap, so
  every later pass is a cheap page-in of O(chunk) bytes — the raw
  feature chunks are never revisited after the two up-front passes;
* each level's node histograms accumulate chunk-by-chunk through
  :func:`~repro.boosting.histogram.level_histogram_partial` /
  :func:`~repro.boosting.histogram.merge_histograms` — the same kernel
  the in-memory builder is a one-chunk caller of — and split selection
  is the shared :func:`~repro.boosting.tree.level_split_search`;
* per-row state (margin, gradient/hessian, current node id) lives in
  flat memmaps updated by chunked lookup-table passes; the per-node
  ``_idx`` arrays of the in-memory grower never exist.

Node numbering replicates the in-memory grower's exactly (children are
created in level split order; the next level visits the smaller,
directly-built children first, then the subtraction-derived larger ones
— decided by exact integer row counts), so fixed-seed workloads yield
structurally identical trees. Gradient/hessian sums travel through
histogram bins rather than per-row ``sum()`` calls, so leaf values and
gains match the in-memory fit to float re-association (≤1e-9 relative),
not bit-for-bit.

Unsupported in v1 (rejected with ``ConfigurationError``): row/column
subsampling, early stopping / eval sets, and layouts needing more than
256 codes per column (the uint8 scratch).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile

import numpy as np

from ..analysis.registry import inplace_mutator
from ..exceptions import ConfigurationError, DataError
from ..runtime.checkpoint import MISSING
from ..tabular.binning import (
    DEFAULT_SKETCH_CAPACITY,
    codes_from_edges_matrix,
    streamed_quantile_edges,
)
from ..utils import as_label_vector
from .gbm import GradientBoostingClassifier
from .histogram import histogram_stride, level_histogram_partial, merge_histograms
from .losses import get_loss
from .tree import Tree, level_split_search

#: Row-chunk size of the scratch-memmap passes (codes are uint8, so a
#: pass holds ~``_SCRATCH_ROWS * n_cols`` bytes of codes plus O(chunk)
#: float vectors).
_SCRATCH_ROWS = 1 << 18


#: Persisted per-tree array attributes; together they define a fitted tree.
_TREE_FIELDS = (
    "feature",
    "threshold",
    "threshold_bin",
    "left",
    "right",
    "value",
    "gain",
    "n_samples",
)


def _file_digest(path) -> str:
    """Content digest of a scratch file (binds snapshots to their memmaps)."""
    digest = hashlib.blake2b(digest_size=20)
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 22), b""):
            digest.update(block)
    return digest.hexdigest()


def _tree_state(tree: Tree) -> dict:
    return {name: getattr(tree, name) for name in _TREE_FIELDS}


def _tree_from_state(model: GradientBoostingClassifier, state: dict) -> Tree:
    tree = Tree(
        max_depth=model.max_depth,
        min_samples_leaf=model.min_samples_leaf,
        min_child_weight=model.min_child_weight,
        reg_lambda=model.reg_lambda,
        gamma=model.gamma,
        colsample=model.colsample,
    )
    for name in _TREE_FIELDS:
        setattr(tree, name, np.asarray(state[name]))
    tree.fit_leaf_ids_ = None
    return tree


def _tree_leaf_ids(tree: Tree, codes_block: np.ndarray) -> np.ndarray:
    """Leaf id per row of a code block, by vectorized level descent.

    Uses the same ``code <= threshold_bin`` comparison the streaming
    partition pass uses, so a replayed tree routes every row to exactly
    the leaf ``node_of_row`` held when the tree was grown.
    """
    nid = np.zeros(codes_block.shape[0], dtype=np.int64)
    pending = np.flatnonzero(tree.feature[nid] >= 0)
    while pending.size:
        cur = nid[pending]
        features = tree.feature[cur]
        go_left = (
            codes_block[pending, features] <= tree.threshold_bin[cur]
        )
        nid[pending] = np.where(go_left, tree.left[cur], tree.right[cur])
        pending = pending[tree.feature[nid[pending]] >= 0]
    return nid


def _check_streamable(model: GradientBoostingClassifier) -> None:
    if model.subsample != 1.0 or model.colsample != 1.0:  # repro: ignore[float-eq] config sentinels: 1.0 is stored verbatim, not computed
        raise ConfigurationError(
            "streaming fit supports subsample=1.0 and colsample=1.0 only"
        )
    if model.early_stopping_rounds is not None:
        raise ConfigurationError(
            "streaming fit does not support early stopping / eval sets"
        )


def fit_gbm_streaming(
    model: GradientBoostingClassifier,
    chunk_iter,
    n_rows: int,
    n_cols: int,
    *,
    edges: "list[np.ndarray] | None" = None,
    sketch: str = "merge",
    sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    scratch_dir: "str | None" = None,
    stats=None,
) -> GradientBoostingClassifier:
    """Fit ``model`` from a restartable chunk stream, out of core.

    ``chunk_iter`` is a zero-argument callable returning a fresh iterator
    of ``(rows, X_chunk, y_chunk)`` triples covering rows ``0..n_rows``
    in order, with ``rows`` a contiguous ``range``
    (``ChunkedDataset.iter_chunks`` fits directly). The stream is
    consumed twice (edges + code writing; once when ``edges`` is given);
    every later pass runs over the uint8 code memmap instead.

    ``scratch_dir`` hosts the memory-mapped scratch arrays (a private
    temporary directory, removed afterwards, when ``None``). Scratch disk
    is ~``n_rows * (n_cols + 29)`` bytes; resident memory stays
    O(chunk + histogram state) regardless of ``n_rows``.

    ``stats`` (a :class:`~repro.runtime.StatsCheckpointStore` or scoped
    view) makes the fit crash-resumable: the sketch edges, the binned
    code/label memmaps (digest-bound to a ``codes-ready`` snapshot so a
    torn scratch file is detected, not trusted), and every grown tree
    checkpoint as sufficient statistics. A resumed call restores the
    completed trees, rebuilds the margin by replaying them over the code
    memmap (the same per-element add order, hence bit-identical), and
    continues growing from the first missing tree.
    """
    _check_streamable(model)
    if n_rows < 1 or n_cols < 1:
        raise DataError("streaming fit needs n_rows >= 1 and n_cols >= 1")
    loss = get_loss(model.loss_name)
    if edges is None:
        def compute_edges():
            return streamed_quantile_edges(
                chunk_iter,
                n_cols,
                model.max_bins,
                sketch=sketch,
                capacity=sketch_capacity,
            )

        if stats is None:
            edges_state = compute_edges()
        else:
            edges_state = stats.run("edges", compute_edges)
        edges = edges_state[0]
    stride = histogram_stride(edges)
    if stride > 256:
        raise ConfigurationError(
            f"streaming fit needs <= 256 codes per column, got stride {stride}"
        )

    if scratch_dir is not None:
        scratch = scratch_dir
        own_scratch = False
    elif stats is not None:
        scratch = stats.scratch_dir("scratch")
        own_scratch = False  # lives until the store is cleared
    else:
        scratch = tempfile.mkdtemp(prefix="repro-gbm-stream-")
        own_scratch = True
    try:
        open_memmap = np.lib.format.open_memmap
        codes_path = f"{scratch}/codes.npy"
        y_path = f"{scratch}/y.npy"

        # A codes-ready snapshot says the binning pass completed; trust it
        # only if the scratch files still match their recorded digests
        # (a crash mid-write leaves a mismatch, which costs one re-bin).
        ready = MISSING
        if stats is not None:
            snapshot = stats.load("codes-ready")
            if snapshot is not MISSING:
                if (
                    int(snapshot["n_rows"]) == n_rows
                    and int(snapshot["n_cols"]) == n_cols
                    and os.path.exists(codes_path)
                    and os.path.exists(y_path)
                    and _file_digest(codes_path) == snapshot["codes_digest"]
                    and _file_digest(y_path) == snapshot["y_digest"]
                ):
                    ready = snapshot
                else:
                    stats.note_skip(
                        "codes-ready: scratch files missing or digest "
                        "mismatch; re-binning"
                    )
        if ready is not MISSING:
            codes = open_memmap(codes_path, mode="r+")
            y = open_memmap(y_path, mode="r+")
        else:
            codes = open_memmap(
                codes_path,
                mode="w+",
                dtype=np.uint8,
                shape=(n_rows, n_cols),
                fortran_order=True,
            )
            y = open_memmap(y_path, mode="w+", dtype=np.float64, shape=(n_rows,))
        margin = open_memmap(
            f"{scratch}/margin.npy", mode="w+", dtype=np.float64, shape=(n_rows,)
        )
        grad = open_memmap(
            f"{scratch}/grad.npy", mode="w+", dtype=np.float64, shape=(n_rows,)
        )
        hess = open_memmap(
            f"{scratch}/hess.npy", mode="w+", dtype=np.float64, shape=(n_rows,)
        )
        node_of_row = open_memmap(
            f"{scratch}/node.npy", mode="w+", dtype=np.int32, shape=(n_rows,)
        )

        if ready is not MISSING:
            y_total = float(ready["y_total"])
        else:
            # One pass: bin each chunk against the fitted edges, validate
            # and stash the labels, and accumulate the exact label sum
            # (sums of 0/1 floats are exact integers in any association
            # order, so the streamed base score is bit-identical to the
            # in-memory one).
            y_total = 0.0
            seen = 0
            for rows, X_chunk, y_chunk in chunk_iter():
                if y_chunk is None:
                    raise DataError("streaming fit needs labeled chunks")
                if rows.start != seen:
                    raise DataError("chunk stream must cover rows in order")
                if model.loss_name == "logistic":
                    y_chunk = as_label_vector(y_chunk, len(rows))
                else:
                    y_chunk = np.asarray(y_chunk, dtype=np.float64).ravel()
                codes[rows.start : rows.stop] = codes_from_edges_matrix(
                    np.asarray(X_chunk, dtype=np.float64), edges
                ).astype(np.uint8)
                y[rows.start : rows.stop] = y_chunk
                y_total += float(y_chunk.sum())
                seen = rows.stop
            if seen != n_rows:
                raise DataError(
                    f"chunk stream covered {seen} rows, expected {n_rows}"
                )
            if stats is not None:
                codes.flush()
                y.flush()
                stats.save(
                    "codes-ready",
                    {
                        "n_rows": n_rows,
                        "n_cols": n_cols,
                        "y_total": y_total,
                        "codes_digest": _file_digest(codes_path),
                        "y_digest": _file_digest(y_path),
                    },
                )

        model.n_features_ = n_cols
        # base_score is a function of mean(y) for both losses; feeding the
        # streamed mean back through the loss reuses its exact clipping.
        model.base_score_ = loss.base_score(np.asarray([y_total / n_rows]))
        model.best_iteration_ = None
        for lo in range(0, n_rows, _SCRATCH_ROWS):
            margin[lo : lo + _SCRATCH_ROWS] = model.base_score_
            node_of_row[lo : lo + _SCRATCH_ROWS] = 0

        model.trees_ = []
        start_tree = 0
        if stats is not None:
            while start_tree < model.n_estimators:
                state = stats.load(f"tree-{start_tree:04d}")
                if state is MISSING:
                    break
                model.trees_.append(_tree_from_state(model, state))
                start_tree += 1
            # Replay the restored trees over the code memmap: the margin
            # accumulates the same learning_rate * leaf_value terms in
            # the same per-element order the uninterrupted fit used, so
            # the resumed margin is bit-identical.
            for tree in model.trees_:
                values = tree.value
                for lo in range(0, n_rows, _SCRATCH_ROWS):
                    hi = min(lo + _SCRATCH_ROWS, n_rows)
                    leaf_ids = _tree_leaf_ids(tree, codes[lo:hi])
                    margin[lo:hi] += model.learning_rate * values[leaf_ids]
        for t in range(start_tree, model.n_estimators):
            for lo in range(0, n_rows, _SCRATCH_ROWS):
                hi = min(lo + _SCRATCH_ROWS, n_rows)
                g, h = loss.grad_hess(y[lo:hi], margin[lo:hi])
                grad[lo:hi] = g
                hess[lo:hi] = h
            tree = _grow_tree_streaming(
                model, codes, grad, hess, node_of_row, edges, stride, n_rows
            )
            model.trees_.append(tree)
            if stats is not None:
                stats.save(f"tree-{t:04d}", _tree_state(tree))
            # After growth every row's node id is its leaf: one gather
            # updates the margin, then the ids reset for the next round.
            values = tree.value
            for lo in range(0, n_rows, _SCRATCH_ROWS):
                hi = min(lo + _SCRATCH_ROWS, n_rows)
                margin[lo:hi] += model.learning_rate * values[node_of_row[lo:hi]]
                node_of_row[lo:hi] = 0
        return model
    finally:
        if own_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


@inplace_mutator
def _grow_tree_streaming(
    model: GradientBoostingClassifier,
    codes: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    node_of_row: np.ndarray,
    edges: "list[np.ndarray]",
    stride: int,
    n_rows: int,
) -> Tree:
    """Grow one tree level-order from chunked histogram accumulation.

    In-place contract: ``node_of_row`` is the caller-owned scratch
    memmap of per-row node assignments; each split level rewrites it
    chunk-at-a-time (that *is* the partition pass), and the caller
    resets it between trees.

    Mirrors :meth:`Tree.fit` decision for decision — same boundary masks,
    same shared :func:`level_split_search`, same child numbering and
    next-level ordering (smaller children first, by exact row counts) —
    but child gradient/hessian sums come from the level's merged
    histogram block instead of per-row ``sum()`` calls.
    """
    n_cols = codes.shape[1]
    lam = model.reg_lambda
    n_edges = np.array([len(e) for e in edges], dtype=np.int64)
    boundary_ok = np.arange(stride)[None, :] <= n_edges[:, None]
    # Counts are always accumulated (child sizes drive numbering parity
    # and the empty-child guard), but the split search only consults them
    # under the same condition the in-memory grower does.
    with_counts_search = model.min_samples_leaf > 0
    nodes: "list[dict]" = []

    def new_node(depth: int, g_sum: float, h_sum: float, n_samples: int) -> int:
        nodes.append(
            {
                "feature": -1,
                "threshold": np.nan,
                "threshold_bin": -1,
                "left": -1,
                "right": -1,
                "value": -g_sum / (h_sum + lam),  # repro: ignore[div-guard] h_sum >= 0 and reg_lambda > 0
                "gain": 0.0,
                "n_samples": n_samples,
                "_depth": depth,
                "_gsum": g_sum,
                "_hsum": h_sum,
            }
        )
        return len(nodes) - 1

    def searchable(node_id: int) -> bool:
        node = nodes[node_id]
        return not (
            node["_depth"] >= model.max_depth
            or node["n_samples"] < 2 * model.min_samples_leaf
            or node["_hsum"] < 2 * model.min_child_weight
        )

    g_root = 0.0
    h_root = 0.0
    for lo in range(0, n_rows, _SCRATCH_ROWS):
        hi = min(lo + _SCRATCH_ROWS, n_rows)
        g_root += float(grad[lo:hi].sum())
        h_root += float(hess[lo:hi].sum())
    root = new_node(0, g_root, h_root, n_rows)
    level: "list[int]" = [root] if searchable(root) else []

    while level:
        m = len(level)
        # Slot m is a trash slot absorbing rows whose node is not under
        # search this level (already-final leaves deeper in the tree).
        node_lut = np.full(len(nodes), m, dtype=np.int64)
        for pos, nid in enumerate(level):
            node_lut[nid] = pos
        block: "np.ndarray | None" = None
        for lo in range(0, n_rows, _SCRATCH_ROWS):
            hi = min(lo + _SCRATCH_ROWS, n_rows)
            slots = node_lut[node_of_row[lo:hi]] * stride
            part = level_histogram_partial(
                codes[lo:hi],
                slots,
                grad[lo:hi],
                hess[lo:hi],
                m + 1,
                stride,
                with_counts=True,
            )
            block = part if block is None else merge_histograms(block, part)
        block = block[:, :m]

        g_sums = np.array([nodes[i]["_gsum"] for i in level])
        h_sums = np.array([nodes[i]["_hsum"] for i in level])
        sizes = np.array([float(nodes[i]["n_samples"]) for i in level])
        best_flat, best_gains = level_split_search(
            block,
            g_sums,
            h_sums,
            sizes,
            boundary_ok,
            model.min_child_weight,
            model.min_samples_leaf,
            lam,
            model.gamma,
            with_counts_search,
            tie_rtol=model.tie_rtol,
        )

        split_parents: "list[int]" = []
        small_next: "list[int]" = []
        large_next: "list[int]" = []
        for pos, nid in enumerate(level):
            best_gain = float(best_gains[pos])
            if not np.isfinite(best_gain) or best_gain <= 0:
                continue
            node = nodes[nid]
            j, b = divmod(int(best_flat[pos]), stride)
            gl = float(block[0, pos, j, : b + 1].sum())
            hl = float(block[1, pos, j, : b + 1].sum())
            n_left = int(block[2, pos, j, : b + 1].sum())
            n_right = node["n_samples"] - n_left
            if n_left == 0 or n_right == 0:
                continue
            col_edges = edges[j]
            node["feature"] = j
            node["threshold"] = (
                float(col_edges[b]) if b < len(col_edges) else np.inf
            )
            node["threshold_bin"] = b
            node["gain"] = best_gain
            left_id = new_node(node["_depth"] + 1, gl, hl, n_left)
            right_id = new_node(
                node["_depth"] + 1, node["_gsum"] - gl, node["_hsum"] - hl, n_right
            )
            node["left"] = left_id
            node["right"] = right_id
            split_parents.append(nid)
            # The in-memory grower builds only the smaller child from rows
            # and derives the larger by subtraction, which puts all the
            # directly-built children ahead of the derived ones in the
            # next level's visit order. Row counts are exact integers on
            # both paths, so this ordering is reproduced deterministically.
            small, large = (
                (left_id, right_id) if n_left <= n_right else (right_id, left_id)
            )
            if searchable(small):
                small_next.append(small)
            if searchable(large):
                large_next.append(large)

        if split_parents:
            is_split = np.zeros(len(nodes), dtype=bool)
            feat_lut = np.zeros(len(nodes), dtype=np.int64)
            bin_lut = np.zeros(len(nodes), dtype=np.int64)
            left_lut = np.zeros(len(nodes), dtype=np.int32)
            right_lut = np.zeros(len(nodes), dtype=np.int32)
            for nid in split_parents:
                is_split[nid] = True
                feat_lut[nid] = nodes[nid]["feature"]
                bin_lut[nid] = nodes[nid]["threshold_bin"]
                left_lut[nid] = nodes[nid]["left"]
                right_lut[nid] = nodes[nid]["right"]
            for lo in range(0, n_rows, _SCRATCH_ROWS):
                hi = min(lo + _SCRATCH_ROWS, n_rows)
                nid_chunk = np.asarray(node_of_row[lo:hi])
                moving = np.flatnonzero(is_split[nid_chunk])
                if moving.size == 0:
                    continue
                nids = nid_chunk[moving]
                code_vals = codes[lo:hi][moving, feat_lut[nids]]
                go_left = code_vals <= bin_lut[nids]
                nid_chunk = nid_chunk.copy()
                nid_chunk[moving] = np.where(
                    go_left, left_lut[nids], right_lut[nids]
                )
                node_of_row[lo:hi] = nid_chunk
        level = small_next + large_next

    tree = Tree(
        max_depth=model.max_depth,
        min_samples_leaf=model.min_samples_leaf,
        min_child_weight=model.min_child_weight,
        reg_lambda=lam,
        gamma=model.gamma,
        colsample=model.colsample,
    )
    tree.feature = np.array([n["feature"] for n in nodes], dtype=np.int64)
    tree.threshold = np.array([n["threshold"] for n in nodes], dtype=np.float64)
    tree.threshold_bin = np.array([n["threshold_bin"] for n in nodes], dtype=np.int64)
    tree.left = np.array([n["left"] for n in nodes], dtype=np.int64)
    tree.right = np.array([n["right"] for n in nodes], dtype=np.int64)
    tree.value = np.array([n["value"] for n in nodes], dtype=np.float64)
    tree.gain = np.array([n["gain"] for n in nodes], dtype=np.float64)
    tree.n_samples = np.array([n["n_samples"] for n in nodes], dtype=np.int64)
    tree.fit_leaf_ids_ = None
    return tree
