"""Second-order losses for gradient boosting.

Each loss exposes gradients and hessians of the objective w.r.t. the raw
(margin) prediction, as in the XGBoost formulation the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from ..utils import sigmoid


@dataclass(frozen=True)
class LogisticLoss:
    """Binary cross-entropy on logits: grad = p - y, hess = p (1 - p)."""

    name: str = "logistic"

    def base_score(self, y: np.ndarray) -> float:
        """Log-odds of the prior positive rate (clipped away from 0/1)."""
        p = float(np.clip(np.mean(y), 1e-6, 1 - 1e-6))
        return float(np.log(p / (1.0 - p)))

    def grad_hess(self, y: np.ndarray, margin: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = sigmoid(margin)
        grad = p - y
        hess = np.maximum(p * (1.0 - p), 1e-16)
        return grad, hess

    def transform(self, margin: np.ndarray) -> np.ndarray:
        """Margin -> probability."""
        return sigmoid(margin)

    def loss(self, y: np.ndarray, margin: np.ndarray) -> float:
        p = np.clip(sigmoid(margin), 1e-12, 1 - 1e-12)
        return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


@dataclass(frozen=True)
class SquaredLoss:
    """Half squared error: grad = pred - y, hess = 1."""

    name: str = "squared"

    def base_score(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def grad_hess(self, y: np.ndarray, margin: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        grad = margin - y
        hess = np.ones_like(margin)
        return grad, hess

    def transform(self, margin: np.ndarray) -> np.ndarray:
        return margin

    def loss(self, y: np.ndarray, margin: np.ndarray) -> float:
        return float(0.5 * np.mean((margin - y) ** 2))


_LOSSES = {"logistic": LogisticLoss(), "squared": SquaredLoss()}


def get_loss(name: str) -> "LogisticLoss | SquaredLoss":
    """Look up a loss object by name (``"logistic"`` or ``"squared"``)."""
    try:
        return _LOSSES[name]
    except KeyError:
        raise DataError(f"unknown loss {name!r}; options: {sorted(_LOSSES)}") from None
