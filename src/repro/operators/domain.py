"""Domain-specific operators (§III: "operators that apply in specific
fields, we call them domain-specific operators, such as lag operators in
time series analysis").

These assume the *row order* of the dataset is meaningful (event time),
which is exactly the setting of the paper's transaction workloads. They
are registered like any other operator, demonstrating the framework's
"new operators should be easily added" requirement for a whole operator
*family* rather than a single function:

* ``lag1`` / ``lag2``     — the value k rows earlier (series head padded
  with the training mean);
* ``diff1``               — first difference ``x_t - x_{t-1}``;
* ``rolling_mean5`` / ``rolling_std5`` — trailing-window statistics;
* ``ewm``                 — exponentially weighted mean (span 5).

All are unary and stateful only in their padding value, so serving with a
stream of rows reproduces training semantics.
"""

from __future__ import annotations

import numpy as np

from .base import Operator, register_operator


def _train_mean(x: np.ndarray) -> float:
    finite = x[np.isfinite(x)]
    return float(finite.mean()) if finite.size else 0.0


class _LagOp(Operator):
    """Value ``k`` rows earlier; the first ``k`` rows use the fitted mean."""

    arity = 1
    k = 1
    state_schema = ("pad",)

    def fit(self, x):
        return {"pad": _train_mean(np.asarray(x, dtype=np.float64))}

    def apply(self, state, x):
        x = np.asarray(x, dtype=np.float64)
        pad = (state or {}).get("pad", 0.0)
        out = np.full_like(x, pad)
        if x.size > self.k:
            out[self.k :] = x[: -self.k]
        return out


class Lag1Op(_LagOp):
    name = "lag1"
    symbol = "lag1"
    k = 1


class Lag2Op(_LagOp):
    name = "lag2"
    symbol = "lag2"
    k = 2


class Diff1Op(Operator):
    """First difference; row 0 diffs against the fitted mean."""

    name = "diff1"
    arity = 1
    symbol = "diff1"
    state_schema = ("pad",)

    def fit(self, x):
        return {"pad": _train_mean(np.asarray(x, dtype=np.float64))}

    def apply(self, state, x):
        x = np.asarray(x, dtype=np.float64)
        pad = (state or {}).get("pad", 0.0)
        prev = np.empty_like(x)
        prev[0] = pad
        if x.size > 1:
            prev[1:] = x[:-1]
        return x - prev


class _RollingOp(Operator):
    """Trailing-window statistic over the last ``window`` rows (inclusive)."""

    arity = 1
    window = 5
    state_schema = ("pad",)

    def fit(self, x):
        return {"pad": _train_mean(np.asarray(x, dtype=np.float64))}

    @staticmethod
    def _stat(block: np.ndarray) -> float:
        raise NotImplementedError

    def apply(self, state, x):
        x = np.asarray(x, dtype=np.float64)
        pad = (state or {}).get("pad", 0.0)
        padded = np.concatenate([np.full(self.window - 1, pad), x])
        out = np.empty_like(x)
        for i in range(x.size):
            out[i] = self._stat(padded[i : i + self.window])
        return out


class RollingMean5Op(_RollingOp):
    name = "rolling_mean5"
    symbol = "rolling_mean5"

    @staticmethod
    def _stat(block):
        return float(block.mean())


class RollingStd5Op(_RollingOp):
    name = "rolling_std5"
    symbol = "rolling_std5"

    @staticmethod
    def _stat(block):
        return float(block.std())


class EwmOp(Operator):
    """Exponentially weighted mean with span 5 (alpha = 2/(span+1))."""

    name = "ewm"
    arity = 1
    symbol = "ewm"
    alpha = 2.0 / 6.0
    state_schema = ("pad",)

    def fit(self, x):
        return {"pad": _train_mean(np.asarray(x, dtype=np.float64))}

    def apply(self, state, x):
        x = np.asarray(x, dtype=np.float64)
        level = (state or {}).get("pad", 0.0)
        out = np.empty_like(x)
        for i, value in enumerate(x):
            if np.isfinite(value):
                level = self.alpha * value + (1 - self.alpha) * level
            out[i] = level
        return out


DOMAIN_OPERATORS = tuple(
    register_operator(cls())
    for cls in (Lag1Op, Lag2Op, Diff1Op, RollingMean5Op, RollingStd5Op, EwmOp)
)
