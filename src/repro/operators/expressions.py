"""Serializable expression trees — the representation of Ψ.

Every generated feature is an expression over *original* columns, e.g.
``(x3 / log(x7))``. This gives the framework the two industrial properties
the paper insists on:

* **interpretability** — :meth:`Expression.name` renders a human-readable
  formula using the dataset's own column names;
* **real-time inference** — :meth:`Expression.evaluate` maps a raw input
  matrix (even a single row) straight to the generated feature, and
  :meth:`Expression.to_dict` / :func:`expression_from_dict` round-trip the
  whole plan through JSON for deployment.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..analysis.registry import kernel_oracle
from ..exceptions import OperatorError, SchemaError
from .base import Operator, get_operator


class Expression(ABC):
    """A feature as a tree of operator applications over original columns."""

    @abstractmethod
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Compute the feature column from the raw original matrix."""

    @abstractmethod
    def name(self, column_names: "tuple[str, ...] | None" = None) -> str:
        """Readable formula; falls back to ``x{i}`` placeholders."""

    @abstractmethod
    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse of from_dict)."""

    @abstractmethod
    def original_indices(self) -> frozenset[int]:
        """Indices of original columns referenced anywhere in the tree."""

    @abstractmethod
    def depth(self) -> int:
        """Tree height; a bare variable has depth 0."""

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Canonical identity string (used for dedup and stability).

        Computed once — :class:`Var` and :class:`Applied` render it at
        construction (children's cached keys make that O(1) per node
        rather than O(depth · nodes) per lookup); the lazy fallback here
        covers third-party :class:`Expression` subclasses. Trees are
        immutable, so the cached rendering never goes stale.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = self.name(None)
            object.__setattr__(self, "_key", cached)
        return cached

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Expr {self.key}>"


@dataclass(frozen=True, eq=False)
class Var(Expression):
    """Reference to an original column by position."""

    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", f"x{self.index}")

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if not 0 <= self.index < X.shape[1]:
            raise SchemaError(
                f"expression references column {self.index}, input has {X.shape[1]}"
            )
        return X[:, self.index]

    def name(self, column_names=None) -> str:
        if column_names is not None and 0 <= self.index < len(column_names):
            return str(column_names[self.index])
        return f"x{self.index}"

    def to_dict(self) -> dict:
        return {"type": "var", "index": int(self.index)}

    def original_indices(self) -> frozenset[int]:
        return frozenset((self.index,))

    def depth(self) -> int:
        return 0


@dataclass(frozen=True, eq=False)
class Applied(Expression):
    """An operator applied to child expressions, with fitted state."""

    op_name: str
    children: tuple[Expression, ...]
    state: "dict | None" = None

    def __post_init__(self) -> None:
        op = get_operator(self.op_name)
        op.check_arity(len(self.children))
        object.__setattr__(
            self, "_key", op.format(*(c.key for c in self.children))
        )

    @property
    def operator(self) -> Operator:
        return get_operator(self.op_name)

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        cols = [child.evaluate(X) for child in self.children]
        return np.asarray(self.operator.apply(self.state, *cols), dtype=np.float64)

    def name(self, column_names=None) -> str:
        return self.operator.format(*(c.name(column_names) for c in self.children))

    def to_dict(self) -> dict:
        return {
            "type": "apply",
            "op": self.op_name,
            "state": self.state,
            "children": [c.to_dict() for c in self.children],
        }

    def original_indices(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for child in self.children:
            out |= child.original_indices()
        return out

    def depth(self) -> int:
        return 1 + max(c.depth() for c in self.children)


def expression_from_dict(payload: dict) -> Expression:
    """Rebuild an :class:`Expression` from its ``to_dict`` payload."""
    kind = payload.get("type")
    if kind == "var":
        return Var(index=int(payload["index"]))
    if kind == "apply":
        children = tuple(expression_from_dict(c) for c in payload["children"])
        return Applied(op_name=payload["op"], children=children, state=payload.get("state"))
    raise OperatorError(f"cannot parse expression payload of type {kind!r}")


def expression_from_json(text: str) -> Expression:
    return expression_from_dict(json.loads(text))


def fit_applied(
    op: "Operator | str",
    children: tuple[Expression, ...],
    X_train: np.ndarray,
) -> Applied:
    """Fit a (possibly stateful) operator on training data and wrap it.

    The children are evaluated on ``X_train``, the operator's ``fit``
    learns its state from those columns, and the resulting
    :class:`Applied` node is ready for arbitrary future inputs.
    """
    if isinstance(op, str):
        op = get_operator(op)
    op.check_arity(len(children))
    cols = [child.evaluate(X_train) for child in children]
    state = op.fit(*cols)
    return Applied(op_name=op.name, children=children, state=state)


@kernel_oracle
def evaluate_expressions(
    expressions: "list[Expression]",
    X: np.ndarray,
) -> np.ndarray:
    """Evaluate a list of expressions into an ``(n, len(expressions))`` block.

    This is the audited scalar reference: each tree is evaluated
    independently via :meth:`Expression.evaluate`. The production paths
    (pipeline, serving) use :func:`repro.operators.engine.evaluate_forest`,
    which shares work across trees and must stay bit-identical to this.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    out = np.empty((X.shape[0], len(expressions)), dtype=np.float64)
    for j, expr in enumerate(expressions):
        out[:, j] = expr.evaluate(X)
    return out
