"""Binary operators: arithmetic, logical connectives, GroupByThen*.

The four basic arithmetic operators are the Section V experiment set.
Division is *protected* (zero denominators produce 0) so generated columns
stay finite; the paper treats ``÷`` as non-commutative, which the
generation stage honours by emitting both argument orders.

Logical connectives follow Section III's catalogue and operate on
booleanized inputs (nonzero ⇒ true), yielding 0/1 columns.

GroupByThen* operators mirror their SQL namesakes: the first argument is
the *grouping key* (discretized to equal-frequency bins at fit time) and
the second is the *value* whose per-group statistic is emitted. Fitted
state stores the bin edges and the per-group statistics so transform works
row-at-a-time at serving time (real-time inference requirement).
"""

from __future__ import annotations

import numpy as np

from ..tabular.binning import codes_from_edges, equal_frequency_edges
from .base import Operator, register_operator


class AddOp(Operator):
    name = "add"
    arity = 2
    commutative = True
    symbol = "+"
    batchable = True
    rowwise = True
    # add(x, x) is 2x: linearly redundant with its child.
    degenerate_on_equal_children = True

    def apply(self, state, a, b):
        return a + b


class SubOp(Operator):
    name = "sub"
    arity = 2
    commutative = False
    symbol = "-"
    batchable = True
    rowwise = True
    degenerate_on_equal_children = True  # x - x == 0

    def apply(self, state, a, b):
        return a - b


class MulOp(Operator):
    name = "mul"
    arity = 2
    commutative = True
    symbol = "*"
    batchable = True
    rowwise = True

    def apply(self, state, a, b):
        return a * b


class DivOp(Operator):
    """Protected division: zero denominators yield 0."""

    name = "div"
    arity = 2
    commutative = False
    symbol = "/"
    batchable = True
    rowwise = True
    # Protected against exact 0 only; a subnormal denominator overflows.
    introduces_inf = True
    degenerate_on_equal_children = True  # x / x is 1 (or 0 at x == 0)

    def apply(self, state, a, b):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        a, b = np.broadcast_arrays(a, b)
        out = np.zeros(b.shape, dtype=np.float64)
        nz = b != 0
        out[nz] = a[nz] / b[nz]
        return out


def _boolean(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64) != 0


class _LogicalOp(Operator):
    """Base for two-place logical connectives over booleanized inputs."""

    arity = 2
    batchable = True
    rowwise = True
    abstract_bounds = (0.0, 1.0)
    # `x != 0` is defined for NaN (False), and every connective of a
    # subtree with itself collapses to a constant or to the child.
    absorbs_nan = True
    degenerate_on_equal_children = True

    def table(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def apply(self, state, a, b):
        return self.table(_boolean(a), _boolean(b)).astype(np.float64)


class AndOp(_LogicalOp):
    name = "and"
    commutative = True
    symbol = "and"

    def table(self, p, q):
        return p & q


class OrOp(_LogicalOp):
    name = "or"
    commutative = True
    symbol = "or"

    def table(self, p, q):
        return p | q


class NandOp(_LogicalOp):
    """Alternative denial (Sheffer stroke)."""

    name = "nand"
    commutative = True
    symbol = "nand"

    def table(self, p, q):
        return ~(p & q)


class NorOp(_LogicalOp):
    """Joint denial."""

    name = "nor"
    commutative = True
    symbol = "nor"

    def table(self, p, q):
        return ~(p | q)


class ImpliesOp(_LogicalOp):
    """Material conditional ``p -> q``."""

    name = "implies"
    commutative = False
    symbol = "implies"

    def table(self, p, q):
        return ~p | q


class ConverseOp(_LogicalOp):
    """Converse implication ``p <- q``."""

    name = "converse"
    commutative = False
    symbol = "converse"

    def table(self, p, q):
        return p | ~q


class IffOp(_LogicalOp):
    """Biconditional ``p <-> q``."""

    name = "iff"
    commutative = True
    symbol = "iff"

    def table(self, p, q):
        return ~(p ^ q)


class XorOp(_LogicalOp):
    name = "xor"
    commutative = True
    symbol = "xor"

    def table(self, p, q):
        return p ^ q


class _GroupByThenOp(Operator):
    """Base for SQL-style GroupByThen<stat>(key, value) operators."""

    arity = 2
    commutative = False
    n_key_bins = 10
    state_schema = ("edges", "groups", "fallback")
    # Output values come from the fitted table, not the serve columns:
    # non-finite serve input selects a bin, it never reaches the output.
    absorbs_nan = True
    absorbs_inf = True

    @staticmethod
    def _stat(values: np.ndarray) -> float:
        raise NotImplementedError

    def fit(self, key, value):
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)
        edges = equal_frequency_edges(key, self.n_key_bins)
        codes = codes_from_edges(key, edges)
        groups: dict[int, float] = {}
        for code in np.unique(codes):
            groups[int(code)] = float(self._stat(value[codes == code]))
        finite_vals = value[np.isfinite(value)]
        fallback = float(self._stat(finite_vals)) if finite_vals.size else 0.0
        return {
            "edges": edges.tolist(),
            "groups": {str(k): v for k, v in groups.items()},
            "fallback": fallback,
        }

    def apply(self, state, key, value):
        state = state or {"edges": [], "groups": {}, "fallback": 0.0}
        edges = np.asarray(state["edges"], dtype=np.float64)
        codes = codes_from_edges(np.asarray(key, dtype=np.float64), edges)
        # Codes are bounded by len(edges) + 1 (the missing-value code), so
        # a dense lookup table replaces the per-row dict scan.
        table = np.full(edges.size + 2, float(state["fallback"]))
        for code_str, stat in state["groups"].items():
            code = int(code_str)
            if 0 <= code < table.size:
                table[code] = stat
        return table[codes]


class GroupByThenMaxOp(_GroupByThenOp):
    name = "groupby_max"
    symbol = "groupby_max"

    @staticmethod
    def _stat(values):
        finite = values[np.isfinite(values)]
        return finite.max() if finite.size else 0.0


class GroupByThenMinOp(_GroupByThenOp):
    name = "groupby_min"
    symbol = "groupby_min"

    @staticmethod
    def _stat(values):
        finite = values[np.isfinite(values)]
        return finite.min() if finite.size else 0.0


class GroupByThenAvgOp(_GroupByThenOp):
    name = "groupby_avg"
    symbol = "groupby_avg"

    @staticmethod
    def _stat(values):
        finite = values[np.isfinite(values)]
        return finite.mean() if finite.size else 0.0


class GroupByThenStdevOp(_GroupByThenOp):
    name = "groupby_std"
    symbol = "groupby_std"

    @staticmethod
    def _stat(values):
        finite = values[np.isfinite(values)]
        return finite.std() if finite.size else 0.0


class GroupByThenCountOp(_GroupByThenOp):
    name = "groupby_count"
    symbol = "groupby_count"

    @staticmethod
    def _stat(values):
        return float(values.size)


BINARY_OPERATORS = tuple(
    register_operator(cls())
    for cls in (
        AddOp,
        SubOp,
        MulOp,
        DivOp,
        AndOp,
        OrOp,
        NandOp,
        NorOp,
        ImpliesOp,
        ConverseOp,
        IffOp,
        XorOp,
        GroupByThenMaxOp,
        GroupByThenMinOp,
        GroupByThenAvgOp,
        GroupByThenStdevOp,
        GroupByThenCountOp,
    )
)
