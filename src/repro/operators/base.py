"""Operator abstraction and registry.

Section III of the paper requires that "an applicable automatic feature
engineering algorithm framework should not limit operators and new
operators should be easily added". This module provides:

* :class:`Operator` — the extension point. An operator has a name, an
  arity, a commutativity flag (non-commutative operators such as ``÷`` are
  effectively *two* operators, handled by generating both argument orders),
  an optional ``fit`` step for stateful operators (normalizers,
  discretizers, GroupByThen*), and a pure ``apply``.
* a process-global registry with :func:`register_operator` /
  :func:`get_operator` / :func:`available_operators`.

Operator state must be JSON-serializable (dicts of lists/floats) so fitted
feature-generation plans can be persisted and served for the paper's
*real-time inference* requirement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from ..exceptions import OperatorError


class Operator(ABC):
    """Base class for all feature-construction operators.

    Subclasses set the class attributes and implement :meth:`apply`;
    stateful operators additionally override :meth:`fit`.
    """

    #: Registry key; unique across the process.
    name: str = ""
    #: Number of input columns consumed.
    arity: int = 1
    #: Whether argument order matters. Non-commutative operators are applied
    #: to each ordered arrangement of a combination.
    commutative: bool = False
    #: Human-oriented infix/function symbol used by Expression.format.
    symbol: str = ""
    #: Whether :meth:`apply` is a columnwise kernel that may be called on
    #: ``(n, m)`` *batches* (one column per arrangement) and produce the
    #: same result as m independent 1-D calls. The built-in stateless
    #: operators opt in (they are elementwise or stack on a fresh axis);
    #: the conservative default keeps unaudited extensions on the
    #: always-correct per-expression path in batched generation.
    batchable: bool = False
    #: Whether output row ``i`` depends only on input row ``i`` — no
    #: cross-row coupling (elementwise arithmetic, logical connectives,
    #: conditionals, per-row reductions over the arguments). Row-wise
    #: *stateless* operators are exactly the set the out-of-core
    #: streaming fit can evaluate chunk-at-a-time with results identical
    #: to a full-matrix evaluation; cross-row operators (lags, rolling
    #: windows, group statistics) and stateful operators keep the
    #: conservative default and are rejected by the streaming path.
    rowwise: bool = False

    # -- abstract-interpretation annotations (repro.analysis.plan) -----
    #: Static output bounds (lo, hi) holding for *any* input, or None.
    #: Finite bounds also certify the output carries no ±inf.
    abstract_bounds: "tuple[float, float] | None" = None
    #: Can the operator *introduce* NaN / ±inf on finite input
    #: (div by 0, log of 0, ...)? Propagation from inputs is automatic.
    introduces_nan: bool = False
    introduces_inf: bool = False
    #: Output is defined for NaN input (comparisons, binning with a
    #: missing-value code): input NaN does not propagate to the output.
    absorbs_nan: bool = False
    #: Output does not depend on input magnitude (table lookups): input
    #: ±inf does not propagate. Finite ``abstract_bounds`` imply this.
    absorbs_inf: bool = False
    #: The subtree collapses to a constant or to its own child when all
    #: children are the identical expression (x - x, x / x, x XOR x,
    #: min(x, x, x), ...): a well-formed plan should not contain it.
    degenerate_on_equal_children: bool = False
    #: Keys the fitted state dict must carry (stateful operators only);
    #: the plan validator rejects saved states missing any of them.
    state_schema: "tuple[str, ...]" = ()

    def abstract_transfer(
        self, domains: "tuple", state: "dict | None" = None
    ) -> "tuple[float, float, bool, bool] | None":
        """Optional per-operator interval transfer for the plan validator.

        ``domains`` holds one ``(lo, hi, may_nan, may_inf)`` tuple per
        child. Return the output tuple, or None to use the generic
        transfer driven by the class annotations above. Plain tuples keep
        this module import-free of the analysis package.
        """
        return None

    def fit(self, *cols: np.ndarray) -> "dict | None":
        """Learn serializable state from training columns (default: none)."""
        return None

    @property
    def is_stateful(self) -> bool:
        """True when :meth:`fit` is overridden (fitted state drives apply)."""
        return type(self).fit is not Operator.fit

    @abstractmethod
    def apply(self, state: "dict | None", *cols: np.ndarray) -> np.ndarray:
        """Compute the generated column from input columns (+ fitted state)."""

    # ------------------------------------------------------------------
    def check_arity(self, n: int) -> None:
        if n != self.arity:
            raise OperatorError(
                f"operator {self.name!r} takes {self.arity} inputs, got {n}"
            )

    def format(self, *operands: str) -> str:
        """Render a readable expression string, e.g. ``(x1 + x2)``."""
        is_infix_symbol = 0 < len(self.symbol) <= 3 and not any(
            ch.isalnum() or ch == "_" for ch in self.symbol
        )
        if self.arity == 2 and is_infix_symbol:
            return f"({operands[0]} {self.symbol} {operands[1]})"
        inner = ", ".join(operands)
        return f"{self.symbol or self.name}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Operator {self.name} arity={self.arity}>"


_REGISTRY: dict[str, Operator] = {}


def register_operator(op: Operator, overwrite: bool = False) -> Operator:
    """Add an operator instance to the global registry.

    Registering a duplicate name without ``overwrite=True`` raises, so user
    extensions cannot silently shadow the built-in catalogue.
    """
    if not op.name:
        raise OperatorError("operator must define a non-empty name")
    if op.arity < 1:
        raise OperatorError(f"operator {op.name!r} has invalid arity {op.arity}")
    if op.name in _REGISTRY and not overwrite:
        raise OperatorError(f"operator {op.name!r} already registered")
    _REGISTRY[op.name] = op
    return op


def get_operator(name: str) -> Operator:
    """Look up a registered operator by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OperatorError(
            f"unknown operator {name!r}; known: {sorted(_REGISTRY)[:20]}"
        ) from None


def available_operators(arity: "int | None" = None) -> list[str]:
    """Names of registered operators, optionally filtered by arity."""
    names = sorted(_REGISTRY)
    if arity is None:
        return names
    return [n for n in names if _REGISTRY[n].arity == arity]


def resolve_operators(names: Iterable[str]) -> list[Operator]:
    """Map operator names to instances, validating each."""
    return [get_operator(n) for n in names]


#: The experiment operator set of Section V: the four basic arithmetic ops.
PAPER_OPERATOR_SET: tuple[str, ...] = ("add", "sub", "mul", "div")
