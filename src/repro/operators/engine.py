"""Batched expression-evaluation engine: CSE-cached forest evaluation.

The scalar path (:meth:`Expression.evaluate`) re-walks every tree from the
leaves for each evaluation — each :class:`Var` re-casts the whole input
matrix and each shared subtree is recomputed once per parent. That is fine
as an audited reference but quadratic-ish in practice: the pipeline
evaluates the same trees while fitting operators (``fit_applied``), again
to build the candidate pool, and again on the validation set.

:class:`EvalCache` memoizes subtree *columns* for **one** input matrix:

* the ``float64`` cast/reshape of the matrix happens once, in
  ``__init__``, instead of once per ``Var`` evaluation;
* each distinct subtree is computed exactly once and shared by every
  expression that contains it (common-subexpression elimination);
* :func:`evaluate_forest` preallocates the ``(n, k)`` output block and
  fills it from the cache.

Cache key / invalidation contract
---------------------------------
The memo key is :attr:`Expression.key` — the canonical rendering of the
tree over ``x{i}`` placeholders. The key does **not** encode fitted
operator state, so the cache additionally remembers a *state signature*
of the whole producing tree (every :class:`Applied` node's ``state``,
root and descendants, rendered once per expression object) and
recomputes on a hit whose signature differs — two same-shaped trees
fitted on different data never share a column. Third-party
:class:`Expression` subclasses are assumed stateless (their identity
must be fully carried by ``key``). Within one SAFE fit the guard never
fires: generation dedups by key and every fit sees the same training
matrix, so equal keys imply equal state.

A cache is bound to the matrix passed at construction and must never be
used with another matrix — there is no content invalidation. Create one
cache per matrix (the pipeline keeps one for the training matrix and one
for the validation matrix, both alive across iterations) and call
:meth:`EvalCache.retain` to prune entries no longer reachable from the
surviving expressions when memory matters.

Results are bit-identical to the scalar reference: the engine calls the
same ``Operator.apply`` kernels on the same (cached) child columns.
"""

from __future__ import annotations

import json

import numpy as np

from ..analysis.registry import batched_kernel, inplace_mutator
from ..exceptions import SchemaError
from .expressions import Applied, Expression, Var

_MISSING = object()


def _state_signature(expr: Expression) -> "tuple | None":
    """Hashable rendering of every fitted state in the tree (None when the
    whole subtree is stateless — the common case). Cached on the
    expression object, which is immutable."""
    sig = expr.__dict__.get("_state_sig", _MISSING)
    if sig is not _MISSING:
        return sig
    sig = None
    if isinstance(expr, Applied):
        child_sigs = tuple(_state_signature(c) for c in expr.children)
        if expr.state is not None or any(s is not None for s in child_sigs):
            sig = (json.dumps(expr.state, sort_keys=True), child_sigs)
    object.__setattr__(expr, "_state_sig", sig)
    return sig


def prepare_matrix(X: np.ndarray) -> np.ndarray:
    """The one float64 cast + single-row reshape shared by the engine."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    return X


class EvalCache:
    """Memo of expression-subtree columns for one input matrix.

    See the module docstring for the key/invalidation contract.
    """

    def __init__(self, X: np.ndarray) -> None:
        self.X = prepare_matrix(X)
        self._columns: dict[str, np.ndarray] = {}
        self._states: dict[str, "dict | None"] = {}

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, expr: Expression) -> bool:
        return expr.key in self._columns

    # ------------------------------------------------------------------
    def column(self, expr: Expression) -> np.ndarray:
        """The expression's column on the bound matrix, computed at most once."""
        key = expr.key
        col = self._columns.get(key)
        if col is not None and self._states.get(key) != _state_signature(expr):
            col = None  # same key, different fitted state: do not share
        if col is None:
            col = self._compute(expr)
            self._columns[key] = col
            self._states[key] = _state_signature(expr)
        return col

    def put(self, expr: Expression, column: np.ndarray) -> None:
        """Store an externally computed column (the batched generation path)."""
        self._columns[expr.key] = column
        self._states[expr.key] = _state_signature(expr)

    def retain(self, expressions: "list[Expression] | tuple[Expression, ...]") -> None:
        """Drop every entry not reachable from ``expressions``."""
        keep: set[str] = set()
        stack: list[Expression] = list(expressions)
        while stack:
            expr = stack.pop()
            if expr.key in keep:
                continue
            keep.add(expr.key)
            if isinstance(expr, Applied):
                stack.extend(expr.children)
        self._columns = {k: v for k, v in self._columns.items() if k in keep}
        self._states = {k: v for k, v in self._states.items() if k in keep}

    # ------------------------------------------------------------------
    def _compute(self, expr: Expression) -> np.ndarray:
        if isinstance(expr, Var):
            if not 0 <= expr.index < self.X.shape[1]:
                raise SchemaError(
                    f"expression references column {expr.index}, "
                    f"input has {self.X.shape[1]}"
                )
            return self.X[:, expr.index]
        if isinstance(expr, Applied):
            cols = [self.column(child) for child in expr.children]
            return np.asarray(
                expr.operator.apply(expr.state, *cols), dtype=np.float64
            )
        # Third-party Expression subclass: audited scalar path, still cached.
        return np.asarray(expr.evaluate(self.X), dtype=np.float64)


@batched_kernel(oracle="evaluate_expressions")
@inplace_mutator
def batch_populate_cache(
    cache: EvalCache, expressions: "list[Expression]"
) -> None:
    """Materialize stateless batchable :class:`Applied` columns in batch.

    Groups the not-yet-cached stateless nodes by operator and applies
    each operator once to the stacked ``(n, m)`` block of child columns
    (m = number of such nodes), storing the resulting columns in
    ``cache``. Stateful, non-batchable, and already-cached nodes are left
    for lazy per-expression evaluation. Used by ``generate_features``
    and to rebuild the pipeline's cache after parallel generation.
    """
    groups: dict[str, list[Applied]] = {}
    for expr in expressions:
        if (
            isinstance(expr, Applied)
            and expr.state is None
            and not expr.operator.is_stateful
            and expr.operator.batchable
            and expr not in cache
        ):
            groups.setdefault(expr.op_name, []).append(expr)
    for exprs in groups.values():
        op = exprs[0].operator
        blocks = [
            np.stack([cache.column(e.children[a]) for e in exprs], axis=1)
            for a in range(op.arity)
        ]
        batch = np.asarray(op.apply(None, *blocks), dtype=np.float64)
        if batch.shape != blocks[0].shape:
            # Only catches shape-changing kernels; value correctness of a
            # shape-preserving batch rests on the `batchable` contract.
            continue
        for j, expr in enumerate(exprs):
            # Copy out of the batch so the cache (which can outlive this
            # call by many iterations) never pins the whole (n, m) block
            # through a strided view.
            cache.put(expr, np.ascontiguousarray(batch[:, j]))


@batched_kernel(oracle="evaluate_expressions")
def evaluate_forest(
    expressions: "list[Expression]",
    X: "np.ndarray | None" = None,
    cache: "EvalCache | None" = None,
) -> np.ndarray:
    """Evaluate a forest into an ``(n, k)`` block with shared subtrees.

    Pass ``cache`` to reuse (and extend) columns already materialized for
    the same matrix, or pass ``X`` to evaluate against a fresh matrix —
    exactly one of the two (a cache is bound to its own matrix). Output
    is bit-identical to :func:`repro.operators.evaluate_expressions`.
    """
    if cache is None:
        if X is None:
            raise ValueError("evaluate_forest needs a matrix or an EvalCache")
        cache = EvalCache(X)
    elif X is not None:
        raise ValueError(
            "evaluate_forest takes a matrix or an EvalCache, not both; "
            "the cache is bound to the matrix it was built from"
        )
    # Fortran order: each column fill is one contiguous copy.
    out = np.empty((cache.X.shape[0], len(expressions)), dtype=np.float64, order="F")
    for j, expr in enumerate(expressions):
        out[:, j] = cache.column(expr)
    return out
