"""Learned (regression-based) binary operators.

Section III: "Ridge regression and kernel ridge regression in [24] can
also be considered as binary operators." These are the feature
constructors of AutoLearn (Kaul et al., ICDM 2017): for a feature pair
``(a, b)``, fit a regression of ``b`` on ``a`` at training time; the
generated feature is the *prediction* (the part of ``b`` explained by
``a``) or, in AutoLearn's second variant, the *residual* ``b - b_hat``
(the part of ``b`` that ``a`` cannot explain).

Both operators are stateful, serializable, and cheap at serving time:

* :class:`RidgePredictOp` stores two scalars (slope, intercept).
* :class:`KernelRidgePredictOp` stores an RBF dictionary of anchor points
  and dual weights fitted on a training subsample (exact kernel ridge is
  O(N^3); the anchored Nyström-style variant keeps fit and serve costs
  linear in N, preserving AutoLearn's behaviour at tractable cost).
"""

from __future__ import annotations

import numpy as np

from .base import Operator, register_operator

_RIDGE_ALPHA = 1.0
_MAX_ANCHORS = 64


def _standardize_params(x: np.ndarray) -> tuple[float, float]:
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return 0.0, 1.0
    mean = float(finite.mean())
    std = float(finite.std())
    # Noise floor as in ZScoreOp.fit: a numerically constant input has
    # std ~eps-scale from summation rounding; standardizing by it would
    # blow z up to ~1e16 and poison the downstream regression.
    noise = (
        np.sqrt(finite.size) * np.finfo(np.float64).eps * (abs(mean) + 1.0) * 16.0
    )
    return mean, std if std > noise else 1.0


class RidgePredictOp(Operator):
    """Ridge regression of ``b`` on ``a``; emits the prediction b̂(a)."""

    name = "ridge"
    arity = 2
    commutative = False
    symbol = "ridge"
    state_schema = ("slope", "intercept", "a_mean", "a_std")

    def fit(self, a, b):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        ok = np.isfinite(a) & np.isfinite(b)
        if ok.sum() < 2:
            return {"slope": 0.0, "intercept": 0.0, "a_mean": 0.0, "a_std": 1.0}
        a_mean, a_std = _standardize_params(a[ok])
        z = (a[ok] - a_mean) / a_std  # repro: ignore[div-guard] a_std is noise-floored in _standardize_params
        t = b[ok]
        # Closed-form 1-D ridge: w = <z, t-mean(t)> / (<z, z> + alpha).
        t_mean = float(t.mean())
        slope = float((z * (t - t_mean)).sum() / ((z * z).sum() + _RIDGE_ALPHA))
        return {
            "slope": slope,
            "intercept": t_mean,
            "a_mean": a_mean,
            "a_std": a_std,
        }

    def apply(self, state, a, b):
        state = state or {"slope": 0.0, "intercept": 0.0, "a_mean": 0.0, "a_std": 1.0}
        z = (np.asarray(a, dtype=np.float64) - state["a_mean"]) / state["a_std"]
        return state["intercept"] + state["slope"] * z


class RidgeResidualOp(RidgePredictOp):
    """Ridge residual ``b - b̂(a)``: what ``a`` cannot explain about ``b``."""

    name = "ridge_residual"
    symbol = "ridge_residual"

    def apply(self, state, a, b):
        prediction = super().apply(state, a, b)
        return np.asarray(b, dtype=np.float64) - prediction


class KernelRidgePredictOp(Operator):
    """RBF kernel ridge of ``b`` on ``a`` with an anchored dictionary.

    Fit: subsample up to ``_MAX_ANCHORS`` anchor values of ``a``, solve
    the (anchors × anchors) ridge system against the anchors' local mean
    targets. Serve: k(a, anchors) @ dual — captures the nonlinear
    relationships AutoLearn mines, at O(N · anchors) cost.
    """

    name = "kernel_ridge"
    arity = 2
    commutative = False
    symbol = "kernel_ridge"
    state_schema = ("anchors", "dual", "gamma", "a_mean", "a_std", "fallback")

    def fit(self, a, b):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        ok = np.isfinite(a) & np.isfinite(b)
        if ok.sum() < 4:
            return {"anchors": [], "dual": [], "gamma": 1.0,
                    "a_mean": 0.0, "a_std": 1.0, "fallback": 0.0}
        a_ok, b_ok = a[ok], b[ok]
        a_mean, a_std = _standardize_params(a_ok)
        z = (a_ok - a_mean) / a_std  # repro: ignore[div-guard] a_std is noise-floored in _standardize_params
        # Deterministic anchor choice: quantile grid over the training z.
        n_anchors = min(_MAX_ANCHORS, np.unique(z).size)
        anchors = np.quantile(z, np.linspace(0.0, 1.0, n_anchors))
        anchors = np.unique(anchors)
        gamma = 1.0  # z is standardized; unit bandwidth is well-scaled
        k_nm = np.exp(-gamma * (z[:, None] - anchors[None, :]) ** 2)
        k_mm = np.exp(-gamma * (anchors[:, None] - anchors[None, :]) ** 2)
        # Nyström-style normal equations with ridge regularization.
        lhs = k_nm.T @ k_nm + _RIDGE_ALPHA * k_mm + 1e-8 * np.eye(anchors.size)
        rhs = k_nm.T @ b_ok
        try:
            dual = np.linalg.solve(lhs, rhs)
        except np.linalg.LinAlgError:
            dual = np.zeros(anchors.size)
        return {
            "anchors": anchors.tolist(),
            "dual": dual.tolist(),
            "gamma": gamma,
            "a_mean": a_mean,
            "a_std": a_std,
            "fallback": float(b_ok.mean()),
        }

    def apply(self, state, a, b):
        state = state or {"anchors": [], "dual": [], "gamma": 1.0,
                          "a_mean": 0.0, "a_std": 1.0, "fallback": 0.0}
        anchors = np.asarray(state["anchors"], dtype=np.float64)
        dual = np.asarray(state["dual"], dtype=np.float64)
        a = np.asarray(a, dtype=np.float64)
        if anchors.size == 0:
            return np.full(a.shape, state["fallback"])
        z = (a - state["a_mean"]) / state["a_std"]
        z = np.where(np.isfinite(z), z, 0.0)
        k = np.exp(-state["gamma"] * (z[:, None] - anchors[None, :]) ** 2)
        return k @ dual


class KernelRidgeResidualOp(KernelRidgePredictOp):
    """Kernel-ridge residual ``b - b̂(a)`` (AutoLearn's nonlinear variant)."""

    name = "kernel_ridge_residual"
    symbol = "kernel_ridge_residual"

    def apply(self, state, a, b):
        prediction = super().apply(state, a, b)
        return np.asarray(b, dtype=np.float64) - prediction


LEARNED_OPERATORS = tuple(
    register_operator(cls())
    for cls in (
        RidgePredictOp,
        RidgeResidualOp,
        KernelRidgePredictOp,
        KernelRidgeResidualOp,
    )
)
