"""Ternary and n-ary operators.

Section III lists the conditional operator ``a ? b : c`` as the canonical
ternary example, plus MAX/MIN/MEAN accepting multiple inputs ("we divide
them into different categories when they accept a different number of
inputs") — so ``max3`` and ``max4`` are distinct registry entries, exactly
as the paper prescribes.
"""

from __future__ import annotations

import numpy as np

from .base import Operator, register_operator


class ConditionalOp(Operator):
    """``a ? b : c`` — where ``a`` is truthy (nonzero) pick ``b`` else ``c``."""

    name = "cond"
    arity = 3
    commutative = False
    symbol = "cond"
    batchable = True

    def apply(self, state, a, b, c):
        return np.where(np.asarray(a, dtype=np.float64) != 0, b, c)

    def format(self, *operands):
        return f"({operands[0]} ? {operands[1]} : {operands[2]})"


class _NaryReduceOp(Operator):
    """Base for MAX/MIN/MEAN at a fixed arity."""

    commutative = True
    batchable = True
    reducer = None  # type: ignore[assignment]

    def apply(self, state, *cols):
        # np.stack (not vstack) so (n, m) batches reduce columnwise too.
        stacked = np.stack([np.asarray(c, dtype=np.float64) for c in cols], axis=0)
        return type(self).reducer(stacked, axis=0)


def _make_reduce(op_label: str, reducer, arity: int) -> Operator:
    cls = type(
        f"{op_label.capitalize()}{arity}Op",
        (_NaryReduceOp,),
        {
            "name": f"{op_label}{arity}",
            "symbol": f"{op_label}{arity}",
            "arity": arity,
            "reducer": staticmethod(reducer),
        },
    )
    return register_operator(cls())


NARY_OPERATORS = (register_operator(ConditionalOp()),) + tuple(
    _make_reduce(label, fn, arity)
    for label, fn in (("max", np.max), ("min", np.min), ("mean", np.mean))
    for arity in (3, 4)
)
