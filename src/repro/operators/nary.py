"""Ternary and n-ary operators.

Section III lists the conditional operator ``a ? b : c`` as the canonical
ternary example, plus MAX/MIN/MEAN accepting multiple inputs ("we divide
them into different categories when they accept a different number of
inputs") — so ``max3`` and ``max4`` are distinct registry entries, exactly
as the paper prescribes.
"""

from __future__ import annotations

import numpy as np

from .base import Operator, register_operator


class ConditionalOp(Operator):
    """``a ? b : c`` — where ``a`` is truthy (nonzero) pick ``b`` else ``c``."""

    name = "cond"
    arity = 3
    commutative = False
    symbol = "cond"
    batchable = True
    rowwise = True

    def apply(self, state, a, b, c):
        return np.where(np.asarray(a, dtype=np.float64) != 0, b, c)

    def abstract_transfer(self, domains, state=None):
        # The output is drawn from b or c; the condition only selects
        # (NaN is truthy under `!= 0`, so `a` never propagates).
        _, b, c = domains
        return (min(b[0], c[0]), max(b[1], c[1]), b[2] or c[2], b[3] or c[3])

    def format(self, *operands):
        return f"({operands[0]} ? {operands[1]} : {operands[2]})"


class _NaryReduceOp(Operator):
    """Base for MAX/MIN/MEAN at a fixed arity."""

    commutative = True
    batchable = True
    rowwise = True
    degenerate_on_equal_children = True  # reduce(x, x, ...) == x
    reducer = None  # type: ignore[assignment]

    def abstract_transfer(self, domains, state=None):
        # max/min/mean all stay inside the hull of their inputs.
        return (
            min(d[0] for d in domains),
            max(d[1] for d in domains),
            any(d[2] for d in domains),
            any(d[3] for d in domains),
        )

    def apply(self, state, *cols):
        # np.stack (not vstack) so (n, m) batches reduce columnwise too.
        stacked = np.stack([np.asarray(c, dtype=np.float64) for c in cols], axis=0)
        return type(self).reducer(stacked, axis=0)


def _make_reduce(op_label: str, reducer, arity: int) -> Operator:
    cls = type(
        f"{op_label.capitalize()}{arity}Op",
        (_NaryReduceOp,),
        {
            "name": f"{op_label}{arity}",
            "symbol": f"{op_label}{arity}",
            "arity": arity,
            "reducer": staticmethod(reducer),
        },
    )
    return register_operator(cls())


NARY_OPERATORS = (register_operator(ConditionalOp()),) + tuple(
    _make_reduce(label, fn, arity)
    for label, fn in (("max", np.max), ("min", np.min), ("mean", np.mean))
    for arity in (3, 4)
)
