"""Unary operators: mathematical transforms, normalization, discretization.

These implement the Section III catalogue. Domain-restricted transforms
(log, sqrt, reciprocal) use the standard *protected* variants so generated
columns stay finite for arbitrary real inputs while remaining monotone on
the natural domain.
"""

from __future__ import annotations

import numpy as np

from ..tabular.binning import codes_from_edges, equal_frequency_edges, equal_width_edges
from ..utils import sigmoid
from .base import Operator, register_operator


class LogOp(Operator):
    """Signed log transform: ``sign(x) * log(1 + |x|)``."""

    name = "log"
    arity = 1
    symbol = "log"
    batchable = True
    rowwise = True

    def apply(self, state, x):
        return np.sign(x) * np.log1p(np.abs(x))


class SqrtOp(Operator):
    """Signed square root: ``sign(x) * sqrt(|x|)``."""

    name = "sqrt"
    arity = 1
    symbol = "sqrt"
    batchable = True
    rowwise = True

    def apply(self, state, x):
        return np.sign(x) * np.sqrt(np.abs(x))


class SquareOp(Operator):
    name = "square"
    arity = 1
    symbol = "square"
    batchable = True
    rowwise = True
    abstract_bounds = (0.0, float("inf"))

    def apply(self, state, x):
        return x * x


class SigmoidOp(Operator):
    name = "sigmoid"
    arity = 1
    symbol = "sigmoid"
    batchable = True
    rowwise = True
    abstract_bounds = (0.0, 1.0)

    def apply(self, state, x):
        return sigmoid(np.asarray(x, dtype=np.float64))


class TanhOp(Operator):
    name = "tanh"
    arity = 1
    symbol = "tanh"
    batchable = True
    rowwise = True
    abstract_bounds = (-1.0, 1.0)

    def apply(self, state, x):
        return np.tanh(x)


class RoundOp(Operator):
    name = "round"
    arity = 1
    symbol = "round"
    batchable = True
    rowwise = True

    def apply(self, state, x):
        return np.round(x)


class AbsOp(Operator):
    name = "abs"
    arity = 1
    symbol = "abs"
    batchable = True
    rowwise = True
    abstract_bounds = (0.0, float("inf"))

    def apply(self, state, x):
        return np.abs(x)


class NegateOp(Operator):
    name = "neg"
    arity = 1
    symbol = "neg"
    batchable = True
    rowwise = True

    def apply(self, state, x):
        return -np.asarray(x, dtype=np.float64)


class ReciprocalOp(Operator):
    """Protected reciprocal: ``1/x`` with ``x == 0`` mapping to 0."""

    name = "reciprocal"
    arity = 1
    symbol = "reciprocal"
    batchable = True
    rowwise = True
    # Protected against exact 0 only; a subnormal input still overflows.
    introduces_inf = True

    def apply(self, state, x):
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        nz = x != 0
        out[nz] = 1.0 / x[nz]
        return out


class ZScoreOp(Operator):
    """Z-score normalization; state carries the training mean/std."""

    name = "zscore"
    arity = 1
    symbol = "zscore"
    state_schema = ("mean", "std")

    def fit(self, x):
        finite = x[np.isfinite(x)]
        mean = float(finite.mean()) if finite.size else 0.0
        std = float(finite.std()) if finite.size else 1.0
        # A numerically constant column (np.full(n, 0.1)) has std ~1e-17
        # from summation rounding, not 0.0 — dividing by it turns a
        # constant feature into ±1e16 garbage. Same noise floor recipe
        # as `pearson_matrix`: treat std below it as constant.
        noise = (
            np.sqrt(max(finite.size, 1))
            * np.finfo(np.float64).eps
            * (abs(mean) + 1.0)
            * 16.0
        )
        return {"mean": mean, "std": std if std > noise else 1.0}

    def apply(self, state, x):
        state = state or {"mean": 0.0, "std": 1.0}
        return (x - state["mean"]) / state["std"]


class MinMaxOp(Operator):
    """Min-max normalization to [0, 1]; state carries training min/range."""

    name = "minmax"
    arity = 1
    symbol = "minmax"
    state_schema = ("min", "range")

    def fit(self, x):
        finite = x[np.isfinite(x)]
        lo = float(finite.min()) if finite.size else 0.0
        hi = float(finite.max()) if finite.size else 1.0
        rng = hi - lo
        return {"min": lo, "range": rng if rng > 0 else 1.0}

    def apply(self, state, x):
        state = state or {"min": 0.0, "range": 1.0}
        return (x - state["min"]) / state["range"]


class _DiscretizeBase(Operator):
    """Shared machinery for fitted-edges discretizers."""

    n_bins = 10
    state_schema = ("edges",)
    # Codes span 0..n_bins+1 (one extra bin catches missing values), so
    # NaN input maps to a finite code instead of propagating.
    abstract_bounds = (0.0, 11.0)
    absorbs_nan = True

    def apply(self, state, x):
        edges = np.asarray((state or {}).get("edges", []), dtype=np.float64)
        return codes_from_edges(np.asarray(x, dtype=np.float64), edges).astype(np.float64)


class EqualFrequencyDiscretizeOp(_DiscretizeBase):
    """Equal-frequency binning into (up to) 10 integer codes."""

    name = "disc_eqfreq"
    arity = 1
    symbol = "disc_eqfreq"

    def fit(self, x):
        return {"edges": equal_frequency_edges(x, self.n_bins).tolist()}


class EqualWidthDiscretizeOp(_DiscretizeBase):
    """Equidistant binning into (up to) 10 integer codes."""

    name = "disc_eqwidth"
    arity = 1
    symbol = "disc_eqwidth"

    def fit(self, x):
        return {"edges": equal_width_edges(x, self.n_bins).tolist()}


UNARY_OPERATORS = tuple(
    register_operator(cls())
    for cls in (
        LogOp,
        SqrtOp,
        SquareOp,
        SigmoidOp,
        TanhOp,
        RoundOp,
        AbsOp,
        NegateOp,
        ReciprocalOp,
        ZScoreOp,
        MinMaxOp,
        EqualFrequencyDiscretizeOp,
        EqualWidthDiscretizeOp,
    )
)
