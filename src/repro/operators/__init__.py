"""Operator catalogue, registry, and serializable expression trees."""

from .base import (
    PAPER_OPERATOR_SET,
    Operator,
    available_operators,
    get_operator,
    register_operator,
    resolve_operators,
)
from .binary import BINARY_OPERATORS
from .engine import EvalCache, batch_populate_cache, evaluate_forest
from .expressions import (
    Applied,
    Expression,
    Var,
    evaluate_expressions,
    expression_from_dict,
    expression_from_json,
    fit_applied,
)
from .domain import DOMAIN_OPERATORS
from .learned import LEARNED_OPERATORS
from .nary import NARY_OPERATORS
from .unary import UNARY_OPERATORS

__all__ = [
    "Applied",
    "BINARY_OPERATORS",
    "DOMAIN_OPERATORS",
    "EvalCache",
    "Expression",
    "LEARNED_OPERATORS",
    "NARY_OPERATORS",
    "Operator",
    "PAPER_OPERATOR_SET",
    "UNARY_OPERATORS",
    "Var",
    "available_operators",
    "batch_populate_cache",
    "evaluate_expressions",
    "evaluate_forest",
    "expression_from_dict",
    "expression_from_json",
    "fit_applied",
    "get_operator",
    "register_operator",
    "resolve_operators",
]
