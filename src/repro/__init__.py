"""repro — full reproduction of *SAFE: Scalable Automatic Feature
Engineering Framework for Industrial Tasks* (Shi et al., ICDE 2020).

Quickstart::

    from repro import SAFE, SAFEConfig, load_benchmark, make_classifier
    from repro.metrics import roc_auc_score

    train, valid, test = load_benchmark("magic", scale=0.2)
    transformer = SAFE(SAFEConfig(n_iterations=1)).fit(train, valid)
    train_new, test_new = transformer.transform(train), transformer.transform(test)
    clf = make_classifier("xgb").fit(train_new.X, train_new.y)
    print(roc_auc_score(test_new.y, clf.predict_proba(test_new.X)[:, 1]))

Subpackages
-----------
``repro.core``
    SAFE itself: generation (path mining + gain-ratio ranking), selection
    (IV → Pearson → importance), the iterative pipeline, and the fitted
    :class:`~repro.core.FeatureTransformer` Ψ.
``repro.boosting``
    From-scratch histogram gradient boosting (the XGBoost substitute).
``repro.models``
    The nine downstream evaluation classifiers of Table III.
``repro.operators``
    Extensible operator catalogue + serializable expression trees.
``repro.baselines``
    ORIG / FCTree / TFC / RAND / IMP comparison methods.
``repro.datasets``
    Seeded synthetic surrogates for the paper's datasets.
``repro.experiments``
    One module per paper table/figure, each with a CLI entry point.
"""

from .baselines import FCTree, ImportantGenerator, OriginalFeatures, RandomGenerator, TFC
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .core import (
    SAFE,
    AutoFeatureEngineer,
    FeatureTransformer,
    SAFEConfig,
)
from .datasets import load_benchmark, load_business, make_classification_task
from .exceptions import (
    ConfigurationError,
    DataError,
    NotFittedError,
    OperatorError,
    ReproError,
    SchemaError,
)
from .metrics import roc_auc_score
from .models import available_classifiers, make_classifier
from .operators import Operator, register_operator
from .serving import ServingReport, ServingResponse, ServingSession
from .tabular import Dataset

__version__ = "1.0.0"

__all__ = [
    "AutoFeatureEngineer",
    "ConfigurationError",
    "DataError",
    "Dataset",
    "FCTree",
    "FeatureTransformer",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "ImportantGenerator",
    "NotFittedError",
    "Operator",
    "OperatorError",
    "OriginalFeatures",
    "RandomGenerator",
    "ReproError",
    "SAFE",
    "SAFEConfig",
    "SchemaError",
    "ServingReport",
    "ServingResponse",
    "ServingSession",
    "TFC",
    "available_classifiers",
    "load_benchmark",
    "load_business",
    "make_classification_task",
    "make_classifier",
    "register_operator",
    "roc_auc_score",
    "__version__",
]
