"""Surrogates for the Ant Financial fraud datasets of Table VII.

The originals (2.5M–8M training rows, proprietary) are simulated as
heavily imbalanced fraud-detection tasks with the same feature dimensions
and split-size *ratios*. The default ``scale`` keeps the experiment
laptop-sized; passing ``scale=1.0`` generates the paper's full row counts
(memory permitting), since the generator is O(rows × dims) streaming.

Fraud-like character: ~1.5% positive rate, heavy-tailed transaction-style
marginals, ratio/product interactions (amount-per-count style signals),
and redundant covariates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..tabular.dataset import Dataset
from .synth import SyntheticTaskSpec, build_task, stable_name_seed


@dataclass(frozen=True)
class BusinessInfo:
    """Table VII row: split sizes and dimension, plus the surrogate spec."""

    name: str
    n_train: int
    n_valid: int
    n_test: int
    n_dim: int
    spec: SyntheticTaskSpec


def _fraud_spec(name: str, dim: int, informative: int, interactions: int) -> SyntheticTaskSpec:
    return SyntheticTaskSpec(
        n_features=dim,
        n_informative=informative,
        n_interactions=interactions,
        n_redundant=max(2, dim // 12),
        interaction_strength=2.2,
        linear_strength=0.4,
        noise=0.5,
        positive_rate=0.015,
        heavy_tail=0.4,
        seed=stable_name_seed(name),
    )


#: Table VII, reproduced.
BUSINESS_DATASETS: dict[str, BusinessInfo] = {
    info.name: info
    for info in (
        BusinessInfo("data1", 2_502_617, 625_655, 625_655, 81,
                     _fraud_spec("data1", 81, 12, 8)),
        BusinessInfo("data2", 7_282_428, 1_820_607, 1_820_607, 44,
                     _fraud_spec("data2", 44, 10, 6)),
        BusinessInfo("data3", 8_000_000, 2_000_000, 2_000_000, 73,
                     _fraud_spec("data3", 73, 12, 8)),
    )
}

BUSINESS_NAMES: tuple[str, ...] = tuple(BUSINESS_DATASETS)

#: Default scale: ~50k training rows for data1, proportionally more for
#: data2/3 — large enough to exercise scalability, small enough for CI.
DEFAULT_BUSINESS_SCALE: float = 0.02


def business_info(name: str) -> BusinessInfo:
    try:
        return BUSINESS_DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown business dataset {name!r}; options: {list(BUSINESS_DATASETS)}"
        ) from None


def load_business(
    name: str,
    scale: float = DEFAULT_BUSINESS_SCALE,
    seed: "int | None" = None,
) -> "tuple[Dataset, Dataset, Dataset]":
    """Generate the surrogate splits for one business dataset."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    info = business_info(name)
    task = build_task(info.spec)
    n_train = max(2000, int(info.n_train * scale))
    n_valid = max(500, int(info.n_valid * scale))
    n_test = max(500, int(info.n_test * scale))
    base_seed = info.spec.seed if seed is None else seed
    train = task.sample(n_train, seed=base_seed + 11)
    valid = task.sample(n_valid, seed=base_seed + 22)
    test = task.sample(n_test, seed=base_seed + 33)
    return train, valid, test
