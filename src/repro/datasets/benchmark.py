"""Surrogates for the 12 OpenML benchmark datasets of Table IV.

Offline substitution (see DESIGN.md §2): each named dataset becomes a
seeded synthetic task with the *same feature dimension* as the original
and the paper's train/valid/test sizes (scalable via ``scale``). Planted
structure varies per dataset — interaction count, redundancy, skew, class
balance — loosely echoing the character of the original (e.g. ``gina`` is
wide and sparse-informative, ``eeg-eye`` is low-dimensional with strong
interactions, ``bank`` is imbalanced).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..tabular.dataset import Dataset
from .synth import SyntheticTaskSpec, build_task, stable_name_seed


@dataclass(frozen=True)
class BenchmarkInfo:
    """Table IV row: split sizes and dimension, plus the surrogate spec."""

    name: str
    n_train: int
    n_valid: int
    n_test: int
    n_dim: int
    spec: SyntheticTaskSpec


def _spec(
    name: str,
    dim: int,
    informative: int,
    interactions: int,
    redundant: int = 0,
    positive_rate: float = 0.5,
    heavy_tail: float = 0.0,
    noise: float = 0.5,
    strength: float = 2.0,
) -> SyntheticTaskSpec:
    return SyntheticTaskSpec(
        n_features=dim,
        n_informative=informative,
        n_interactions=interactions,
        n_redundant=redundant,
        interaction_strength=strength,
        positive_rate=positive_rate,
        heavy_tail=heavy_tail,
        noise=noise,
        seed=stable_name_seed(name),
    )


#: Table IV, reproduced with per-dataset surrogate recipes.
BENCHMARKS: dict[str, BenchmarkInfo] = {
    info.name: info
    for info in (
        BenchmarkInfo("valley", 900, 0, 312, 100,
                      _spec("valley", 100, 8, 6, redundant=4, noise=0.3)),
        BenchmarkInfo("banknote", 1000, 0, 372, 4,
                      _spec("banknote", 4, 4, 3, noise=0.2, strength=2.5)),
        BenchmarkInfo("gina", 2800, 0, 668, 970,
                      _spec("gina", 970, 12, 8, redundant=8, noise=0.4)),
        BenchmarkInfo("spambase", 3800, 0, 801, 57,
                      _spec("spambase", 57, 10, 6, redundant=5, heavy_tail=0.3)),
        BenchmarkInfo("phoneme", 4500, 0, 904, 5,
                      _spec("phoneme", 5, 5, 3, noise=0.6, strength=1.5)),
        BenchmarkInfo("wind", 5000, 0, 1574, 14,
                      _spec("wind", 14, 8, 5, redundant=2, noise=0.5)),
        BenchmarkInfo("ailerons", 9000, 2000, 2750, 40,
                      _spec("ailerons", 40, 10, 6, redundant=4, noise=0.4)),
        BenchmarkInfo("eeg-eye", 10000, 2000, 2980, 14,
                      _spec("eeg-eye", 14, 10, 8, noise=0.4, strength=2.5)),
        BenchmarkInfo("magic", 13000, 3000, 3020, 10,
                      _spec("magic", 10, 8, 5, noise=0.5)),
        BenchmarkInfo("nomao", 22000, 6000, 6000, 118,
                      _spec("nomao", 118, 14, 8, redundant=10, heavy_tail=0.2)),
        BenchmarkInfo("bank", 35211, 4000, 6000, 51,
                      _spec("bank", 51, 10, 6, redundant=4,
                            positive_rate=0.12, heavy_tail=0.3)),
        BenchmarkInfo("vehicle", 60000, 18528, 20000, 100,
                      _spec("vehicle", 100, 12, 8, redundant=8, noise=0.5)),
    )
}

#: Dataset order as printed in Table IV.
BENCHMARK_NAMES: tuple[str, ...] = tuple(BENCHMARKS)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Look up a Table IV row by dataset name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; options: {list(BENCHMARKS)}"
        ) from None


def load_benchmark(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
) -> "tuple[Dataset, Dataset | None, Dataset]":
    """Generate the surrogate train/valid/test splits for ``name``.

    ``scale`` multiplies the Table IV sample counts (feature dimension is
    never scaled); datasets without a validation split in the paper return
    ``None`` for it, matching the "use training data for validation"
    protocol.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    info = benchmark_info(name)
    task = build_task(info.spec)
    n_train = max(60, int(info.n_train * scale))
    n_valid = int(info.n_valid * scale)
    n_test = max(40, int(info.n_test * scale))
    base_seed = info.spec.seed if seed is None else seed
    train = task.sample(n_train, seed=base_seed + 11)
    valid = task.sample(n_valid, seed=base_seed + 22) if n_valid > 0 else None
    test = task.sample(n_test, seed=base_seed + 33)
    return train, valid, test
