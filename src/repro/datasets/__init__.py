"""Seeded synthetic surrogates for the paper's datasets (see DESIGN.md)."""

from .benchmark import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    BenchmarkInfo,
    benchmark_info,
    load_benchmark,
)
from .business import (
    BUSINESS_DATASETS,
    BUSINESS_NAMES,
    DEFAULT_BUSINESS_SCALE,
    BusinessInfo,
    business_info,
    load_business,
)
from .synth import (
    INTERACTION_KINDS,
    PlantedInteraction,
    SyntheticTask,
    SyntheticTaskSpec,
    build_task,
    make_classification_task,
)

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "BUSINESS_DATASETS",
    "BUSINESS_NAMES",
    "BenchmarkInfo",
    "BusinessInfo",
    "DEFAULT_BUSINESS_SCALE",
    "INTERACTION_KINDS",
    "PlantedInteraction",
    "SyntheticTask",
    "SyntheticTaskSpec",
    "benchmark_info",
    "build_task",
    "load_benchmark",
    "load_business",
    "make_classification_task",
]
