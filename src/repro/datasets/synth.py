"""Synthetic classification task generator with planted interactions.

The OpenML benchmark datasets and the Ant Financial business datasets are
unreachable offline, so every experiment runs on seeded surrogates built
here. The generator's one essential property is that the label depends on
*pairwise feature interactions* (products, ratios, differences, sums) on
top of linear effects — exactly the signal automatic feature engineering
is supposed to find. It also plants the two nuisances SAFE's selection
stages exist for:

* redundant columns (noisy affine copies of informative ones) exercising
  the Pearson stage;
* pure-noise columns exercising the IV stage.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..tabular.dataset import Dataset, default_names
from ..utils import check_random_state, sigmoid

#: Interaction kinds the generator can plant (ratio uses a protected form).
INTERACTION_KINDS: tuple[str, ...] = ("mul", "div", "sub", "add")


def stable_name_seed(name: str) -> int:
    """Deterministic per-name seed (``hash()`` is randomized per process)."""
    return zlib.crc32(name.encode("utf-8")) % (2**31)


@dataclass(frozen=True)
class PlantedInteraction:
    """One ground-truth pairwise interaction contributing to the logit."""

    kind: str
    i: int
    j: int
    weight: float

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        a, b = X[:, self.i], X[:, self.j]
        if self.kind == "mul":
            return a * b
        if self.kind == "div":
            denom = np.where(np.abs(b) < 0.2, 0.2 * np.sign(b) + (b == 0), b)
            return a / denom
        if self.kind == "sub":
            return a - b
        if self.kind == "add":
            return a + b
        raise ConfigurationError(f"unknown interaction kind {self.kind!r}")


@dataclass(frozen=True)
class SyntheticTaskSpec:
    """Recipe for one synthetic classification task.

    Parameters
    ----------
    n_features:
        Total column count (informative + redundant + noise).
    n_informative:
        Features with nonzero linear weight; interactions are planted
        among these.
    n_interactions:
        Number of pairwise interactions in the ground-truth logit.
    n_redundant:
        Noisy affine copies of informative columns.
    interaction_strength:
        Scale of interaction weights relative to linear weights. Values
        above ~1 make feature engineering clearly beneficial.
    noise:
        Standard deviation of the additive logit noise.
    positive_rate:
        Target prior P(y=1); the logit is shifted to hit it.
    heavy_tail:
        If set, a fraction of columns are exponentiated to produce skewed
        marginals (common in transaction data).
    """

    n_features: int
    n_informative: int
    n_interactions: int = 4
    n_redundant: int = 0
    interaction_strength: float = 2.0
    linear_strength: float = 0.5
    noise: float = 0.5
    positive_rate: float = 0.5
    heavy_tail: float = 0.0
    correlation: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_features < 2:
            raise ConfigurationError("n_features must be >= 2")
        if not 2 <= self.n_informative <= self.n_features:
            raise ConfigurationError("n_informative must be in [2, n_features]")
        if self.n_redundant > self.n_features - self.n_informative:
            raise ConfigurationError("n_redundant exceeds available columns")
        if not 0 < self.positive_rate < 1:
            raise ConfigurationError("positive_rate must be in (0, 1)")
        if self.n_interactions < 0:
            raise ConfigurationError("n_interactions must be >= 0")


@dataclass(frozen=True)
class SyntheticTask:
    """A realized generator: spec + frozen ground-truth structure.

    ``logit_center``/``logit_scale`` standardize the raw logit (estimated
    once on a probe sample at build time) so heavy-tailed interaction
    terms cannot saturate the sigmoid and defeat positive-rate
    calibration via ``logit_shift``.
    """

    spec: SyntheticTaskSpec
    interactions: tuple[PlantedInteraction, ...]
    linear_weights: np.ndarray = field(repr=False)
    redundant_sources: tuple[int, ...]
    logit_shift: float
    logit_center: float = 0.0
    logit_scale: float = 1.0

    def _features(self, n_rows: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        X = rng.normal(size=(n_rows, spec.n_features))
        if spec.correlation > 0:
            common = rng.normal(size=(n_rows, 1))
            X = np.sqrt(1 - spec.correlation) * X + np.sqrt(spec.correlation) * common
        if spec.heavy_tail > 0:
            n_heavy = int(spec.heavy_tail * spec.n_features)
            X[:, :n_heavy] = np.expm1(np.abs(X[:, :n_heavy])) * np.sign(X[:, :n_heavy])
        # Redundant columns: affine copies (placed after informative block).
        for offset, src in enumerate(self.redundant_sources):
            dst = spec.n_informative + offset
            X[:, dst] = 1.5 * X[:, src] + 0.5 + 0.05 * rng.normal(size=n_rows)
        return X

    def _raw_logit(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        logit = X @ self.linear_weights
        for inter in self.interactions:
            logit = logit + inter.weight * inter.evaluate(X)
        # Winsorize extreme tails so no record is deterministically labeled.
        scale = max(float(np.median(np.abs(logit))) * 8.0, 1e-6)
        logit = np.clip(logit, -scale, scale)
        return logit + spec.noise * rng.normal(size=X.shape[0])

    def sample(self, n_rows: int, seed: "int | None" = None) -> Dataset:
        """Draw ``n_rows`` labeled records from the task distribution."""
        spec = self.spec
        rng = check_random_state(spec.seed + 1 if seed is None else seed)
        X = self._features(n_rows, rng)
        z = (self._raw_logit(X, rng) - self.logit_center) / self.logit_scale  # repro: ignore[div-guard] logit_scale is floored at calibration
        p = sigmoid(2.5 * z + self.logit_shift)
        y = (rng.random(n_rows) < p).astype(np.float64)
        return Dataset(X=X, names=default_names(spec.n_features), y=y)


def build_task(spec: SyntheticTaskSpec) -> SyntheticTask:
    """Freeze the ground-truth structure (weights, interactions) of a spec."""
    rng = check_random_state(spec.seed)
    weights = np.zeros(spec.n_features)
    weights[: spec.n_informative] = spec.linear_strength * rng.normal(
        size=spec.n_informative
    )
    interactions = []
    for _ in range(spec.n_interactions):
        kind = INTERACTION_KINDS[rng.integers(0, len(INTERACTION_KINDS))]
        i, j = rng.choice(spec.n_informative, size=2, replace=False)
        sign = 1.0 if rng.random() < 0.5 else -1.0
        interactions.append(
            PlantedInteraction(
                kind=kind,
                i=int(i),
                j=int(j),
                weight=float(sign * spec.interaction_strength * (0.5 + rng.random())),
            )
        )
    redundant_sources = tuple(
        int(s) for s in rng.integers(0, spec.n_informative, size=spec.n_redundant)
    )
    base = SyntheticTask(
        spec=spec,
        interactions=tuple(interactions),
        linear_weights=weights,
        redundant_sources=redundant_sources,
        logit_shift=0.0,
    )
    # Standardize the raw logit on a probe sample, then bisect the
    # intercept so the positive rate matches the spec.
    probe_rng = check_random_state(spec.seed + 97)
    X_probe = base._features(4000, probe_rng)
    raw = base._raw_logit(X_probe, probe_rng)
    center = float(np.mean(raw))
    scale = float(np.std(raw))
    if scale <= 0:
        scale = 1.0
    calibrated = SyntheticTask(
        spec=spec,
        interactions=base.interactions,
        linear_weights=weights,
        redundant_sources=redundant_sources,
        logit_shift=0.0,
        logit_center=center,
        logit_scale=scale,
    )
    shift = _calibrate_shift(calibrated, spec.positive_rate)
    return SyntheticTask(
        spec=spec,
        interactions=base.interactions,
        linear_weights=weights,
        redundant_sources=redundant_sources,
        logit_shift=shift,
        logit_center=center,
        logit_scale=scale,
    )


def _calibrate_shift(task: SyntheticTask, target: float) -> float:
    """Bisection on the intercept to reach the target positive rate."""
    rng = check_random_state(task.spec.seed + 98)
    X = task._features(6000, rng)
    z = (task._raw_logit(X, rng) - task.logit_center) / task.logit_scale  # repro: ignore[div-guard] logit_scale is floored at calibration
    lo, hi = -25.0, 25.0
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        rate = float(np.mean(sigmoid(2.5 * z + mid)))
        if rate < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def make_classification_task(
    n_rows: int,
    spec: SyntheticTaskSpec,
    seed: "int | None" = None,
) -> Dataset:
    """One-call convenience: build the task and sample ``n_rows``."""
    return build_task(spec).sample(n_rows, seed=seed)
