"""Multi-layer perceptron trained with Adam on mini-batches."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..tabular.preprocess import StandardScaler
from ..utils import check_random_state, sigmoid
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)


@dataclass
class MLPClassifier:
    """One-hidden-layer ReLU network with a sigmoid output unit.

    Follows sklearn's default architecture (hidden size 100, Adam,
    lr 1e-3, batch 200) with a reduced epoch budget sized for the numpy
    substrate; training uses binary cross-entropy. Inputs are standardized
    internally (sklearn leaves this to the user; doing it inside keeps the
    probe self-contained and scale-robust for generated features).
    """

    hidden_size: int = 100
    learning_rate: float = 1e-3
    batch_size: int = 200
    max_epochs: int = 30
    alpha: float = 1e-4  # L2 penalty, sklearn default
    tol: float = 1e-5
    patience: int = 5
    random_state: "int | None" = 0

    scaler_: "StandardScaler | None" = field(default=None, repr=False)
    W1_: "np.ndarray | None" = field(default=None, repr=False)
    b1_: "np.ndarray | None" = field(default=None, repr=False)
    W2_: "np.ndarray | None" = field(default=None, repr=False)
    b2_: float = field(default=0.0, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.hidden_size < 1:
            raise ConfigurationError("hidden_size must be >= 1")
        if self.max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = prepare_training(X, y)
        rng = check_random_state(self.random_state)
        self.n_features_ = X.shape[1]
        self.scaler_ = StandardScaler().fit(X)
        Z = self.scaler_.transform(X)
        n, m = Z.shape
        h = self.hidden_size
        # He initialization for the ReLU layer, Glorot-ish for the head.
        W1 = rng.normal(0.0, np.sqrt(2.0 / m), size=(m, h))  # repro: ignore[div-guard] m >= 1 features after fit validation
        b1 = np.zeros(h)
        W2 = rng.normal(0.0, np.sqrt(1.0 / h), size=h)  # repro: ignore[div-guard] hidden_size >= 1
        b2 = 0.0
        # Adam state.
        mw1 = np.zeros_like(W1); vw1 = np.zeros_like(W1)
        mb1 = np.zeros_like(b1); vb1 = np.zeros_like(b1)
        mw2 = np.zeros_like(W2); vw2 = np.zeros_like(W2)
        mb2 = 0.0; vb2 = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        best_loss = np.inf
        stall = 0
        for _ in range(self.max_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                Zb, yb = Z[batch], y[batch]
                nb = Zb.shape[0]
                # Forward.
                A = Zb @ W1 + b1
                H = np.maximum(A, 0.0)
                logits = H @ W2 + b2
                p = sigmoid(logits)
                loss = -np.mean(
                    yb * np.log(p + 1e-12) + (1 - yb) * np.log(1 - p + 1e-12)
                )
                epoch_loss += loss
                n_batches += 1
                # Backward.
                dlogits = (p - yb) / nb  # repro: ignore[div-guard] minibatches are non-empty
                gW2 = H.T @ dlogits + self.alpha * W2
                gb2 = dlogits.sum()
                dH = np.outer(dlogits, W2)
                dA = dH * (A > 0)
                gW1 = Zb.T @ dA + self.alpha * W1
                gb1 = dA.sum(axis=0)
                # Adam updates.
                step += 1
                bc1 = 1 - beta1**step
                bc2 = 1 - beta2**step
                for grad, mom, vel, param in (
                    (gW1, mw1, vw1, W1),
                    (gb1, mb1, vb1, b1),
                    (gW2, mw2, vw2, W2),
                ):
                    mom *= beta1; mom += (1 - beta1) * grad
                    vel *= beta2; vel += (1 - beta2) * grad * grad
                    param -= self.learning_rate * (mom / bc1) / (np.sqrt(vel / bc2) + eps)
                mb2 = beta1 * mb2 + (1 - beta1) * gb2
                vb2 = beta2 * vb2 + (1 - beta2) * gb2 * gb2
                b2 -= self.learning_rate * (mb2 / bc1) / (np.sqrt(vb2 / bc2) + eps)
            epoch_loss /= max(n_batches, 1)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break
        self.W1_, self.b1_, self.W2_, self.b2_ = W1, b1, W2, float(b2)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.W1_, "MLPClassifier")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "MLPClassifier")
        Z = self.scaler_.transform(X)
        H = np.maximum(Z @ self.W1_ + self.b1_, 0.0)
        return H @ self.W2_ + self.b2_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return proba_from_positive(sigmoid(self.decision_function(X)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))
