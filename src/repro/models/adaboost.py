"""AdaBoost (SAMME.R) over shallow classification trees."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..utils import check_random_state
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)
from .tree import ClassificationTree

_CLIP = 1e-6


@dataclass
class AdaBoostClassifier:
    """Real AdaBoost (SAMME.R) with depth-1 trees, sklearn's default shape.

    Each round fits a weighted stump, converts its class probabilities to
    half log-odds votes, and reweights samples multiplicatively.
    """

    n_estimators: int = 50
    learning_rate: float = 1.0
    base_max_depth: int = 1
    max_bins: int = 64
    random_state: "int | None" = 0

    estimators_: list = field(default_factory=list, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X, y = prepare_training(X, y)
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        self.n_features_ = X.shape[1]
        w = np.full(n, 1.0 / n)  # repro: ignore[div-guard] fit requires non-empty X
        y_sign = 2.0 * y - 1.0  # {-1, +1}
        self.estimators_ = []
        for _ in range(self.n_estimators):
            stump = ClassificationTree(
                max_depth=self.base_max_depth,
                max_bins=self.max_bins,
                random_state=rng,
            ).fit(X, y, sample_weight=w)
            p = np.clip(stump.predict_proba(X)[:, 1], _CLIP, 1 - _CLIP)
            vote = 0.5 * np.log(p / (1.0 - p))
            self.estimators_.append(stump)
            w = w * np.exp(-self.learning_rate * y_sign * vote)
            w_sum = w.sum()
            if not np.isfinite(w_sum) or w_sum <= 0:
                break
            w /= w_sum
            # A perfectly separating stump drives all weight to zero noise;
            # stop early rather than divide by degenerate weights.
            if w.max() > 1 - 1e-12:
                break
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.estimators_ or None, "AdaBoostClassifier")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "AdaBoostClassifier")
        score = np.zeros(X.shape[0])
        for stump in self.estimators_:
            p = np.clip(stump.predict_proba(X)[:, 1], _CLIP, 1 - _CLIP)
            score += 0.5 * np.log(p / (1.0 - p))
        return self.learning_rate * score / len(self.estimators_)  # repro: ignore[div-guard] fit leaves >= 1 estimator

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        score = self.decision_function(X)
        # Monotone squashing of the aggregate vote; AUC only needs order.
        return proba_from_positive(1.0 / (1.0 + np.exp(-2.0 * score)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))
