"""CART-style classification tree (histogram split search).

Serves three of the nine evaluation models directly (DT) or as the base
learner (RF, ET, AdaBoost). Unlike the boosting regression tree it splits
on class-impurity decrease (gini or entropy), supports sample weights
(AdaBoost), feature subsampling per split (forests), and the
random-threshold splitter (ExtraTrees).

Growth is level-order on the shared histogram substrate
(:class:`repro.boosting.histogram.NodeHistogramBuilder`): all smaller
children of one level are accumulated in a single batched pass over the
(total weight, positive weight, count) channels, and every larger
sibling's histogram comes from parent-minus-sibling subtraction. Raw
descent routes non-finite values right, matching the binning that maps
them to the per-column missing code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..boosting.histogram import (
    NodeHistogramBuilder,
    SubtractionScheduler,
    histogram_stride,
)
from ..exceptions import ConfigurationError
from ..tabular.binning import quantile_codes_matrix
from ..utils import check_random_state
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)

_EPS = 1e-12


def _resolve_max_features(max_features: "int | float | str | None", n_cols: int) -> int:
    if max_features is None:
        return n_cols
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_cols)))
        if max_features == "log2":
            return max(1, int(np.log2(max(n_cols, 2))))
        raise ConfigurationError(f"unknown max_features {max_features!r}")
    if isinstance(max_features, float):
        if not 0 < max_features <= 1:
            raise ConfigurationError("fractional max_features must be in (0, 1]")
        return max(1, int(round(max_features * n_cols)))
    return max(1, min(int(max_features), n_cols))


def _impurity(pos: np.ndarray, tot: np.ndarray, criterion: str) -> np.ndarray:
    """Vectorized impurity of nodes given weighted positive/total mass."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(tot > 0, pos / np.maximum(tot, _EPS), 0.0)
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    # entropy
    q = 1.0 - p
    out = np.zeros_like(p)
    nz = (p > 0) & (p < 1)
    out[nz] = -(p[nz] * np.log2(p[nz]) + q[nz] * np.log2(q[nz]))
    return out


@dataclass
class ClassificationTree:
    """Binary classification tree grown on quantile-binned columns.

    Parameters
    ----------
    criterion:
        ``"gini"`` (default, sklearn's) or ``"entropy"``.
    splitter:
        ``"best"`` scans all bin boundaries; ``"random"`` draws one random
        boundary per candidate feature (the ExtraTrees strategy).
    max_features:
        Per-split feature subsample: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.
    """

    criterion: str = "gini"
    splitter: str = "best"
    max_depth: "int | None" = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: "int | float | str | None" = None
    max_bins: int = 64
    random_state: "int | np.random.Generator | None" = 0

    feature_: np.ndarray = field(default=None, repr=False)
    threshold_: np.ndarray = field(default=None, repr=False)
    left_: np.ndarray = field(default=None, repr=False)
    right_: np.ndarray = field(default=None, repr=False)
    proba_: np.ndarray = field(default=None, repr=False)
    n_features_: int = field(default=0, repr=False)
    importance_gain_: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.criterion not in ("gini", "entropy"):
            raise ConfigurationError(f"unknown criterion {self.criterion!r}")
        if self.splitter not in ("best", "random"):
            raise ConfigurationError(f"unknown splitter {self.splitter!r}")

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: "np.ndarray | None" = None,
    ) -> "ClassificationTree":
        X, y = prepare_training(X, y)
        n_rows, n_cols = X.shape
        if sample_weight is None:
            w = np.ones(n_rows)
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.size != n_rows:
                raise ConfigurationError("sample_weight length mismatch")
            w = np.maximum(w, 0.0)
        rng = check_random_state(self.random_state)
        self.n_features_ = n_cols
        codes, edges = quantile_codes_matrix(X, max_bins=self.max_bins)
        n_sub = _resolve_max_features(self.max_features, n_cols)
        max_depth = self.max_depth if self.max_depth is not None else 10**9
        # Fixed-width histogram layout; the shared builder accumulates the
        # (total weight, positive weight, count) channels of all smaller
        # children of a level in one batched pass, and larger siblings
        # come from parent-minus-sibling subtraction.
        stride = histogram_stride(edges)
        n_edges = np.array([len(e) for e in edges], dtype=np.int64)
        boundary_ok = np.arange(stride - 1)[None, :] <= n_edges[:, None]

        wy = w * y  # weighted positive indicator
        builder = NodeHistogramBuilder(codes, stride, w, wy)
        codes_f = builder.codes
        nodes: list[dict] = []
        self.importance_gain_ = np.zeros(n_cols)

        def new_node(depth: int, idx: np.ndarray) -> int:
            w_total = float(w[idx].sum())
            pos_total = float(wy[idx].sum())
            nodes.append(
                {"feature": -1, "threshold": np.nan, "left": -1, "right": -1,
                 "proba": pos_total / w_total if w_total > 0 else 0.5,
                 "_depth": depth, "_idx": idx,
                 "_wtot": w_total, "_pos": pos_total}
            )
            return len(nodes) - 1

        def searchable(node_id: int) -> bool:
            node = nodes[node_id]
            return not (
                node["_depth"] >= max_depth
                or node["_idx"].size < self.min_samples_split
                or node["_idx"].size < 2 * self.min_samples_leaf
                or node["_pos"] <= _EPS
                or node["_pos"] >= node["_wtot"] - _EPS
            )

        root = new_node(0, np.arange(n_rows))
        all_cols = np.arange(n_cols)
        # Level state mirrors the boosting tree: up to two position-aligned
        # (node ids, histogram block) groups per level — directly-built
        # smaller children (a leading view of the build block) and
        # subtracted larger children.
        groups: "list[tuple[list[int], np.ndarray]]" = []
        if searchable(root):
            groups = [([root], builder.build_level([nodes[root]["_idx"]]))]
        scheduler = SubtractionScheduler(builder)
        while groups:
            scheduler.begin_level()
            for group_i, (ids, block) in enumerate(groups):
                for pos, nid in enumerate(ids):
                    node = nodes[nid]
                    idx = node["_idx"]
                    w_total = node["_wtot"]
                    pos_total = node["_pos"]
                    parent_imp = float(
                        _impurity(
                            np.array([pos_total]), np.array([w_total]), self.criterion
                        )[0]
                    )
                    hist = block[:, pos]
                    tot_l = np.cumsum(hist[0], axis=1)[:, :-1]
                    pos_l = np.cumsum(hist[1], axis=1)[:, :-1]
                    cnt_l = np.cumsum(hist[2], axis=1)[:, :-1]
                    tot_r = w_total - tot_l
                    pos_r = pos_total - pos_l
                    cnt_r = idx.size - cnt_l
                    valid = (
                        (cnt_l >= self.min_samples_leaf)
                        & (cnt_r >= self.min_samples_leaf)
                        & (tot_l > 0)
                        & (tot_r > 0)
                        & boundary_ok
                    )
                    if n_sub < n_cols:
                        keep_cols = rng.choice(all_cols, size=n_sub, replace=False)
                        col_mask = np.zeros(n_cols, dtype=bool)
                        col_mask[keep_cols] = True
                        valid &= col_mask[:, None]
                    if self.splitter == "random":
                        # ExtraTrees: one uniformly-random valid boundary
                        # per feature; the best feature still wins by gain.
                        counts = valid.sum(axis=1)
                        has = counts > 0
                        picks = np.zeros(n_cols, dtype=np.int64)
                        if has.any():
                            draw = (rng.random(n_cols) * counts).astype(np.int64)
                            draw = np.minimum(draw, np.maximum(counts - 1, 0))
                            cum = np.cumsum(valid, axis=1)
                            picks = (cum == (draw + 1)[:, None]).argmax(axis=1)
                        chosen = np.zeros_like(valid)
                        chosen[np.flatnonzero(has), picks[has]] = True
                        valid = valid & chosen
                    imp_l = _impurity(pos_l, tot_l, self.criterion)
                    imp_r = _impurity(pos_r, tot_r, self.criterion)
                    child = (tot_l * imp_l + tot_r * imp_r) / w_total
                    gains = np.where(valid, parent_imp - child, -np.inf)
                    best_flat = int(np.argmax(gains))
                    best_feat, best_bin = divmod(best_flat, stride - 1)
                    best_gain = float(gains[best_feat, best_bin])
                    if not np.isfinite(best_gain) or best_gain <= _EPS:
                        continue
                    col_edges = edges[best_feat]
                    threshold = (
                        float(col_edges[best_bin])
                        if best_bin < len(col_edges)
                        else np.inf
                    )
                    go_left = codes_f[idx, best_feat] <= best_bin
                    left_idx = idx[go_left]
                    right_idx = idx[~go_left]
                    if left_idx.size == 0 or right_idx.size == 0:
                        continue
                    node["feature"] = best_feat
                    node["threshold"] = threshold
                    self.importance_gain_[best_feat] += best_gain * w_total
                    lid = new_node(node["_depth"] + 1, left_idx)
                    rid = new_node(node["_depth"] + 1, right_idx)
                    node["left"], node["right"] = lid, rid
                    scheduler.add_split(
                        group_i,
                        pos,
                        (lid, left_idx, searchable(lid)),
                        (rid, right_idx, searchable(rid)),
                    )
            groups = scheduler.finish_level(groups)

        self.feature_ = np.array([n["feature"] for n in nodes], dtype=np.int64)
        self.threshold_ = np.array([n["threshold"] for n in nodes], dtype=np.float64)
        self.left_ = np.array([n["left"] for n in nodes], dtype=np.int64)
        self.right_ = np.array([n["right"] for n in nodes], dtype=np.int64)
        self.proba_ = np.array([n["proba"] for n in nodes], dtype=np.float64)
        total = self.importance_gain_.sum()
        if total > 0:
            self.importance_gain_ = self.importance_gain_ / total
        return self

    # ------------------------------------------------------------------
    def _leaf_ids(self, X: np.ndarray) -> np.ndarray:
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            nid = node_ids[rows]
            xv = X[rows, self.feature_[nid]]
            # Non-finite values (NaN and ±inf) take the right branch, the
            # same default direction training gave the missing-value code.
            go_left = np.isfinite(xv) & (xv <= self.threshold_[nid])
            node_ids[rows] = np.where(go_left, self.left_[nid], self.right_[nid])
            active[rows] = self.feature_[node_ids[rows]] >= 0
        return node_ids

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.feature_, "ClassificationTree")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "ClassificationTree")
        return proba_from_positive(self.proba_[self._leaf_ids(X)])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))

    @property
    def n_leaves(self) -> int:
        ensure_fitted(self.feature_, "ClassificationTree")
        return int((self.feature_ == -1).sum())

    @property
    def feature_importances_(self) -> np.ndarray:
        ensure_fitted(self.importance_gain_, "ClassificationTree")
        return self.importance_gain_


@dataclass
class DecisionTreeClassifier(ClassificationTree):
    """Public alias with sklearn-flavoured defaults (unbounded depth)."""
