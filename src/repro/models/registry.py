"""Name-based classifier factory matching the paper's CLF abbreviations.

Table III evaluates nine classifiers: AB, DT, ET, kNN, LR, MLP, RF, SVM
and XGB. :func:`make_classifier` builds a fresh default-configured
instance from any of these names (case-insensitive, long or short form).
"""

from __future__ import annotations

from typing import Callable

from ..boosting.gbm import GradientBoostingClassifier
from ..exceptions import ConfigurationError
from .adaboost import AdaBoostClassifier
from .forest import ExtraTreesClassifier, RandomForestClassifier
from .knn import KNeighborsClassifier
from .linear import LinearSVMClassifier, LogisticRegression
from .mlp import MLPClassifier
from .tree import DecisionTreeClassifier


class XGBClassifier(GradientBoostingClassifier):
    """The paper's "XGB" column: our boosting substrate, XGBoost-ish defaults."""

    def __init__(self, **kwargs) -> None:
        defaults = {"n_estimators": 50, "max_depth": 6, "learning_rate": 0.3}
        defaults.update(kwargs)
        super().__init__(**defaults)


_FACTORIES: dict[str, Callable[..., object]] = {
    "ab": AdaBoostClassifier,
    "adaboost": AdaBoostClassifier,
    "dt": DecisionTreeClassifier,
    "decision_tree": DecisionTreeClassifier,
    "et": ExtraTreesClassifier,
    "extra_trees": ExtraTreesClassifier,
    "knn": KNeighborsClassifier,
    "lr": LogisticRegression,
    "logistic_regression": LogisticRegression,
    "mlp": MLPClassifier,
    "rf": RandomForestClassifier,
    "random_forest": RandomForestClassifier,
    "svm": LinearSVMClassifier,
    "linear_svm": LinearSVMClassifier,
    "xgb": XGBClassifier,
    "xgboost": XGBClassifier,
}

#: Canonical Table III ordering of the nine evaluation classifiers.
PAPER_CLASSIFIERS: tuple[str, ...] = (
    "ab", "dt", "et", "knn", "lr", "mlp", "rf", "svm", "xgb",
)


def make_classifier(name: str, **kwargs) -> object:
    """Instantiate a classifier by its paper abbreviation or long name."""
    key = name.strip().lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown classifier {name!r}; options: {sorted(set(_FACTORIES))}"
        )
    return factory(**kwargs)


def available_classifiers() -> list[str]:
    """Canonical short names, in Table III order."""
    return list(PAPER_CLASSIFIERS)
