"""k-nearest-neighbours classifier (brute force, chunked distances)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..tabular.preprocess import StandardScaler
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)


@dataclass
class KNeighborsClassifier:
    """kNN with Euclidean distance; ``weights`` selects vote weighting.

    Inputs are standardized internally so generated features on wildly
    different scales cannot dominate the metric. Distance computation is
    chunked to bound memory at ``chunk_size * n_train`` floats.
    """

    n_neighbors: int = 5
    weights: str = "uniform"
    chunk_size: int = 256

    X_: "np.ndarray | None" = field(default=None, repr=False)
    y_: "np.ndarray | None" = field(default=None, repr=False)
    scaler_: "StandardScaler | None" = field(default=None, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_neighbors < 1:
            raise ConfigurationError("n_neighbors must be >= 1")
        if self.weights not in ("uniform", "distance"):
            raise ConfigurationError(f"unknown weights {self.weights!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = prepare_training(X, y)
        self.n_features_ = X.shape[1]
        self.scaler_ = StandardScaler().fit(X)
        self.X_ = self.scaler_.transform(X)
        self.y_ = y
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.X_, "KNeighborsClassifier")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "KNeighborsClassifier")
        Q = self.scaler_.transform(X)
        k = min(self.n_neighbors, self.X_.shape[0])
        train_sq = (self.X_ * self.X_).sum(axis=1)
        p1 = np.empty(Q.shape[0])
        for start in range(0, Q.shape[0], self.chunk_size):
            chunk = Q[start : start + self.chunk_size]
            d2 = (
                (chunk * chunk).sum(axis=1)[:, None]
                - 2.0 * chunk @ self.X_.T
                + train_sq[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            labels = self.y_[nn]
            if self.weights == "uniform":
                p1[start : start + chunk.shape[0]] = labels.mean(axis=1)
            else:
                d = np.sqrt(np.take_along_axis(d2, nn, axis=1))
                wts = 1.0 / np.maximum(d, 1e-12)
                p1[start : start + chunk.shape[0]] = (
                    (labels * wts).sum(axis=1) / wts.sum(axis=1)
                )
        return proba_from_positive(p1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))
