"""Bagged tree ensembles: random forest and extremely randomized trees."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..tabular.split import bootstrap_indices
from ..utils import check_random_state
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)
from .tree import ClassificationTree


@dataclass
class RandomForestClassifier:
    """Bootstrap-aggregated CART trees with sqrt-feature subsampling.

    Defaults follow sklearn's shape (gini, sqrt features, bootstrap) with a
    reduced tree count sized for the pure-numpy substrate; Table III/VIII
    only require the model to be a consistent probe across feature sets.
    """

    n_estimators: int = 40
    criterion: str = "gini"
    max_depth: "int | None" = 12
    min_samples_leaf: int = 1
    max_features: "int | float | str | None" = "sqrt"
    bootstrap: bool = True
    max_bins: int = 64
    random_state: "int | None" = 0
    splitter: str = "best"

    trees_: list = field(default_factory=list, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = prepare_training(X, y)
        rng = check_random_state(self.random_state)
        self.n_features_ = X.shape[1]
        self.trees_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = bootstrap_indices(X.shape[0], random_state=rng)
                Xb, yb = X[idx], y[idx]
                if np.unique(yb).size < 2:  # degenerate resample; draw again
                    idx = bootstrap_indices(X.shape[0], random_state=rng)
                    Xb, yb = X[idx], y[idx]
                if np.unique(yb).size < 2:
                    Xb, yb = X, y
            else:
                Xb, yb = X, y
            tree = ClassificationTree(
                criterion=self.criterion,
                splitter=self.splitter,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                max_bins=self.max_bins,
                random_state=rng,
            ).fit(Xb, yb)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.trees_ or None, "RandomForestClassifier")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "RandomForestClassifier")
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict_proba(X)[:, 1]
        return proba_from_positive(acc / len(self.trees_))  # repro: ignore[div-guard] fit leaves >= 1 tree

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalized impurity-decrease importance across trees."""
        ensure_fitted(self.trees_ or None, "RandomForestClassifier")
        acc = np.zeros(self.n_features_)
        for tree in self.trees_:
            acc += tree.feature_importances_
        total = acc.sum()
        return acc / total if total > 0 else acc


@dataclass
class ExtraTreesClassifier(RandomForestClassifier):
    """Extremely randomized trees: random thresholds, no bootstrap."""

    bootstrap: bool = False
    splitter: str = "random"
