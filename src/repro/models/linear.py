"""Linear models: L2 logistic regression and linear (squared-hinge) SVM.

Both are trained with scipy's L-BFGS on standardized inputs (the scaler is
fitted inside the model so the classifier remains a self-contained probe;
standardization is a monotone per-feature affine map and does not change
what Table III measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from ..exceptions import ConfigurationError
from ..tabular.preprocess import StandardScaler
from ..utils import sigmoid
from .base import (
    check_n_features,
    ensure_fitted,
    prepare_features,
    prepare_training,
    proba_from_positive,
    predict_from_proba,
)


@dataclass
class LogisticRegression:
    """Binary logistic regression with L2 penalty (C = 1 / reg strength)."""

    C: float = 1.0
    max_iter: int = 200
    tol: float = 1e-6
    fit_intercept: bool = True

    coef_: "np.ndarray | None" = field(default=None, repr=False)
    intercept_: float = field(default=0.0, repr=False)
    scaler_: "StandardScaler | None" = field(default=None, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ConfigurationError("C must be positive")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = prepare_training(X, y)
        self.n_features_ = X.shape[1]
        self.scaler_ = StandardScaler().fit(X)
        Z = self.scaler_.transform(X)
        n, m = Z.shape
        reg = 1.0 / (self.C * n)  # repro: ignore[div-guard] C > 0 config and n >= 1 rows

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w = params[:m]
            b = params[m] if self.fit_intercept else 0.0
            margin = Z @ w + b
            p = sigmoid(margin)
            eps = 1e-12
            nll = -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
            loss = nll + 0.5 * reg * float(w @ w)  # L2 on weights only
            resid = (p - y) / n  # repro: ignore[div-guard] n >= 1 rows
            grad_w = Z.T @ resid + reg * w
            grad = np.concatenate([grad_w, [resid.sum()]]) if self.fit_intercept else grad_w
            return loss, grad

        x0 = np.zeros(m + (1 if self.fit_intercept else 0))
        result = optimize.minimize(
            objective, x0, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter, "ftol": self.tol},
        )
        params = result.x
        self.coef_ = params[:m]
        self.intercept_ = float(params[m]) if self.fit_intercept else 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.coef_, "LogisticRegression")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "LogisticRegression")
        Z = self.scaler_.transform(X)
        return Z @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return proba_from_positive(sigmoid(self.decision_function(X)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))


@dataclass
class LinearSVMClassifier:
    """Linear SVM with squared hinge loss and L2 penalty (liblinear-style).

    ``predict_proba`` squashes the margin through a sigmoid — a monotone
    map, sufficient for the AUC evaluations the paper performs.
    """

    C: float = 1.0
    max_iter: int = 200
    tol: float = 1e-6
    fit_intercept: bool = True

    coef_: "np.ndarray | None" = field(default=None, repr=False)
    intercept_: float = field(default=0.0, repr=False)
    scaler_: "StandardScaler | None" = field(default=None, repr=False)
    n_features_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ConfigurationError("C must be positive")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X, y = prepare_training(X, y)
        self.n_features_ = X.shape[1]
        self.scaler_ = StandardScaler().fit(X)
        Z = self.scaler_.transform(X)
        n, m = Z.shape
        t = 2.0 * y - 1.0  # {-1, +1}

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w = params[:m]
            b = params[m] if self.fit_intercept else 0.0
            margin = t * (Z @ w + b)
            slack = np.maximum(0.0, 1.0 - margin)
            loss = 0.5 * float(w @ w) + self.C * float((slack * slack).sum()) / n  # repro: ignore[div-guard] n >= 1 rows
            coef_grad = -2.0 * self.C * (slack * t) / n  # repro: ignore[div-guard] n >= 1 rows
            grad_w = w + Z.T @ coef_grad
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [coef_grad.sum()]])
            else:
                grad = grad_w
            return loss, grad

        x0 = np.zeros(m + (1 if self.fit_intercept else 0))
        result = optimize.minimize(
            objective, x0, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter, "ftol": self.tol},
        )
        params = result.x
        self.coef_ = params[:m]
        self.intercept_ = float(params[m]) if self.fit_intercept else 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        ensure_fitted(self.coef_, "LinearSVMClassifier")
        X = prepare_features(X)
        check_n_features(X, self.n_features_, "LinearSVMClassifier")
        Z = self.scaler_.transform(X)
        return Z @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return proba_from_positive(sigmoid(self.decision_function(X)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return predict_from_proba(self.predict_proba(X))
