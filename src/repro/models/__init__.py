"""The nine downstream evaluation classifiers (Table III), from scratch."""

from .adaboost import AdaBoostClassifier
from .base import Classifier, prepare_features, prepare_training
from .forest import ExtraTreesClassifier, RandomForestClassifier
from .knn import KNeighborsClassifier
from .linear import LinearSVMClassifier, LogisticRegression
from .mlp import MLPClassifier
from .registry import (
    PAPER_CLASSIFIERS,
    XGBClassifier,
    available_classifiers,
    make_classifier,
)
from .tree import ClassificationTree, DecisionTreeClassifier

__all__ = [
    "AdaBoostClassifier",
    "Classifier",
    "ClassificationTree",
    "DecisionTreeClassifier",
    "ExtraTreesClassifier",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "PAPER_CLASSIFIERS",
    "RandomForestClassifier",
    "XGBClassifier",
    "available_classifiers",
    "make_classifier",
    "prepare_features",
    "prepare_training",
]
