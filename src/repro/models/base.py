"""Shared classifier contract and input handling.

Every evaluation classifier implements the familiar trio ``fit`` /
``predict_proba`` / ``predict`` on numpy arrays with binary 0/1 labels.
Because generated features can contain extreme magnitudes, every model
routes its input through :func:`prepare_features`, the single sanitation
choke point (non-finite → 0, magnitude clipping).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..exceptions import DataError, NotFittedError
from ..tabular.preprocess import clean_matrix
from ..utils import as_label_vector


@runtime_checkable
class Classifier(Protocol):
    """Structural type implemented by all nine evaluation models."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier": ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def prepare_features(X: "np.ndarray | list") -> np.ndarray:
    """Validate and sanitize a feature matrix for model consumption."""
    return clean_matrix(X)


def prepare_training(
    X: "np.ndarray | list", y: "np.ndarray | list"
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair; labels must be binary 0/1."""
    X = prepare_features(X)
    y = as_label_vector(y, X.shape[0])
    if np.unique(y).size < 2:
        raise DataError("training labels contain a single class")
    return X, y


def check_n_features(X: np.ndarray, n_expected: int, model: str) -> None:
    if X.shape[1] != n_expected:
        raise DataError(
            f"{model}: X has {X.shape[1]} features, model was fit with {n_expected}"
        )


def proba_from_positive(p1: np.ndarray) -> np.ndarray:
    """Stack P(y=0), P(y=1) columns from the positive-class probability."""
    p1 = np.clip(np.asarray(p1, dtype=np.float64).ravel(), 0.0, 1.0)
    return np.column_stack([1.0 - p1, p1])


def predict_from_proba(proba: np.ndarray) -> np.ndarray:
    return (proba[:, 1] >= 0.5).astype(np.float64)


def ensure_fitted(flag: object, model: str) -> None:
    if flag is None:
        raise NotFittedError(f"{model} is not fitted")
